"""Figure 5.7 — response/byte vs users, 100% heavy I/O."""

from repro.harness import figure_5_7

from .conftest import emit, once


def test_bench_fig_5_7(benchmark):
    result = once(benchmark, lambda: figure_5_7(sessions_total=50, total_files=300, seed=0))
    emit("bench_fig_5_7", result.formatted())
