"""Table 5.1 — file characterization by category.

Builds the initial file system at paper scale (4 000 files) and
compares realised per-category mean sizes and file shares against
the published table.
"""

from repro.harness import table_5_1

from .conftest import emit, once


def test_bench_table_5_1(benchmark):
    result = once(benchmark, lambda: table_5_1(total_files=4000, seed=0))
    emit("bench_table_5_1", result.formatted())
