"""Figure 5.2 — example multi-stage gamma densities."""

from repro.harness import figure_5_2

from .conftest import emit, once


def test_bench_fig_5_2(benchmark):
    result = once(benchmark, lambda: figure_5_2())
    emit("bench_fig_5_2", result.formatted())
