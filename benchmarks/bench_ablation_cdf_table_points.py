"""Ablation A3 — CDF-table resolution: accuracy vs memory (section 4.2).

The thesis worries that CDF-table memory "can quickly become
prohibitively large"; this bench measures the accuracy bought per byte.
"""

from repro.harness import ablation_cdf_table_points

from .conftest import emit, once


def test_bench_ablation_cdf_table_points(benchmark):
    result = once(
        benchmark,
        lambda: ablation_cdf_table_points(points=(17, 65, 257, 1025, 4097),
                                          n_samples=50_000, seed=0),
    )
    emit("bench_ablation_cdf_table_points", result.formatted())
