"""Figure 5.12 — access time per byte vs access size (128-2048 B)."""

from repro.harness import figure_5_12

from .conftest import emit, once


def test_bench_fig_5_12(benchmark):
    result = once(benchmark, lambda: figure_5_12(sessions_total=50, total_files=300, seed=0))
    emit("bench_fig_5_12", result.formatted())
