"""Section 5.3 — the file-system comparison procedure, end to end.

Identical workloads (same seed, same operation streams) against the three
candidate file systems: simulated SUN NFS, local disk, and an AFS-like
whole-file-caching system.
"""

from repro.harness import compare_file_systems

from .conftest import emit, once


def test_bench_comparison_5_3(benchmark):
    result = once(
        benchmark,
        lambda: compare_file_systems(n_users=4, sessions_total=40,
                                     total_files=300, seed=0),
    )
    emit("bench_comparison_5_3", result.formatted())
