"""Figure 5.1 — example phase-type exponential densities."""

from repro.harness import figure_5_1

from .conftest import emit, once


def test_bench_fig_5_1(benchmark):
    result = once(benchmark, lambda: figure_5_1())
    emit("bench_fig_5_1", result.formatted())
