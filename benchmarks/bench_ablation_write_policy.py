"""Ablation A1 — server write policy (write-behind vs strict NFSv2).

DESIGN.md calls out the write-policy choice as the main calibration
decision of the NFS substitute; this bench quantifies it.
"""

from repro.harness import ablation_write_policy

from .conftest import emit, once


def test_bench_ablation_write_policy(benchmark):
    result = once(
        benchmark,
        lambda: ablation_write_policy(n_users=3, sessions_total=30,
                                      total_files=300, seed=0),
    )
    emit("bench_ablation_write_policy", result.formatted())
