"""Figure 5.9 — response/byte vs users, 50% heavy / 50% light."""

from repro.harness import figure_5_9

from .conftest import emit, once


def test_bench_fig_5_9(benchmark):
    result = once(benchmark, lambda: figure_5_9(sessions_total=50, total_files=300, seed=0))
    emit("bench_fig_5_9", result.formatted())
