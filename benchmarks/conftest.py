"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
paper's experiment sizes, prints the rows/series, and archives them under
``benchmarks/results/`` so the output survives pytest's capture.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(ident: str, text: str) -> None:
    """Print a reproduced table/figure and archive it to results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{ident}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    These are experiment regenerations, not micro-benchmarks: one round
    is the measurement.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
