"""Figure 5.10 — response/byte vs users, 20% heavy / 80% light."""

from repro.harness import figure_5_10

from .conftest import emit, once


def test_bench_fig_5_10(benchmark):
    result = once(benchmark, lambda: figure_5_10(sessions_total=50, total_files=300, seed=0))
    emit("bench_fig_5_10", result.formatted())
