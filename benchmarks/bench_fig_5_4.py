"""Figure 5.4 — average file size over 600 login sessions."""

from repro.harness import figure_5_4

from .conftest import emit, once


def test_bench_fig_5_4(benchmark):
    result = once(benchmark, lambda: figure_5_4(sessions=600, seed=0))
    emit("bench_fig_5_4", result.formatted())
