"""Table 5.4 — user types simulated in the experiments.

Verifies the generated think-time streams hit the paper's three
user-type means (0 / 5 000 / 20 000 µs).
"""

from repro.harness import table_5_4

from .conftest import emit, once


def test_bench_table_5_4(benchmark):
    result = once(benchmark, lambda: table_5_4(sessions=50, seed=0))
    emit("bench_table_5_4", result.formatted())
