"""Million-user scale: flat peak memory via the spillable op-stream sink.

Runs the same pinned-file-set scenario at geometrically increasing
populations, each in its own forked child process so ``ru_maxrss`` is an
honest per-run peak, and reports, per population:

* peak RSS — the headline number: with a
  :class:`~repro.core.streamfile.StreamFileSink` spilling op rows to
  disk under a fixed memory budget, peak RSS must stay flat while the
  artifact grows linearly with the population;
* wall-clock time, op rows generated, artifact bytes on disk;
* a replay identity check: streaming the artifact back through a
  :class:`~repro.fleet.merge.ShardAccumulator` must reproduce the exact
  aggregate tally of the generating run (asserted).

Besides the human-readable table, every run writes machine-readable
results to ``BENCH_scale.json`` (override with ``BENCH_SCALE_JSON``).
``BENCH_SCALE_POPULATIONS`` (comma-separated) and
``BENCH_SCALE_SESSIONS`` shrink the sweep for CI smoke runs; the
flat-memory assertion needs at least two populations and tolerates the
small O(users) planning metadata (type assignment, user-id lists) via
``FLATNESS_TOLERANCE``.

The flatness claim is about the regime where the budget is *binding*:
a run whose whole op stream fits inside one chunk buffer never
saturates the sink, so its peak RSS sits below the steady-state level
and would inflate the ratio spuriously.  The check therefore compares
peak RSS across the runs that spilled (``chunks > 1``) when at least
two did, falling back to all runs otherwise; CI pins
``BENCH_SCALE_BUDGET_BYTES`` low enough that both smoke populations
spill.

Run either way::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q
    PYTHONPATH=src python benchmarks/bench_scale.py
"""

import os
import pickle
import resource
import struct
import tempfile
import time

from repro.core import DEFAULT_MEMORY_BUDGET, StreamReader, WorkloadGenerator
from repro.core.streamfile import StreamFileSink, TeeSink
from repro.core.synthesis import PhaseModel
from repro.fleet.merge import ShardAccumulator
from repro.harness import format_table
from repro.scenarios import get_scenario

try:
    from ._env import write_results_json as _write_env_json
except ImportError:  # script mode: benchmarks/ is sys.path[0]
    from _env import write_results_json as _write_env_json

SCENARIO = "batch-heavy"
SEED = 7
TOTAL_FILES = 2000
DEFAULT_POPULATIONS = (10_000, 100_000, 1_000_000)
DEFAULT_SESSIONS = 1
DEFAULT_JSON_PATH = "BENCH_scale.json"
# Among runs where the budget binds (the sink spilled), peak RSS at
# the largest population may exceed the smallest's by at most this
# factor: op data must never accumulate in memory, but the planner's
# O(users) metadata (a type per user, the sorted id list) is real and
# a few dozen MiB at a million users.
FLATNESS_TOLERANCE = 1.5

POPULATIONS = tuple(
    int(p) for p in os.environ.get(
        "BENCH_SCALE_POPULATIONS",
        ",".join(str(p) for p in DEFAULT_POPULATIONS),
    ).split(",")
)
SESSIONS = int(os.environ.get("BENCH_SCALE_SESSIONS", DEFAULT_SESSIONS))
BUDGET_BYTES = int(
    os.environ.get("BENCH_SCALE_BUDGET_BYTES", DEFAULT_MEMORY_BUDGET))
JSON_PATH = os.environ.get("BENCH_SCALE_JSON", DEFAULT_JSON_PATH)


def _generate_run(users: int, path: str, sessions: int = SESSIONS,
                  seed: int = SEED, budget: int = BUDGET_BYTES) -> dict:
    """One population: generate into a stream sink, then verify by replay."""
    scenario = get_scenario(SCENARIO)
    spec = scenario.build(users, seed, total_files=TOTAL_FILES)
    generator = WorkloadGenerator(spec)
    tally = ShardAccumulator()
    sink = StreamFileSink(path, memory_budget_bytes=budget, metadata={
        "tool": "bench-scale", "scenario": SCENARIO, "seed": seed,
        "users": users, "sessions_per_user": sessions,
    })
    start = time.perf_counter()
    try:
        generator.run_simulated(
            sessions_per_user=sessions,
            backend="fast-columnar",
            access_pattern=scenario.access_pattern,
            phase_model_factory=(PhaseModel if scenario.use_phase_model
                                 else None),
            log=TeeSink(tally, sink),
        )
    finally:
        sink.close()
    wall_s = time.perf_counter() - start
    # Replay identity: the artifact must reproduce the generating run's
    # aggregate statistics exactly — the disk round trip loses nothing.
    replayed = ShardAccumulator()
    with StreamReader(path) as reader:
        rows, session_count = reader.replay(replayed)
    assert replayed.tally == tally.tally, (
        f"replayed tally diverged from generating run at {users} users"
    )
    assert rows == tally.tally.operations
    peak_rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "users": users,
        "sessions_per_user": sessions,
        "wall_s": wall_s,
        "ops": rows,
        "sessions": session_count,
        "chunks": sink.chunks_written,
        "artifact_bytes": os.path.getsize(path),
        "peak_rss_kib": peak_rss_kib,
        "replay_identical": True,
    }


def _run_in_child(users: int, path: str) -> dict:
    """Fork, run one population in the child, report its dict via a pipe.

    ``ru_maxrss`` is a per-process high-water mark, so measuring each
    population in a fresh child is the only way to get honest per-run
    peaks inside one sweep.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        status = 1
        try:
            os.close(read_fd)
            payload = pickle.dumps(_generate_run(users, path))
            os.write(write_fd, struct.pack("<Q", len(payload)) + payload)
            status = 0
        finally:
            os.close(write_fd)
            os._exit(status)
    os.close(write_fd)
    try:
        with os.fdopen(read_fd, "rb") as stream:
            data = stream.read()
    finally:
        _, wait_status = os.waitpid(pid, 0)
    code = os.waitstatus_to_exitcode(wait_status)
    if code != 0 or len(data) < 8:
        raise RuntimeError(
            f"bench child for {users} users failed (exit {code})")
    (length,) = struct.unpack("<Q", data[:8])
    return pickle.loads(data[8:8 + length])


def scale_results(populations=None) -> dict:
    """Run the scale sweep; return a machine-readable result dict."""
    populations = POPULATIONS if populations is None else populations
    runs = []
    for users in populations:
        with tempfile.TemporaryDirectory(prefix="bench-scale-") as tmp:
            path = os.path.join(tmp, f"scale-{users}.opstream")
            runs.append(_run_in_child(users, path))
    smallest, largest = runs[0], runs[-1]
    # The flat-RSS property holds where the budget binds: only runs
    # that spilled (> 1 chunk) have reached the sink's steady state.
    spilled = [run for run in runs if run["chunks"] > 1]
    basis = spilled if len(spilled) >= 2 else runs
    rss_ratio = basis[-1]["peak_rss_kib"] / basis[0]["peak_rss_kib"]
    data_ratio = largest["artifact_bytes"] / smallest["artifact_bytes"]
    return {
        "benchmark": "scale",
        "scenario": SCENARIO,
        "seed": SEED,
        "total_files": TOTAL_FILES,
        "sessions_per_user": SESSIONS,
        "memory_budget_bytes": BUDGET_BYTES,
        "runs": runs,
        "flatness_basis_users": [run["users"] for run in basis],
        "rss_ratio_spilled": rss_ratio,
        "data_ratio_largest_vs_smallest": data_ratio,
        "memory_flat": rss_ratio <= FLATNESS_TOLERANCE,
    }


def check_memory_flat(results: dict) -> None:
    """Assert peak RSS stayed flat while the artifact grew."""
    if len(results["runs"]) < 2:
        return
    ratio = results["rss_ratio_spilled"]
    basis = results["flatness_basis_users"]
    assert ratio <= FLATNESS_TOLERANCE, (
        f"peak RSS grew {ratio:.2f}x from "
        f"{basis[0]} to {basis[-1]} users "
        f"(artifact grew {results['data_ratio_largest_vs_smallest']:.1f}x "
        "over the sweep); the stream sink must keep memory flat"
    )


def write_results_json(results: dict, path: str = None) -> str:
    """Write the result dict (env-stamped) as JSON; returns the path."""
    return _write_env_json(results, JSON_PATH if path is None else path)


def results_table(results: dict) -> str:
    """Render the result dict as the human-readable table."""
    rows = [
        (run["users"], run["wall_s"], run["ops"], run["chunks"],
         f"{run['artifact_bytes'] / (1 << 20):.1f}",
         f"{run['peak_rss_kib'] / 1024:.1f}",
         "identical")
        for run in results["runs"]
    ]
    return format_table(
        ["users", "wall s", "op rows", "chunks", "artifact MiB",
         "peak RSS MiB", "replay vs direct"],
        rows,
        title=(
            f"Million-user scale — {results['scenario']}, "
            f"{results['sessions_per_user']} session(s)/user, "
            f"{results['memory_budget_bytes'] >> 20} MiB budget, "
            f"seed {results['seed']}"
        ),
    )


def test_bench_scale(benchmark):
    from .conftest import emit, once

    results = once(benchmark, scale_results)
    emit("bench_scale", results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
    check_memory_flat(results)


if __name__ == "__main__":
    results = scale_results()
    print(results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
    try:
        check_memory_flat(results)
    except AssertionError as exc:
        raise SystemExit(str(exc))
