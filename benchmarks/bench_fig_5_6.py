"""Figure 5.6 — response/byte vs users, 100% extremely heavy I/O."""

from repro.harness import figure_5_6

from .conftest import emit, once


def test_bench_fig_5_6(benchmark):
    result = once(benchmark, lambda: figure_5_6(sessions_total=50, total_files=300, seed=0))
    emit("bench_fig_5_6", result.formatted())
