"""Shared environment envelope for ``BENCH_*.json`` result files.

Every benchmark stamps its machine-readable results with the same
``env`` block — hostname, platform, CPU count, python/numpy versions —
so a recorded throughput number can always be traced back to the
machine that produced it.  The benchmarks import this both as a package
module (pytest collects ``benchmarks/`` as a package) and as a plain
script neighbour (``python benchmarks/bench_X.py``), hence the dual
import dance at each call site::

    try:
        from ._env import write_results_json as _write_env_json
    except ImportError:  # script mode: benchmarks/ is sys.path[0]
        from _env import write_results_json as _write_env_json
"""

import json
import os
import platform
import socket


def bench_env() -> dict:
    """The machine/toolchain fingerprint stamped into every envelope."""
    import numpy

    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }


def write_results_json(results: dict, path: str) -> str:
    """Write ``results`` (plus the ``env`` stamp) as JSON; returns path."""
    results = dict(results)
    results.setdefault("env", bench_env())
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(results, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path
