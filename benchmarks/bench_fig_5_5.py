"""Figure 5.5 — average number of files referenced over 600 sessions."""

from repro.harness import figure_5_5

from .conftest import emit, once


def test_bench_fig_5_5(benchmark):
    result = once(benchmark, lambda: figure_5_5(sessions=600, seed=0))
    emit("bench_fig_5_5", result.formatted())
