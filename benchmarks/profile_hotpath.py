"""cProfile harness for the columnar hot path, attributed by stage.

Profiles one warm ``fast-columnar`` fleet run (the same population
``bench_backends.py`` times) and buckets every profiled function into a
pipeline stage by its module — plan (GDS/FSC/spec), synthesize
(synthesis + distributions), execute, sink (tally/log/stream-file), or
driver/other — then reports the top-N functions by cumulative time
inside each stage.  This is the attribution tool the stage spans in
``BENCH_backends.json`` point at: spans say *which stage* regressed,
this harness says *which function*.

Interpretation caveat: cProfile's tracing hook roughly doubles the cost
of hot Python loops while leaving vectorized NumPy calls almost
untouched, so the profile orders costs reliably but overstates
loop-heavy functions relative to array math.  Wall-clock truth lives in
``BENCH_backends.json``; this file is for ranking, not for totals.

Machine-readable results go to ``BENCH_profile_hotpath.json`` (override
with ``PROFILE_HOTPATH_JSON``) so CI archives them alongside the other
``BENCH_*.json`` artifacts.  ``PROFILE_HOTPATH_USERS`` /
``PROFILE_HOTPATH_SESSIONS`` shrink the population for smoke runs;
``PROFILE_HOTPATH_TOPN`` widens the per-stage table.

Run either way::

    PYTHONPATH=src python -m pytest benchmarks/profile_hotpath.py -q
    PYTHONPATH=src python benchmarks/profile_hotpath.py
"""

import cProfile
import os
import pstats

from repro.fleet import FleetConfig, run_fleet
from repro.harness import format_table

try:
    from ._env import write_results_json as _write_env_json
except ImportError:  # script mode: benchmarks/ is sys.path[0]
    from _env import write_results_json as _write_env_json

DEFAULT_USERS = 240
DEFAULT_SESSIONS = 4
SEED = 7
SCENARIO = "mixed-campus"
DEFAULT_TOPN = 10
DEFAULT_JSON_PATH = "BENCH_profile_hotpath.json"

USERS = int(os.environ.get("PROFILE_HOTPATH_USERS", DEFAULT_USERS))
SESSIONS = int(os.environ.get("PROFILE_HOTPATH_SESSIONS", DEFAULT_SESSIONS))
TOPN = int(os.environ.get("PROFILE_HOTPATH_TOPN", DEFAULT_TOPN))
JSON_PATH = os.environ.get("PROFILE_HOTPATH_JSON", DEFAULT_JSON_PATH)

# Module-path fragments → pipeline stage, first match wins.  The order
# resolves the overlaps: synthesis owns its samplers even though they
# live under distributions/, and the runner/arrival plumbing around the
# stages is "driver" rather than any of them.
_STAGE_RULES = (
    ("repro/core/synthesis", "synthesize"),
    ("repro/distributions/", "synthesize"),
    ("repro/core/execution", "execute"),
    ("repro/fleet/merge", "sink"),
    ("repro/core/oplog", "sink"),
    ("repro/core/streamfile", "sink"),
    ("repro/core/fsc", "plan"),
    ("repro/core/gds", "plan"),
    ("repro/core/spec", "plan"),
    ("repro/core/generator", "plan"),
    ("repro/core/arrivals", "driver"),
    ("repro/fleet/", "driver"),
)

STAGES = ("plan", "synthesize", "execute", "sink", "driver", "other")


def _stage_of(filename: str) -> str:
    normalized = filename.replace(os.sep, "/")
    for fragment, stage in _STAGE_RULES:
        if fragment in normalized:
            return stage
    return "other"


def profile_hotpath_results(users: int = None, seed: int = SEED) -> dict:
    """Profile one warm columnar fleet run; returns the result dict."""
    users = USERS if users is None else users
    config = FleetConfig(
        scenario=SCENARIO, users=users, shards=1, workers=1, seed=seed,
        backend="fast-columnar", sessions_per_user=SESSIONS,
    )
    run_fleet(config)  # warm run: keep import and first-touch costs out
    profile = cProfile.Profile()
    profile.enable()
    run_fleet(config)
    profile.disable()

    stats = pstats.Stats(profile)
    buckets: dict[str, list[dict]] = {stage: [] for stage in STAGES}
    stage_tottime = {stage: 0.0 for stage in STAGES}
    for (filename, line, name), (_cc, ncalls, tottime, cumtime,
                                 _callers) in stats.stats.items():
        stage = _stage_of(filename)
        stage_tottime[stage] += tottime
        buckets[stage].append({
            "function": name,
            "file": os.path.basename(filename),
            "line": line,
            "ncalls": ncalls,
            "tottime_s": tottime,
            "cumtime_s": cumtime,
        })
    stages = {}
    for stage in STAGES:
        rows = sorted(buckets[stage], key=lambda r: -r["cumtime_s"])
        stages[stage] = {
            "tottime_s": stage_tottime[stage],
            "top": rows[:TOPN],
        }
    return {
        "benchmark": "profile_hotpath",
        "scenario": SCENARIO,
        "backend": "fast-columnar",
        "users": users,
        "sessions_per_user": SESSIONS,
        "seed": seed,
        "top_n": TOPN,
        "profiled_wall_s": stats.total_tt,
        "stages": stages,
    }


def write_results_json(results: dict, path: str = None) -> str:
    """Write the result dict (env-stamped) as JSON; returns the path."""
    return _write_env_json(results, JSON_PATH if path is None else path)


def results_table(results: dict) -> str:
    """Render the per-stage top functions as one human-readable table."""
    rows = []
    for stage in STAGES:
        info = results["stages"][stage]
        for entry in info["top"][:3]:
            rows.append((
                stage,
                f"{entry['file']}:{entry['line']}({entry['function']})",
                entry["ncalls"], entry["tottime_s"], entry["cumtime_s"],
            ))
    return format_table(
        ["stage", "function", "ncalls", "tottime s", "cumtime s"],
        rows,
        title=(
            f"Columnar hot-path profile — {results['scenario']}, "
            f"{results['users']} users x {results['sessions_per_user']} "
            f"sessions; {results['profiled_wall_s']:.2f}s profiled "
            "(cProfile inflates Python loops ~2x; see BENCH_backends.json "
            "for wall-clock truth)"
        ),
    )


def test_profile_hotpath(benchmark):
    from .conftest import emit, once

    results = once(benchmark, profile_hotpath_results)
    emit("profile_hotpath", results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
    # The synthesize/execute stages must dominate a healthy columnar
    # run; a profile dominated by "driver"/"other" means the harness is
    # measuring scaffolding, not the hot path.
    hot = (results["stages"]["synthesize"]["tottime_s"]
           + results["stages"]["execute"]["tottime_s"]
           + results["stages"]["sink"]["tottime_s"]
           + results["stages"]["plan"]["tottime_s"])
    assert hot > 0.0


if __name__ == "__main__":
    results = profile_hotpath_results()
    print(results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
