"""Table 5.2 — user characterization by category.

Runs 300 login sessions and re-derives the user characterization
from the usage log, closing the loop on the generator's input.
"""

from repro.harness import table_5_2

from .conftest import emit, once


def test_bench_table_5_2(benchmark):
    result = once(benchmark, lambda: table_5_2(sessions=300, seed=0))
    emit("bench_table_5_2", result.formatted())
