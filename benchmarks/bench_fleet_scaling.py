"""Fleet scaling: wall-clock speedup and exact aggregate equality.

Runs the same ``mixed-campus`` population at increasing shard counts
(worker processes = shards) and reports, per shard count:

* wall-clock time and speedup over the single-shard run;
* whether the merged aggregate workload statistics are **bit-for-bit**
  identical to the single-shard run (they must always be — this is the
  fleet layer's determinism guarantee, asserted here);
* ops per wall second.

Besides the human-readable table, every run writes machine-readable
results to ``BENCH_fleet.json`` (override with ``BENCH_FLEET_JSON``) so
the performance trajectory can be tracked across PRs.  ``BENCH_FLEET_USERS``
and ``BENCH_FLEET_SHARDS`` (comma-separated) shrink the sweep for CI
smoke runs; the ≥2x speedup assertion only applies to full-size runs on
machines with at least 4 usable cores.

The JSON records both ``detected_cores`` (``os.cpu_count``) and
``usable_cores`` (scheduler affinity, the honest number under cgroup
limits), and a run's ``speedup`` is ``null`` — with a ``speedup_note``
carrying the raw ratio — whenever there are fewer usable cores than
shards, where the ratio would only measure multiprocessing overhead.

Run either way::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scaling.py -q
    PYTHONPATH=src python benchmarks/bench_fleet_scaling.py
"""

import os

from repro.fleet import FleetConfig, run_fleet
from repro.harness import fleet_aggregate_block, format_table

try:
    from ._env import write_results_json as _write_env_json
except ImportError:  # script mode: benchmarks/ is sys.path[0]
    from _env import write_results_json as _write_env_json

DEFAULT_USERS = 160
SEED = 7
DEFAULT_SHARD_COUNTS = (1, 2, 4)
DEFAULT_JSON_PATH = "BENCH_fleet.json"

USERS = int(os.environ.get("BENCH_FLEET_USERS", DEFAULT_USERS))
SHARD_COUNTS = tuple(
    int(s) for s in os.environ.get(
        "BENCH_FLEET_SHARDS",
        ",".join(str(s) for s in DEFAULT_SHARD_COUNTS),
    ).split(",")
)
JSON_PATH = os.environ.get("BENCH_FLEET_JSON", DEFAULT_JSON_PATH)


def _usable_cores() -> int:
    """Cores this process may actually run on (cgroup/affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fleet_scaling_results(users: int = None, shard_counts=None,
                          seed: int = SEED) -> dict:
    """Run the scaling sweep; return a machine-readable result dict."""
    users = USERS if users is None else users
    shard_counts = SHARD_COUNTS if shard_counts is None else shard_counts
    usable_cores = _usable_cores()
    runs = []
    reference = None
    base_wall = None
    for shards in shard_counts:
        result = run_fleet(FleetConfig(
            scenario="mixed-campus", users=users, shards=shards,
            workers=shards, seed=seed,
        ))
        aggregate = fleet_aggregate_block(result)
        if reference is None:
            reference = aggregate
            base_wall = result.wall_s
        assert aggregate == reference, (
            f"aggregate at {shards} shards diverged from single-shard run"
        )
        # Honesty rule: a speedup claim needs at least one usable core
        # per shard.  On an oversubscribed box the ratio only measures
        # multiprocessing overhead, so it is recorded as null with an
        # explanatory note instead of a number someone might quote.
        measured = base_wall / result.wall_s
        cores_sufficient = usable_cores >= shards
        runs.append({
            "shards": shards,
            "workers": result.config.effective_workers(),
            "wall_s": result.wall_s,
            "speedup": measured if cores_sufficient else None,
            "speedup_note": (
                None if cores_sufficient else
                f"not meaningful: {usable_cores} usable core(s) < "
                f"{shards} shards (measured ratio {measured:.2f}x)"
            ),
            "ops": result.tally.operations,
            "ops_per_s": (result.tally.operations / result.wall_s
                          if result.wall_s > 0 else 0.0),
            "aggregate_identical": True,
        })
    return {
        "benchmark": "fleet_scaling",
        "scenario": "mixed-campus",
        "users": users,
        "seed": seed,
        "detected_cores": os.cpu_count() or 1,
        "usable_cores": usable_cores,
        "runs": runs,
    }


def write_results_json(results: dict, path: str = None) -> str:
    """Write the result dict (env-stamped) as JSON; returns the path."""
    return _write_env_json(results, JSON_PATH if path is None else path)


def results_table(results: dict) -> str:
    """Render the result dict as the human-readable table."""
    rows = [
        (run["shards"], run["wall_s"],
         (f"{run['speedup']:.3f}" if run["speedup"] is not None
          else "n/a (too few cores)"),
         run["ops"], run["ops_per_s"], "identical")
        for run in results["runs"]
    ]
    return format_table(
        ["shards", "wall s", "speedup", "ops", "ops/s", "aggregate vs 1 shard"],
        rows,
        title=(
            f"Fleet scaling — {results['scenario']}, {results['users']} "
            f"users, seed {results['seed']}, "
            f"{results['usable_cores']}/{results['detected_cores']} "
            "usable/detected cores"
        ),
    )


def _speedup_assertion_applies(results: dict) -> bool:
    # The assertion reads the 4-shard run specifically, so it only
    # applies when the sweep actually contains one.
    return (results["users"] >= DEFAULT_USERS
            and any(r["shards"] == 4 for r in results["runs"])
            and results["usable_cores"] >= 4)


def test_bench_fleet_scaling(benchmark):
    from .conftest import emit, once

    results = once(benchmark, fleet_scaling_results)
    emit("bench_fleet_scaling", results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
    if _speedup_assertion_applies(results):
        by_shards = {r["shards"]: r for r in results["runs"]}
        speedup = by_shards[4]["speedup"]
        assert speedup >= 2.0, (
            "expected >=2x speedup at 4 shards on "
            f"{results['usable_cores']} cores, got {speedup:.2f}x"
        )


if __name__ == "__main__":
    results = fleet_scaling_results()
    print(results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
    if _speedup_assertion_applies(results):
        by_shards = {r["shards"]: r for r in results["runs"]}
        if by_shards[4]["speedup"] < 2.0:
            raise SystemExit(
                "expected >=2x speedup at 4 shards, got "
                f"{by_shards[4]['speedup']:.2f}x"
            )
