"""Fleet scaling: wall-clock speedup and exact aggregate equality.

Runs the same ``mixed-campus`` population at 1, 2 and 4 shards (worker
processes = shards) and reports, per shard count:

* wall-clock time and speedup over the single-shard run;
* whether the merged aggregate workload statistics are **bit-for-bit**
  identical to the single-shard run (they must always be — this is the
  fleet layer's determinism guarantee, asserted here);
* ops per wall second.

Speedup is near-linear when cores are available; the ≥2x assertion at 4
shards is skipped on machines with fewer than 4 usable cores, where no
process pool can beat serial execution.

Run either way::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scaling.py -q
    PYTHONPATH=src python benchmarks/bench_fleet_scaling.py
"""

import os

from repro.fleet import FleetConfig, run_fleet
from repro.harness import fleet_aggregate_block, format_table

USERS = 160
SEED = 7
SHARD_COUNTS = (1, 2, 4)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fleet_scaling_table() -> tuple[str, dict[int, float]]:
    """Run the scaling sweep; return (formatted table, wall s by shards)."""
    walls: dict[int, float] = {}
    rows = []
    reference = None
    for shards in SHARD_COUNTS:
        result = run_fleet(FleetConfig(
            scenario="mixed-campus", users=USERS, shards=shards,
            workers=shards, seed=SEED,
        ))
        aggregate = fleet_aggregate_block(result)
        if reference is None:
            reference = aggregate
        assert aggregate == reference, (
            f"aggregate at {shards} shards diverged from single-shard run"
        )
        walls[shards] = result.wall_s
        rows.append((
            shards,
            result.wall_s,
            walls[SHARD_COUNTS[0]] / result.wall_s,
            result.tally.operations,
            result.tally.operations / result.wall_s,
            "identical",
        ))
    table = format_table(
        ["shards", "wall s", "speedup", "ops", "ops/s", "aggregate vs 1 shard"],
        rows,
        title=(
            f"Fleet scaling — mixed-campus, {USERS} users, seed {SEED}, "
            f"{_usable_cores()} usable cores"
        ),
    )
    return table, walls


def test_bench_fleet_scaling(benchmark):
    from .conftest import emit, once

    table, walls = once(benchmark, fleet_scaling_table)
    emit("bench_fleet_scaling", table)
    if _usable_cores() >= 4:
        speedup = walls[1] / walls[4]
        assert speedup >= 2.0, (
            f"expected >=2x speedup at 4 shards on "
            f"{_usable_cores()} cores, got {speedup:.2f}x"
        )


if __name__ == "__main__":
    text, walls = fleet_scaling_table()
    print(text)
    if _usable_cores() >= 4 and walls[1] / walls[4] < 2.0:
        raise SystemExit(
            f"expected >=2x speedup at 4 shards, got "
            f"{walls[1] / walls[4]:.2f}x"
        )
