"""Ablation A2 — server buffer-cache size sweep.

Shows why steady-state reads are network-bound (high hit ratios) and what
removing the cache costs.
"""

from repro.harness import ablation_server_cache

from .conftest import emit, once


def test_bench_ablation_server_cache(benchmark):
    result = once(
        benchmark,
        lambda: ablation_server_cache(n_users=3, sessions_total=30,
                                      total_files=300, seed=0,
                                      cache_sizes=(0, 64, 1024)),
    )
    emit("bench_ablation_server_cache", result.formatted())
