"""Figure 5.11 — response/byte vs users, 100% light I/O."""

from repro.harness import figure_5_11

from .conftest import emit, once


def test_bench_fig_5_11(benchmark):
    result = once(benchmark, lambda: figure_5_11(sessions_total=50, total_files=300, seed=0))
    emit("bench_fig_5_11", result.formatted())
