"""Figure 5.3 — average access-per-byte over 600 login sessions."""

from repro.harness import figure_5_3

from .conftest import emit, once


def test_bench_fig_5_3(benchmark):
    result = once(benchmark, lambda: figure_5_3(sessions=600, seed=0))
    emit("bench_fig_5_3", result.formatted())
