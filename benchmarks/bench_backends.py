"""Backend throughput: DES simulation vs scalar and columnar fast replay.

Runs the same ``mixed-campus`` population through the discrete-event
``nfs`` backend, the engine-free scalar ``fast`` backend, and the
array-native ``fast-columnar`` backend, and reports, per backend,
wall-clock time and ops per second — plus the pairwise speedups.  Before
timing anything it asserts that all three backends' **op streams are
byte-identical** (op kind, path, size, per user and session) at a
reduced population: that identity is the staged pipeline's core
guarantee, and a throughput number for a *different* workload would be
meaningless.

Speedup floors enforced at full size (tiny smoke runs skip them):

* ``fast``          >= 5x the DES ops/s (the PR 3 floor);
* ``fast-columnar`` >= 4x the scalar fast ops/s and >= 20x the DES;
* ``fast-columnar`` >= 20x the DES **with arrivals enabled** too — the
  temporal load layer resolves schedules once per user, so it must not
  erode the columnar floor.

Each sweep therefore runs twice: once classic (all users at clock 0)
and once with the scenario's arrival model (diurnal session timing).
The identity check also runs both ways: arrivals must move the
timeline without touching the op stream.

Observability: the columnar backend is additionally timed with a full
:class:`repro.obs.RunObserver` attached (metrics registry, stage spans,
instrumented sink, manifest write) and the overhead is recorded as
``metrics_overhead_pct`` — best metrics-on wall over best metrics-off
wall across interleaved runs, floored at 10% as a regression tripwire
(the true cost is ~2%; see ``MAX_METRICS_OVERHEAD_PCT``).  A
record-for-record identity check proves the observer never perturbs the
op stream on any backend.

The fast paths are timed best-of-``BENCH_BACKENDS_REPEATS`` (default 3)
because their runs are short enough for scheduler noise to matter; the
DES run is long and timed once.

Machine-readable results go to ``BENCH_backends.json`` (override with
``BENCH_BACKENDS_JSON``).  ``BENCH_BACKENDS_USERS`` /
``BENCH_BACKENDS_SESSIONS`` shrink the timed population for CI smoke
runs.

Run either way::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -q
    PYTHONPATH=src python benchmarks/bench_backends.py
"""

import os
import tempfile
import time

from repro.core import WorkloadGenerator
from repro.fleet import FleetConfig, run_fleet
from repro.harness import format_table
from repro.obs import RunObserver
from repro.scenarios import get_scenario

try:
    from ._env import write_results_json as _write_env_json
except ImportError:  # script mode: benchmarks/ is sys.path[0]
    from _env import write_results_json as _write_env_json

DEFAULT_USERS = 240
DEFAULT_SESSIONS = 4
SEED = 7
SCENARIO = "mixed-campus"
BACKENDS = ("nfs", "fast", "fast-columnar")
MIN_SPEEDUP = 5.0                  # fast over DES
MIN_COLUMNAR_OVER_FAST = 4.0       # fast-columnar over fast
# Raised from 20x with the fused per-user kernel (pooled samplers, flat
# column buffers, one intern_many per user): measured ~55-60x on the CI
# box, floored with ~30% headroom for scheduler noise.
MIN_COLUMNAR_OVER_SIM = 40.0       # fast-columnar over DES
# Regression tripwire, not a precision claim.  The observer's true cost
# is ~2% of the columnar wall (deferred batch accounting: two list
# appends per batch, one bulk stat/histogram fold per 64k rows —
# micro-benchmarked at ~15 ms against a ~0.7 s run), but single runs on
# shared 1-CPU runners disperse by ±10% in wall *and* CPU time, so a
# single-digit floor would trip on scheduler noise alone.  10% cleanly
# separates "noise around ~2%" from a real per-op regression (a
# per-record Python-loop observer costs 50%+).  The per-pair deltas
# ride along in the JSON to show the dispersion.
MAX_METRICS_OVERHEAD_PCT = 10.0    # metrics-on columnar vs metrics-off
DEFAULT_JSON_PATH = "BENCH_backends.json"

USERS = int(os.environ.get("BENCH_BACKENDS_USERS", DEFAULT_USERS))
SESSIONS = int(os.environ.get("BENCH_BACKENDS_SESSIONS", DEFAULT_SESSIONS))
REPEATS = max(1, int(os.environ.get("BENCH_BACKENDS_REPEATS", 3)))
JSON_PATH = os.environ.get("BENCH_BACKENDS_JSON", DEFAULT_JSON_PATH)


def _content_by_user(log):
    """Per-user, in-order, timing-free projection of an op log.

    The DES interleaves users on the engine clock while the fast paths
    run them sequentially, so global order legitimately differs — but
    each user's own stream must match element for element.
    """
    by_user = {}
    for o in log.operations:
        by_user.setdefault(o.user_id, []).append(
            (o.session_id, o.op, o.path, o.category_key, o.size)
        )
    return by_user


def assert_identical_streams(users: int, seed: int = SEED,
                             arrivals: bool = False) -> int:
    """Run every backend with full op logs; assert stream identity.

    With ``arrivals=True`` the scenario's temporal load model is
    enabled: the op stream must *still* be identical across backends
    (arrivals move only the timeline), and the engine-free pair must
    stay bit-identical on records — start clocks included.

    Returns the number of ops compared.
    """
    scenario = get_scenario(SCENARIO)
    spec = scenario.build(users, seed)
    model = (scenario.arrival_model if arrivals else None)
    logs = {}
    for backend in BACKENDS:
        result = WorkloadGenerator(spec).run_simulated(
            sessions_per_user=scenario.default_sessions,
            backend=backend,
            access_pattern=scenario.access_pattern,
            arrivals=model,
        )
        logs[backend] = result.log
    reference = _content_by_user(logs[BACKENDS[0]])
    for backend in BACKENDS[1:]:
        assert _content_by_user(logs[backend]) == reference, (
            f"{backend} op stream diverged from the {BACKENDS[0]} stream"
            f"{' (arrivals enabled)' if arrivals else ''}"
        )
    # The two engine-free paths must agree on *timing* too — same
    # analytic model, same float accumulation order.
    assert logs["fast"].operations == logs["fast-columnar"].operations, (
        "fast-columnar records diverged from fast (timing included)"
    )
    return sum(len(ops) for ops in reference.values())


def assert_metrics_noninvasive(users: int, seed: int = SEED) -> int:
    """Observer-on runs must record exactly the observer-off op stream.

    Runs every backend twice — once bare, once under a fully enabled
    :class:`~repro.obs.RunObserver` — and asserts the recorded
    operations and sessions are equal record-for-record (timing
    included).  This is the zero-perturbation guarantee: metrics read
    the event stream, they never touch RNG streams or op bytes.

    Returns the number of ops compared.
    """
    scenario = get_scenario(SCENARIO)
    spec = scenario.build(users, seed)
    compared = 0
    for backend in BACKENDS:
        bare = WorkloadGenerator(spec).run_simulated(
            sessions_per_user=scenario.default_sessions,
            backend=backend,
            access_pattern=scenario.access_pattern,
        )
        observed = WorkloadGenerator(spec).run_simulated(
            sessions_per_user=scenario.default_sessions,
            backend=backend,
            access_pattern=scenario.access_pattern,
            observer=RunObserver(),
        )
        assert bare.log.operations == observed.log.operations, (
            f"{backend}: enabling the observer changed the op stream"
        )
        assert bare.log.sessions == observed.log.sessions, (
            f"{backend}: enabling the observer changed session records"
        )
        compared += len(bare.log.operations)
    return compared


def _timed_run(backend: str, users: int, seed: int, repeats: int,
               arrivals: bool = False, metrics: bool = False):
    """Best-of-``repeats`` fleet run; returns (wall_s, tally)."""
    best = None
    result = None
    for _ in range(repeats):
        metrics_out = None
        if metrics:
            fd, metrics_out = tempfile.mkstemp(suffix=".manifest.json")
            os.close(fd)
        try:
            started = time.perf_counter()
            result = run_fleet(FleetConfig(
                scenario=SCENARIO, users=users, shards=1, workers=1,
                seed=seed, backend=backend, sessions_per_user=SESSIONS,
                use_arrivals=arrivals, metrics_out=metrics_out,
            ))
            wall_s = time.perf_counter() - started
        finally:
            if metrics_out is not None:
                os.unlink(metrics_out)
        best = wall_s if best is None else min(best, wall_s)
    return best, result


def _metrics_overhead(users: int, seed: int, repeats: int):
    """Observer cost via interleaved on/off runs; returns
    ``(overhead_pct, pair_deltas_pct, wall_on_best, result_on)``.

    Comparing a metrics-on sweep against a metrics-off sweep timed
    *earlier in the process* conflates observer cost with clock drift —
    cache warmth, allocator state and scheduler mood shift between the
    sweeps, which is how the old measurement reported −10% "overhead".
    Here off-runs and on-runs alternate, so both populations sample the
    same machine state, and the reported overhead compares the
    **fastest** run of each side.  Scheduler noise is one-sided (a
    preemption only ever makes a run slower), so best-of converges on
    the true cost where a mean or a per-pair median keeps the noise —
    individual runs on a busy box swing by more than the overhead floor
    being enforced.  The raw per-pair deltas ride along in the results
    JSON as a dispersion diagnostic.
    """
    deltas = []
    best_off = None
    best_on = None
    result_on = None
    for _ in range(max(repeats, 3)):
        wall_off, _ = _timed_run("fast-columnar", users, seed, 1)
        wall_on, result_on = _timed_run("fast-columnar", users, seed, 1,
                                        metrics=True)
        best_off = wall_off if best_off is None else min(best_off, wall_off)
        best_on = wall_on if best_on is None else min(best_on, wall_on)
        if wall_off > 0:
            deltas.append((wall_on / wall_off - 1.0) * 100.0)
    overhead = ((best_on / best_off - 1.0) * 100.0
                if best_off and best_on else 0.0)
    return overhead, deltas, best_on, result_on


def _timed_sweep(users: int, seed: int, arrivals: bool):
    """Time every backend once; returns (rows, wall-by-backend)."""
    runs = []
    wall_by_backend = {}
    for backend in BACKENDS:
        # The DES run is minutes-long and steady; the engine-free runs
        # are sub-second, where one scheduler hiccup would swing the
        # recorded speedups, so they take the best of several repeats.
        repeats = 1 if backend == "nfs" else REPEATS
        wall_s, result = _timed_run(backend, users, seed, repeats,
                                    arrivals=arrivals)
        wall_by_backend[backend] = wall_s
        runs.append({
            "backend": backend,
            "arrivals": arrivals,
            "wall_s": wall_s,
            "repeats": repeats,
            "ops": result.tally.operations,
            "ops_per_s": (result.tally.operations / wall_s
                          if wall_s > 0 else 0.0),
        })
    return runs, wall_by_backend


def backend_throughput_results(users: int = None, seed: int = SEED) -> dict:
    """Determinism check + timed sweep; returns the result dict.

    Two sweeps run: the classic everyone-starts-at-zero configuration,
    and the same population with the scenario's arrival model enabled —
    the temporal layer must not erode the columnar floor (>= 20x the
    DES), since schedules are resolved once per user and the hot path
    is untouched.
    """
    users = USERS if users is None else users
    check_users = max(4, users // 8)
    checked_ops = assert_identical_streams(check_users, seed)
    checked_ops_arrivals = assert_identical_streams(check_users, seed,
                                                    arrivals=True)
    checked_ops_metrics = assert_metrics_noninvasive(check_users, seed)

    runs, wall_by_backend = _timed_sweep(users, seed, arrivals=False)
    runs_arrivals, wall_arrivals = _timed_sweep(users, seed, arrivals=True)

    # Observability overhead: the columnar hot path re-timed with a full
    # observer (registry + spans + instrumented sink + manifest write),
    # measured as the median delta over interleaved on/off pairs; its
    # floor is that wall time stays within MAX_METRICS_OVERHEAD_PCT.
    metrics_overhead_pct, overhead_pairs, wall_metrics, result_metrics = (
        _metrics_overhead(users, seed, REPEATS)
    )
    run_metrics = {
        "backend": "fast-columnar",
        "arrivals": False,
        "metrics": True,
        "wall_s": wall_metrics,
        "repeats": max(REPEATS, 3),
        "ops": result_metrics.tally.operations,
        "ops_per_s": (result_metrics.tally.operations / wall_metrics
                      if wall_metrics > 0 else 0.0),
    }
    # Stage attribution for the timed columnar run: plan / synthesize /
    # execute / sink wall and CPU seconds from the observer's spans, so
    # a future regression points at a stage instead of just a total.
    stage_spans = {
        name: {"wall_s": span["wall_s"], "cpu_s": span["cpu_s"],
               "calls": span["calls"]}
        for name, span in (result_metrics.metrics or {}).get(
            "stages", {}).items()
    }

    def speedup(walls, numerator, denominator):
        if walls[denominator] <= 0:
            return 0.0
        return walls[numerator] / walls[denominator]

    return {
        "benchmark": "backends",
        "scenario": SCENARIO,
        "users": users,
        "sessions_per_user": SESSIONS,
        "seed": seed,
        "identical_streams": True,
        "identity_checked_users": check_users,
        "identity_checked_ops": checked_ops,
        "identity_checked_ops_arrivals": checked_ops_arrivals,
        "identity_checked_ops_metrics": checked_ops_metrics,
        "metrics_overhead_pct": metrics_overhead_pct,
        "metrics_overhead_pairs_pct": overhead_pairs,
        "stage_spans": stage_spans,
        "speedup_fast_over_sim": speedup(wall_by_backend, "nfs", "fast"),
        "speedup_columnar_over_fast": speedup(
            wall_by_backend, "fast", "fast-columnar"),
        "speedup_columnar_over_sim": speedup(
            wall_by_backend, "nfs", "fast-columnar"),
        "speedup_columnar_over_sim_arrivals": speedup(
            wall_arrivals, "nfs", "fast-columnar"),
        "runs": runs,
        "runs_arrivals": runs_arrivals,
        "run_metrics": run_metrics,
    }


def write_results_json(results: dict, path: str = None) -> str:
    """Write the result dict (env-stamped) as JSON; returns the path."""
    return _write_env_json(results, JSON_PATH if path is None else path)


def results_table(results: dict) -> str:
    """Render the result dict as the human-readable table."""
    timed = results["runs"] + results.get("runs_arrivals", [])
    if results.get("run_metrics"):
        timed = timed + [results["run_metrics"]]
    rows = [
        (run["backend"], "yes" if run.get("arrivals") else "no",
         "yes" if run.get("metrics") else "no",
         run["wall_s"], run["ops"], run["ops_per_s"])
        for run in timed
    ]
    return format_table(
        ["backend", "arrivals", "metrics", "wall s", "ops", "ops/s"],
        rows,
        title=(
            f"Backend throughput — {results['scenario']}, "
            f"{results['users']} users x {results['sessions_per_user']} "
            f"sessions, seed {results['seed']}; streams identical over "
            f"{results['identity_checked_ops']} ops; fast is "
            f"{results['speedup_fast_over_sim']:.1f}x sim, columnar is "
            f"{results['speedup_columnar_over_fast']:.1f}x fast "
            f"({results['speedup_columnar_over_sim']:.1f}x sim, "
            f"{results['speedup_columnar_over_sim_arrivals']:.1f}x sim "
            "with arrivals); metrics overhead "
            f"{results['metrics_overhead_pct']:+.1f}%"
        ),
    )


def _speedup_assertion_applies(results: dict) -> bool:
    # Wall-clock ratios at smoke sizes are dominated by fixed setup
    # (FSC, tabulation), so the throughput floors only bind full runs.
    return (results["users"] >= DEFAULT_USERS
            and results["sessions_per_user"] >= DEFAULT_SESSIONS)


def check_speedup_floors(results: dict) -> list[str]:
    """Floor violations (empty when all speedups clear their floors)."""
    failures = []
    for key, floor in (
        ("speedup_fast_over_sim", MIN_SPEEDUP),
        ("speedup_columnar_over_fast", MIN_COLUMNAR_OVER_FAST),
        ("speedup_columnar_over_sim", MIN_COLUMNAR_OVER_SIM),
        ("speedup_columnar_over_sim_arrivals", MIN_COLUMNAR_OVER_SIM),
    ):
        if results[key] < floor:
            failures.append(
                f"expected {key} >= {floor}x, got {results[key]:.2f}x"
            )
    if results["metrics_overhead_pct"] > MAX_METRICS_OVERHEAD_PCT:
        failures.append(
            f"expected metrics_overhead_pct <= {MAX_METRICS_OVERHEAD_PCT}%, "
            f"got {results['metrics_overhead_pct']:.2f}%"
        )
    return failures


def test_bench_backends(benchmark):
    from .conftest import emit, once

    results = once(benchmark, backend_throughput_results)
    emit("bench_backends", results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
    assert results["identical_streams"]
    if _speedup_assertion_applies(results):
        failures = check_speedup_floors(results)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":
    results = backend_throughput_results()
    print(results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
    if _speedup_assertion_applies(results):
        failures = check_speedup_floors(results)
        if failures:
            raise SystemExit("; ".join(failures))
