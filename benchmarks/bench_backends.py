"""Backend throughput: DES simulation vs analytic fast replay.

Runs the same ``mixed-campus`` population once through the discrete-event
``nfs`` backend and once through the engine-free ``fast`` backend and
reports, per backend, wall-clock time and ops per second — plus the
speedup of fast over sim.  Before timing anything it asserts the two
backends' **op streams are byte-identical** (op kind, path, size, per
user and session) at a reduced population: that identity is the staged
pipeline's core guarantee, and a throughput number for a *different*
workload would be meaningless.

Machine-readable results go to ``BENCH_backends.json`` (override with
``BENCH_BACKENDS_JSON``).  ``BENCH_BACKENDS_USERS`` shrinks the timed
population for CI smoke runs; the ≥5x speedup assertion only applies to
full-size runs.

Run either way::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -q
    PYTHONPATH=src python benchmarks/bench_backends.py
"""

import json
import os
import time

from repro.core import WorkloadGenerator
from repro.fleet import FleetConfig, run_fleet
from repro.harness import format_table
from repro.scenarios import get_scenario

DEFAULT_USERS = 120
SEED = 7
SCENARIO = "mixed-campus"
BACKENDS = ("nfs", "fast")
MIN_SPEEDUP = 5.0
DEFAULT_JSON_PATH = "BENCH_backends.json"

USERS = int(os.environ.get("BENCH_BACKENDS_USERS", DEFAULT_USERS))
JSON_PATH = os.environ.get("BENCH_BACKENDS_JSON", DEFAULT_JSON_PATH)


def _content_by_user(log):
    """Per-user, in-order, timing-free projection of an op log.

    The DES interleaves users on the engine clock while fast replay runs
    them sequentially, so global order legitimately differs — but each
    user's own stream must match element for element.
    """
    by_user = {}
    for o in log.operations:
        by_user.setdefault(o.user_id, []).append(
            (o.session_id, o.op, o.path, o.category_key, o.size)
        )
    return by_user


def assert_identical_streams(users: int, seed: int = SEED) -> int:
    """Run both backends with full op logs; assert stream identity.

    Returns the number of ops compared.
    """
    scenario = get_scenario(SCENARIO)
    spec = scenario.build(users, seed)
    logs = {}
    for backend in BACKENDS:
        result = WorkloadGenerator(spec).run_simulated(
            sessions_per_user=scenario.default_sessions,
            backend=backend,
            access_pattern=scenario.access_pattern,
        )
        logs[backend] = result.log
    sim_ops = _content_by_user(logs["nfs"])
    fast_ops = _content_by_user(logs["fast"])
    assert sim_ops == fast_ops, (
        "fast backend op stream diverged from the DES stream"
    )
    return sum(len(ops) for ops in sim_ops.values())


def backend_throughput_results(users: int = None, seed: int = SEED) -> dict:
    """Determinism check + timed sweep; returns the result dict."""
    users = USERS if users is None else users
    check_users = max(4, users // 8)
    checked_ops = assert_identical_streams(check_users, seed)

    runs = []
    wall_by_backend = {}
    for backend in BACKENDS:
        started = time.perf_counter()
        result = run_fleet(FleetConfig(
            scenario=SCENARIO, users=users, shards=1, workers=1, seed=seed,
            backend=backend,
        ))
        wall_s = time.perf_counter() - started
        wall_by_backend[backend] = wall_s
        runs.append({
            "backend": backend,
            "wall_s": wall_s,
            "ops": result.tally.operations,
            "ops_per_s": (result.tally.operations / wall_s
                          if wall_s > 0 else 0.0),
        })
    return {
        "benchmark": "backends",
        "scenario": SCENARIO,
        "users": users,
        "seed": seed,
        "identical_streams": True,
        "identity_checked_users": check_users,
        "identity_checked_ops": checked_ops,
        "speedup_fast_over_sim": (
            wall_by_backend["nfs"] / wall_by_backend["fast"]
            if wall_by_backend["fast"] > 0 else 0.0
        ),
        "runs": runs,
    }


def write_results_json(results: dict, path: str = None) -> str:
    """Write the result dict as JSON; returns the path written."""
    path = JSON_PATH if path is None else path
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(results, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path


def results_table(results: dict) -> str:
    """Render the result dict as the human-readable table."""
    rows = [
        (run["backend"], run["wall_s"], run["ops"], run["ops_per_s"])
        for run in results["runs"]
    ]
    return format_table(
        ["backend", "wall s", "ops", "ops/s"],
        rows,
        title=(
            f"Backend throughput — {results['scenario']}, "
            f"{results['users']} users, seed {results['seed']}; "
            f"streams identical over {results['identity_checked_ops']} ops; "
            f"fast is {results['speedup_fast_over_sim']:.1f}x sim"
        ),
    )


def _speedup_assertion_applies(results: dict) -> bool:
    # Wall-clock ratios at smoke sizes are dominated by fixed setup
    # (FSC, tabulation), so the throughput floor only binds full runs.
    return results["users"] >= DEFAULT_USERS


def test_bench_backends(benchmark):
    from .conftest import emit, once

    results = once(benchmark, backend_throughput_results)
    emit("bench_backends", results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
    assert results["identical_streams"]
    if _speedup_assertion_applies(results):
        speedup = results["speedup_fast_over_sim"]
        assert speedup >= MIN_SPEEDUP, (
            f"expected fast backend >= {MIN_SPEEDUP}x sim ops/s, "
            f"got {speedup:.2f}x"
        )


if __name__ == "__main__":
    results = backend_throughput_results()
    print(results_table(results))
    path = write_results_json(results)
    print(f"\nmachine-readable results written to {path}")
    if _speedup_assertion_applies(results):
        if results["speedup_fast_over_sim"] < MIN_SPEEDUP:
            raise SystemExit(
                f"expected fast backend >= {MIN_SPEEDUP}x sim, got "
                f"{results['speedup_fast_over_sim']:.2f}x"
            )
