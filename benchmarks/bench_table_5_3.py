"""Table 5.3 — access size and response time vs concurrent users.

Simulated SUN NFS, heavy-I/O users (5 000 µs think time), 1-6
concurrent users, ~50 login sessions per point.
"""

from repro.harness import table_5_3

from .conftest import emit, once


def test_bench_table_5_3(benchmark):
    result = once(benchmark, lambda: table_5_3(max_users=6, sessions_total=50, total_files=300, seed=0))
    emit("bench_table_5_3", result.formatted())
