"""Figure 5.8 — response/byte vs users, 80% heavy / 20% light."""

from repro.harness import figure_5_8

from .conftest import emit, once


def test_bench_fig_5_8(benchmark):
    result = once(benchmark, lambda: figure_5_8(sessions_total=50, total_files=300, seed=0))
    emit("bench_fig_5_8", result.formatted())
