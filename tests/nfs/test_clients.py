"""Integration tests for the simulated NFS / local-disk / AFS clients."""

import pytest

from repro.nfs import (
    AfsLikeFileSystem,
    FileServer,
    LocalDiskFileSystem,
    NetworkLink,
    NfsClient,
    SUN_NFS_TIMING,
)
from repro.sim import Engine
from repro.vfs import (
    BadDescriptorError,
    FileExistsFsError,
    NoSuchFileError,
    OpenFlags,
    Whence,
)

from .conftest import run


class TestNfsClientCorrectness:
    def test_create_write_read_roundtrip(self, engine, nfs):
        def workload():
            fd = yield from nfs.creat("/f")
            yield from nfs.write(fd, b"hello nfs")
            yield from nfs.close(fd)
            fd = yield from nfs.open("/f", OpenFlags.RDONLY)
            data = yield from nfs.read(fd, 100)
            yield from nfs.close(fd)
            return data

        assert run(engine, workload()) == b"hello nfs"

    def test_open_missing_raises(self, engine, nfs):
        def workload():
            yield from nfs.open("/missing", OpenFlags.RDONLY)

        with pytest.raises(NoSuchFileError):
            run(engine, workload())

    def test_excl_create_conflict(self, engine, nfs):
        def workload():
            fd = yield from nfs.creat("/f")
            yield from nfs.close(fd)
            yield from nfs.open(
                "/f", OpenFlags.WRONLY | OpenFlags.CREAT | OpenFlags.EXCL
            )

        with pytest.raises(FileExistsFsError):
            run(engine, workload())

    def test_trunc_on_open(self, engine, nfs):
        def workload():
            fd = yield from nfs.creat("/f")
            yield from nfs.write(fd, b"0123456789")
            yield from nfs.close(fd)
            fd = yield from nfs.open("/f", OpenFlags.WRONLY | OpenFlags.TRUNC)
            yield from nfs.close(fd)
            return (yield from nfs.stat("/f"))

        assert run(engine, workload()).size == 0

    def test_append_mode(self, engine, nfs):
        def workload():
            fd = yield from nfs.creat("/f")
            yield from nfs.write(fd, b"base")
            yield from nfs.close(fd)
            fd = yield from nfs.open("/f", OpenFlags.WRONLY | OpenFlags.APPEND)
            yield from nfs.write(fd, b"+tail")
            yield from nfs.close(fd)
            fd = yield from nfs.open("/f", OpenFlags.RDONLY)
            data = yield from nfs.read(fd, 100)
            yield from nfs.close(fd)
            return data

        assert run(engine, workload()) == b"base+tail"

    def test_lseek_positions_reads(self, engine, nfs):
        def workload():
            fd = yield from nfs.creat("/f")
            yield from nfs.write(fd, b"0123456789")
            yield from nfs.close(fd)
            fd = yield from nfs.open("/f", OpenFlags.RDONLY)
            yield from nfs.lseek(fd, -3, Whence.END)
            data = yield from nfs.read(fd, 10)
            yield from nfs.close(fd)
            return data

        assert run(engine, workload()) == b"789"

    def test_multi_page_transfer(self, engine, nfs):
        payload = bytes(range(256)) * 128  # 32 KiB, 4 pages of 8 KiB

        def workload():
            fd = yield from nfs.creat("/big")
            yield from nfs.write(fd, payload)
            yield from nfs.close(fd)
            fd = yield from nfs.open("/big", OpenFlags.RDONLY)
            data = yield from nfs.read(fd, len(payload))
            yield from nfs.close(fd)
            return data

        assert run(engine, workload()) == payload

    def test_directory_operations(self, engine, nfs):
        def workload():
            yield from nfs.mkdir("/d")
            fd = yield from nfs.creat("/d/a")
            yield from nfs.close(fd)
            fd = yield from nfs.creat("/d/b")
            yield from nfs.close(fd)
            entries = yield from nfs.listdir("/d")
            yield from nfs.unlink("/d/a")
            yield from nfs.rename("/d/b", "/d/c")
            after = yield from nfs.listdir("/d")
            return entries, after

        before, after = run(engine, workload())
        assert before == ["a", "b"]
        assert after == ["c"]

    def test_bad_descriptor(self, engine, nfs):
        def workload():
            yield from nfs.read(99, 10)

        with pytest.raises(BadDescriptorError):
            run(engine, workload())

    def test_exists_probe(self, engine, nfs):
        def workload():
            missing = yield from nfs.exists("/nope")
            fd = yield from nfs.creat("/yes")
            yield from nfs.close(fd)
            present = yield from nfs.exists("/yes")
            return missing, present

        assert run(engine, workload()) == (False, True)


class TestNfsTiming:
    def test_time_advances_per_call(self, engine, nfs):
        def workload():
            t0 = engine.now
            fd = yield from nfs.creat("/f")
            t_open = engine.now - t0
            t1 = engine.now
            yield from nfs.write(fd, b"x" * 1024)
            t_write = engine.now - t1
            t2 = engine.now
            yield from nfs.close(fd)
            t_close = engine.now - t2
            return t_open, t_write, t_close

        t_open, t_write, t_close = run(engine, workload())
        assert t_open > 0
        # A 1 KiB write-through write costs more than the stateless close.
        assert t_write > t_close
        # Close is local: syscall overhead only.
        assert t_close == pytest.approx(
            SUN_NFS_TIMING.client.syscall_overhead_us
        )

    def test_cached_read_faster_than_cold(self, engine, nfs):
        def workload():
            fd = yield from nfs.creat("/f")
            yield from nfs.write(fd, b"z" * 4096)
            yield from nfs.close(fd)
            # Invalidate the server cache to force a cold read.
            nfs.server.cache.invalidate_file("/f")
            fd = yield from nfs.open("/f", OpenFlags.RDONLY)
            t0 = engine.now
            yield from nfs.read(fd, 4096)
            cold = engine.now - t0
            yield from nfs.lseek(fd, 0, Whence.SET)
            t1 = engine.now
            yield from nfs.read(fd, 4096)
            warm = engine.now - t1
            yield from nfs.close(fd)
            return cold, warm

        cold, warm = run(engine, workload())
        assert cold > warm
        assert cold - warm >= SUN_NFS_TIMING.disk.positioning_us * 0.5

    def test_write_through_touches_disk(self):
        from repro.nfs import STRICT_NFSV2_TIMING

        engine = Engine()
        server = FileServer(engine, STRICT_NFSV2_TIMING)
        network = NetworkLink(engine, STRICT_NFSV2_TIMING.network)
        client = NfsClient(engine, server, network)

        def workload():
            fd = yield from client.creat("/f")
            yield from client.write(fd, b"d" * 1024)
            yield from client.close(fd)

        run(engine, workload())
        assert server.disk.total_accesses > 0

    def test_write_behind_batches_flushes(self, engine, nfs):
        threshold = SUN_NFS_TIMING.server.flush_threshold_bytes

        def workload():
            fd = yield from nfs.creat("/f")
            # Stay below the high-water mark: no flush, no disk write.
            yield from nfs.write(fd, b"d" * 1024)
            below = nfs.server.flush_count
            # Cross it: exactly one batched flush.
            yield from nfs.write(fd, b"d" * (threshold + 1024))
            yield from nfs.close(fd)
            return below, nfs.server.flush_count

        below, after = run(engine, workload())
        assert below == 0
        assert after >= 1

    def test_contention_slows_users_down(self):
        def solo_time():
            engine = Engine()
            server = FileServer(engine, SUN_NFS_TIMING)
            network = NetworkLink(engine, SUN_NFS_TIMING.network)
            client = NfsClient(engine, server, network)

            def workload():
                fd = yield from client.creat("/f")
                for _ in range(20):
                    yield from client.write(fd, b"w" * 1024)
                yield from client.close(fd)

            run(engine, workload())
            return engine.now

        def contended_time():
            engine = Engine()
            server = FileServer(engine, SUN_NFS_TIMING)
            network = NetworkLink(engine, SUN_NFS_TIMING.network)
            client = NfsClient(engine, server, network)

            def workload(i):
                fd = yield from client.creat(f"/f{i}")
                for _ in range(20):
                    yield from client.write(fd, b"w" * 1024)
                yield from client.close(fd)

            handles = [engine.spawn(workload(i)) for i in range(4)]
            engine.run_until_processes_finish(handles)
            return engine.now

        assert contended_time() > solo_time() * 2


class TestLocalDisk:
    def test_roundtrip(self):
        engine = Engine()
        local = LocalDiskFileSystem(engine)

        def workload():
            fd = yield from local.creat("/f")
            yield from local.write(fd, b"local data")
            yield from local.close(fd)
            fd = yield from local.open("/f", OpenFlags.RDONLY)
            data = yield from local.read(fd, 100)
            yield from local.close(fd)
            return data

        assert run(engine, workload()) == b"local data"

    def test_faster_than_nfs_for_writes(self):
        def timed(client_factory):
            engine = Engine()
            client = client_factory(engine)

            def workload():
                fd = yield from client.creat("/f")
                for _ in range(10):
                    yield from client.write(fd, b"x" * 1024)
                yield from client.close(fd)

            run(engine, workload())
            return engine.now

        def make_nfs(engine):
            server = FileServer(engine, SUN_NFS_TIMING)
            network = NetworkLink(engine, SUN_NFS_TIMING.network)
            return NfsClient(engine, server, network)

        assert timed(LocalDiskFileSystem) < timed(make_nfs)


class TestAfsLike:
    def test_roundtrip(self, engine, afs):
        def workload():
            fd = yield from afs.creat("/f")
            yield from afs.write(fd, b"afs data")
            yield from afs.close(fd)
            fd = yield from afs.open("/f", OpenFlags.RDONLY)
            data = yield from afs.read(fd, 100)
            yield from afs.close(fd)
            return data

        assert run(engine, workload()) == b"afs data"

    def test_second_open_hits_cache(self, engine, afs):
        def workload():
            fd = yield from afs.creat("/f")
            yield from afs.write(fd, b"v" * 8192)
            yield from afs.close(fd)
            fd = yield from afs.open("/f", OpenFlags.RDONLY)
            yield from afs.read(fd, 8192)
            yield from afs.close(fd)
            fetches_after_first = afs.whole_file_fetches
            fd = yield from afs.open("/f", OpenFlags.RDONLY)
            yield from afs.read(fd, 8192)
            yield from afs.close(fd)
            return fetches_after_first, afs.whole_file_fetches

        first, second = run(engine, workload())
        assert second == first  # no re-fetch of an unchanged file

    def test_dirty_close_stores_whole_file(self, engine, afs):
        def workload():
            fd = yield from afs.creat("/f")
            yield from afs.write(fd, b"d" * 1024)
            yield from afs.close(fd)
            return afs.whole_file_stores

        assert run(engine, workload()) == 1

    def test_reads_are_local_after_fetch(self, engine, afs):
        def workload():
            fd = yield from afs.creat("/f")
            yield from afs.write(fd, b"r" * 4096)
            yield from afs.close(fd)
            fd = yield from afs.open("/f", OpenFlags.RDONLY)
            t0 = engine.now
            yield from afs.read(fd, 4096)
            elapsed = engine.now - t0
            yield from afs.close(fd)
            return elapsed

        elapsed = run(engine, workload())
        # Local read: syscall overhead + memcpy, far below one RPC.
        assert elapsed < 2 * SUN_NFS_TIMING.network.latency_us

    def test_afs_beats_nfs_on_rereads(self, engine):
        """Whole-file caching wins when a file is read many times."""

        def total_time(make_client):
            local_engine = Engine()
            server = FileServer(local_engine, SUN_NFS_TIMING)
            network = NetworkLink(local_engine, SUN_NFS_TIMING.network)
            client = make_client(local_engine, server, network)

            def workload():
                fd = yield from client.creat("/f")
                yield from client.write(fd, b"x" * 8192)
                yield from client.close(fd)
                for _ in range(10):
                    fd = yield from client.open("/f", OpenFlags.RDONLY)
                    yield from client.read(fd, 8192)
                    yield from client.close(fd)

            run(local_engine, workload())
            return local_engine.now

        nfs_time = total_time(NfsClient)
        afs_time = total_time(AfsLikeFileSystem)
        assert afs_time < nfs_time
