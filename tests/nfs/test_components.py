"""Unit tests for network, disk and cache components."""

import pytest

from repro.nfs import (
    BlockCache,
    Disk,
    NetworkLink,
    WholeFileCache,
)
from repro.nfs.timing import DiskParameters, NetworkParameters
from repro.sim import Engine

from .conftest import run


class TestNetworkLink:
    def test_transfer_time_is_serialisation_plus_latency(self):
        engine = Engine()
        link = NetworkLink(
            engine, NetworkParameters(latency_us=100.0,
                                      bandwidth_bytes_per_us=2.0)
        )
        run(engine, link.transfer(1000))
        assert engine.now == pytest.approx(1000 / 2.0 + 100.0)

    def test_medium_is_contended(self):
        engine = Engine()
        link = NetworkLink(
            engine, NetworkParameters(latency_us=0.0,
                                      bandwidth_bytes_per_us=1.0)
        )
        done = []

        def sender(tag):
            yield from link.transfer(100)
            done.append((tag, engine.now))

        engine.spawn(sender("a"))
        engine.spawn(sender("b"))
        engine.run()
        assert done == [("a", 100.0), ("b", 200.0)]

    def test_zero_byte_message_pays_latency_only(self):
        engine = Engine()
        link = NetworkLink(
            engine, NetworkParameters(latency_us=50.0,
                                      bandwidth_bytes_per_us=1.0)
        )
        run(engine, link.transfer(0))
        assert engine.now == 50.0

    def test_counters(self):
        engine = Engine()
        link = NetworkLink(engine, NetworkParameters())
        run(engine, link.transfer(64))
        run(engine, link.transfer(32))
        assert link.messages_sent == 2
        assert link.bytes_sent == 96

    def test_negative_payload_rejected(self):
        engine = Engine()
        link = NetworkLink(engine, NetworkParameters())
        with pytest.raises(ValueError):
            run(engine, link.transfer(-1))


class TestDisk:
    def make(self, engine):
        return Disk(
            engine,
            DiskParameters(positioning_us=1000.0, transfer_bytes_per_us=10.0,
                           block_bytes=100),
        )

    def test_random_access_pays_positioning(self):
        engine = Engine()
        disk = self.make(engine)
        run(engine, disk.access("/f", 0, 100))
        assert engine.now == pytest.approx(1000.0 + 10.0)

    def test_sequential_access_skips_positioning(self):
        engine = Engine()
        disk = self.make(engine)

        def workload():
            yield from disk.access("/f", 0, 100)
            yield from disk.access("/f", 100, 100)

        run(engine, workload())
        assert engine.now == pytest.approx(1000.0 + 10.0 + 10.0)
        assert disk.sequential_accesses == 1

    def test_file_switch_pays_positioning_again(self):
        engine = Engine()
        disk = self.make(engine)

        def workload():
            yield from disk.access("/f", 0, 100)
            yield from disk.access("/g", 100, 100)

        run(engine, workload())
        assert engine.now == pytest.approx(2 * (1000.0 + 10.0))

    def test_arm_is_contended(self):
        engine = Engine()
        disk = self.make(engine)
        finishes = []

        def job():
            yield from disk.access("/f", 0, 100)
            finishes.append(engine.now)

        engine.spawn(job())
        engine.spawn(job())
        engine.run()
        assert finishes[0] < finishes[1]

    def test_counters(self):
        engine = Engine()
        disk = self.make(engine)
        run(engine, disk.access("/f", 0, 250))
        assert disk.total_accesses == 1
        assert disk.bytes_transferred == 250

    def test_negative_size_rejected(self):
        engine = Engine()
        disk = self.make(engine)
        with pytest.raises(ValueError):
            run(engine, disk.access("/f", 0, -1))


class TestBlockCache:
    def test_miss_then_hit(self):
        cache = BlockCache(4)
        assert not cache.lookup("/f", 0)
        cache.insert("/f", 0)
        assert cache.lookup("/f", 0)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = BlockCache(2)
        cache.insert("/f", 0)
        cache.insert("/f", 1)
        cache.lookup("/f", 0)      # refresh block 0
        cache.insert("/f", 2)      # evicts block 1
        assert cache.lookup("/f", 0)
        assert not cache.lookup("/f", 1)

    def test_invalidate_file(self):
        cache = BlockCache(8)
        cache.insert("/f", 0)
        cache.insert("/f", 1)
        cache.insert("/g", 0)
        cache.invalidate_file("/f")
        assert not cache.lookup("/f", 0)
        assert cache.lookup("/g", 0)

    def test_zero_capacity_never_caches(self):
        cache = BlockCache(0)
        cache.insert("/f", 0)
        assert not cache.lookup("/f", 0)

    def test_hit_ratio(self):
        cache = BlockCache(4)
        cache.insert("/f", 0)
        cache.lookup("/f", 0)
        cache.lookup("/f", 1)
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_reinsert_refreshes(self):
        cache = BlockCache(2)
        cache.insert("/a", 0)
        cache.insert("/b", 0)
        cache.insert("/a", 0)   # refresh, no eviction
        cache.insert("/c", 0)   # evicts /b
        assert cache.lookup("/a", 0)
        assert not cache.lookup("/b", 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(-1)


class TestWholeFileCache:
    def test_version_validation(self):
        cache = WholeFileCache(1000)
        cache.insert("/f", version=1.0, size=100)
        assert cache.lookup("/f", 1.0)
        assert not cache.lookup("/f", 2.0)  # stale

    def test_byte_budget_eviction(self):
        cache = WholeFileCache(250)
        cache.insert("/a", 1.0, 100)
        cache.insert("/b", 1.0, 100)
        cache.insert("/c", 1.0, 100)  # evicts /a
        assert not cache.lookup("/a", 1.0)
        assert cache.lookup("/b", 1.0)
        assert cache.bytes_used == 200

    def test_oversized_file_bypasses(self):
        cache = WholeFileCache(100)
        cache.insert("/huge", 1.0, 500)
        assert not cache.lookup("/huge", 1.0)
        assert cache.bytes_used == 0

    def test_update_version(self):
        cache = WholeFileCache(1000)
        cache.insert("/f", 1.0, 100)
        cache.update_version("/f", 2.0, 150)
        assert cache.lookup("/f", 2.0)
        assert cache.bytes_used == 150

    def test_evict(self):
        cache = WholeFileCache(1000)
        cache.insert("/f", 1.0, 100)
        cache.evict("/f")
        assert not cache.lookup("/f", 1.0)
        assert cache.bytes_used == 0
