"""Shared fixtures and helpers for the simulated-NFS tests."""

import pytest

from repro.nfs import (
    AfsLikeFileSystem,
    FileServer,
    NetworkLink,
    NfsClient,
    SUN_NFS_TIMING,
)
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def server(engine):
    return FileServer(engine, SUN_NFS_TIMING)


@pytest.fixture
def network(engine):
    return NetworkLink(engine, SUN_NFS_TIMING.network)


@pytest.fixture
def nfs(engine, server, network):
    return NfsClient(engine, server, network)


@pytest.fixture
def afs(engine, server, network):
    return AfsLikeFileSystem(engine, server, network)


def run(engine, generator, name="test-proc"):
    """Spawn a generator, run the engine to completion, return its result."""
    handle = engine.spawn(generator, name=name)
    engine.run()
    if handle.error is not None:  # pragma: no cover - surfaced by engine.run
        raise handle.error
    return handle.result
