"""Unit tests for the file server's RPC procedures and resource hygiene."""

import pytest

from repro.nfs import FileServer, SUN_NFS_TIMING, STRICT_NFSV2_TIMING
from repro.sim import Engine
from repro.vfs import NoSuchFileError

from .conftest import run


@pytest.fixture
def server(engine):
    return FileServer(engine, SUN_NFS_TIMING)


class TestRpcProcedures:
    def test_create_then_getattr(self, engine, server):
        def workload():
            created = yield from server.create("/f")
            stat = yield from server.getattr("/f")
            return created.inode, stat.inode

        created_inode, stat_inode = run(engine, workload())
        assert created_inode == stat_inode

    def test_write_then_read(self, engine, server):
        def workload():
            yield from server.create("/f")
            yield from server.write("/f", 0, b"server data")
            return (yield from server.read("/f", 0, 100))

        assert run(engine, workload()) == b"server data"

    def test_getattr_missing_raises(self, engine, server):
        def workload():
            yield from server.getattr("/missing")

        with pytest.raises(NoSuchFileError):
            run(engine, workload())

    def test_cpu_not_leaked_on_error(self, engine, server):
        """A failing RPC must not leave the server CPU held."""

        def failing():
            try:
                yield from server.getattr("/missing")
            except NoSuchFileError:
                pass

        def succeeding():
            yield from server.create("/ok")
            return True

        run(engine, failing())
        assert server.cpu.in_use == 0
        handle = engine.spawn(succeeding())
        engine.run()
        assert handle.result is True

    def test_rpc_count_increments(self, engine, server):
        def workload():
            yield from server.create("/f")
            yield from server.getattr("/f")
            yield from server.read("/f", 0, 1)

        run(engine, workload())
        assert server.rpc_count == 3

    def test_remove_invalidates_cache(self, engine, server):
        def workload():
            yield from server.create("/f")
            yield from server.write("/f", 0, b"x" * 100)
            yield from server.remove("/f")

        run(engine, workload())
        assert not server.cache.lookup("/f", 0)

    def test_readdir_and_namespace(self, engine, server):
        def workload():
            yield from server.mkdir("/d")
            yield from server.create("/d/a")
            yield from server.rename("/d/a", "/d/b")
            entries = yield from server.readdir("/d")
            yield from server.remove("/d/b")
            yield from server.rmdir("/d")
            return entries

        assert run(engine, workload()) == ["b"]

    def test_truncate_updates_store(self, engine, server):
        def workload():
            yield from server.create("/f")
            yield from server.write("/f", 0, b"0123456789")
            yield from server.truncate("/f", 4)
            return (yield from server.getattr("/f")).size

        assert run(engine, workload()) == 4

    def test_exists_probe(self, engine, server):
        def workload():
            a = yield from server.exists("/nope")
            yield from server.create("/yes")
            b = yield from server.exists("/yes")
            return a, b

        assert run(engine, workload()) == (False, True)

    def test_bad_write_policy_rejected(self, engine):
        from dataclasses import replace
        from repro.nfs import ServerParameters

        bad = replace(SUN_NFS_TIMING,
                      server=ServerParameters(write_policy="lazy"))
        with pytest.raises(ValueError):
            FileServer(engine, bad)


class TestTimingBehaviour:
    def test_cpu_cost_scales_with_bytes(self, engine, server):
        def timed(nbytes):
            def workload():
                yield from server.create("/f")
                yield from server.write("/f", 0, b"x" * nbytes)

            t0 = engine.now
            run(engine, workload())
            return engine.now - t0

        small = timed(10)
        big = timed(50_000)
        assert big > small

    def test_write_through_pays_disk_per_write(self):
        engine = Engine()
        server = FileServer(engine, STRICT_NFSV2_TIMING)

        def workload():
            yield from server.create("/f")
            yield from server.write("/f", 0, b"x" * 100)
            yield from server.write("/f", 100, b"x" * 100)

        run(engine, workload())
        # create meta + two data writes
        assert server.disk.total_accesses >= 3

    def test_write_behind_flush_threshold(self, engine, server):
        threshold = SUN_NFS_TIMING.server.flush_threshold_bytes

        def workload():
            yield from server.create("/f")
            yield from server.write("/f", 0, b"x" * (threshold + 1))

        run(engine, workload())
        assert server.flush_count == 1

    def test_sequential_reads_hit_cache(self, engine, server):
        def workload():
            yield from server.create("/f")
            yield from server.write("/f", 0, b"x" * 4096)
            yield from server.read("/f", 0, 1024)      # warm (just written)
            yield from server.read("/f", 1024, 1024)

        run(engine, workload())
        assert server.cache.hit_ratio > 0.9
