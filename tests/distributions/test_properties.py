"""Property-based tests (hypothesis) on distribution invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    CdfTable,
    MultiStageGamma,
    PhaseTypeExponential,
    RandomStreams,
    ShiftedExponential,
    ShiftedGamma,
    TabulatedCdf,
    TabulatedPdf,
    derive_seed,
)

positive = st.floats(min_value=0.01, max_value=1e4, allow_nan=False)
offsets = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@st.composite
def weight_vectors(draw, max_len=4):
    n = draw(st.integers(min_value=1, max_value=max_len))
    raw = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=n,
            max_size=n,
        )
    )
    total = sum(raw)
    return [w / total for w in raw]


@given(scale=positive, offset=offsets)
def test_exponential_cdf_bounds(scale, offset):
    dist = ShiftedExponential(scale, offset)
    xs = np.linspace(offset - 10, offset + 10 * scale, 101)
    cdf = np.asarray(dist.cdf(xs))
    assert np.all((cdf >= 0.0) & (cdf <= 1.0))
    assert np.all(np.diff(cdf) >= -1e-12)


@given(shape=st.floats(min_value=0.2, max_value=50.0), scale=positive)
def test_gamma_mean_var_positive(shape, scale):
    dist = ShiftedGamma(shape, scale)
    assert dist.mean() > 0
    assert dist.var() > 0
    assert dist.std() == np.sqrt(dist.var())


@given(weights=weight_vectors())
@settings(max_examples=50)
def test_phase_type_mixture_mean_is_weighted_sum(weights):
    scales = [float(i + 1) for i in range(len(weights))]
    dist = PhaseTypeExponential(weights, scales)
    expected = sum(w * s for w, s in zip(weights, scales))
    assert abs(dist.mean() - expected) < 1e-9


@given(weights=weight_vectors())
@settings(max_examples=50)
def test_multi_stage_gamma_cdf_monotone(weights):
    n = len(weights)
    dist = MultiStageGamma(
        weights,
        shapes=[1.0 + i for i in range(n)],
        scales=[2.0] * n,
        offsets=[10.0 * i for i in range(n)],
    )
    xs = np.linspace(-5, 100, 211)
    cdf = np.asarray(dist.cdf(xs))
    assert np.all(np.diff(cdf) >= -1e-12)
    assert np.all((cdf >= 0) & (cdf <= 1.0 + 1e-12))


@given(scale=positive)
@settings(max_examples=30)
def test_cdf_table_quantile_cdf_roundtrip(scale):
    dist = ShiftedExponential(scale)
    table = CdfTable.from_distribution(dist, n_points=257)
    qs = np.linspace(0.01, 0.99, 21)
    xs = table.quantile(qs)
    back = table.cdf(xs)
    assert np.all(np.abs(back - qs) < 1e-6)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    name=st.text(min_size=1, max_size=20),
)
def test_derive_seed_stable_and_bounded(seed, name):
    a = derive_seed(seed, name)
    b = derive_seed(seed, name)
    assert a == b
    assert 0 <= a < 2**64


@given(seed=st.integers(min_value=0, max_value=2**31))
def test_random_streams_independent_names(seed):
    streams = RandomStreams(seed)
    a = streams.get("alpha").random(4)
    b = streams.get("beta").random(4)
    # Identical draws across differently named streams would indicate
    # seed collisions; astronomically unlikely when independent.
    assert not np.allclose(a, b)


@given(
    values=st.lists(
        st.floats(min_value=0.1, max_value=10.0), min_size=3, max_size=20
    )
)
@settings(max_examples=50)
def test_tabulated_pdf_normalises(values):
    xs = np.arange(len(values), dtype=float)
    dist = TabulatedPdf(xs, values)
    area = np.trapezoid(dist.densities, dist.xs)
    assert abs(area - 1.0) < 1e-9
    # CDF endpoints.
    assert dist.cdf(xs[0]) == 0.0
    assert dist.cdf(xs[-1]) == 1.0


@given(n=st.integers(min_value=3, max_value=40))
@settings(max_examples=50)
def test_tabulated_cdf_sampling_within_support(n):
    xs = np.linspace(0.0, 10.0, n)
    cdf = np.linspace(0.0, 1.0, n) ** 2
    dist = TabulatedCdf(xs, cdf)
    rng = np.random.default_rng(0)
    draws = dist.sample(rng, size=200)
    assert np.all((draws >= 0.0) & (draws <= 10.0))


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25)
def test_sampling_is_reproducible(seed):
    dist = PhaseTypeExponential([0.5, 0.5], [1.0, 3.0], [0.0, 5.0])
    a = dist.sample(np.random.default_rng(seed), size=16)
    b = dist.sample(np.random.default_rng(seed), size=16)
    np.testing.assert_array_equal(a, b)
