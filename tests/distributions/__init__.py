"""Test package marker (enables relative imports from conftest modules)."""
