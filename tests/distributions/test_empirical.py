"""Unit tests for tabulated and empirical distributions."""

import numpy as np
import pytest

from repro.distributions import (
    DistributionError,
    EmpiricalDistribution,
    TabulatedCdf,
    TabulatedPdf,
)


class TestTabulatedPdf:
    def test_triangle_density(self):
        xs = [0.0, 1.0, 2.0]
        dist = TabulatedPdf(xs, [0.0, 1.0, 0.0])
        assert dist.pdf(1.0) == pytest.approx(1.0)
        assert dist.cdf(1.0) == pytest.approx(0.5)
        assert dist.mean() == pytest.approx(1.0)

    def test_unnormalised_input_is_normalised(self):
        dist = TabulatedPdf([0.0, 1.0], [5.0, 5.0])
        assert dist.pdf(0.5) == pytest.approx(1.0)

    def test_pdf_zero_outside_support(self):
        dist = TabulatedPdf([1.0, 2.0], [1.0, 1.0])
        assert dist.pdf(0.5) == 0.0
        assert dist.pdf(2.5) == 0.0
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(2.5) == 1.0

    def test_sampling_within_support(self):
        dist = TabulatedPdf([3.0, 4.0, 5.0], [1.0, 2.0, 1.0])
        draws = dist.sample(np.random.default_rng(0), size=1000)
        assert np.all((draws >= 3.0) & (draws <= 5.0))

    def test_sample_mean_close_to_analytic(self):
        dist = TabulatedPdf([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        draws = dist.sample(np.random.default_rng(1), size=100_000)
        assert np.mean(draws) == pytest.approx(1.0, abs=0.01)

    def test_rejects_negative_density(self):
        with pytest.raises(DistributionError):
            TabulatedPdf([0.0, 1.0], [1.0, -1.0])

    def test_rejects_zero_area(self):
        with pytest.raises(DistributionError):
            TabulatedPdf([0.0, 1.0], [0.0, 0.0])

    def test_rejects_unsorted_grid(self):
        with pytest.raises(DistributionError):
            TabulatedPdf([1.0, 0.0], [1.0, 1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(DistributionError):
            TabulatedPdf([0.0, 1.0, 2.0], [1.0, 1.0])


class TestTabulatedCdf:
    def test_uniform_cdf(self):
        dist = TabulatedCdf([0.0, 10.0], [0.0, 1.0])
        assert dist.cdf(5.0) == pytest.approx(0.5)
        assert dist.pdf(5.0) == pytest.approx(0.1)
        assert dist.mean() == pytest.approx(5.0)
        assert dist.var() == pytest.approx(100.0 / 12.0)

    def test_rescales_unnormalised_cdf(self):
        dist = TabulatedCdf([0.0, 1.0, 2.0], [10.0, 30.0, 50.0])
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(2.0) == 1.0
        assert dist.cdf(1.0) == pytest.approx(0.5)

    def test_rejects_decreasing(self):
        with pytest.raises(DistributionError):
            TabulatedCdf([0.0, 1.0, 2.0], [0.0, 0.8, 0.7])

    def test_rejects_flat(self):
        with pytest.raises(DistributionError):
            TabulatedCdf([0.0, 1.0], [0.3, 0.3])

    def test_sampling_quantiles(self):
        dist = TabulatedCdf([0.0, 1.0], [0.0, 1.0])
        draws = dist.sample(np.random.default_rng(2), size=50_000)
        assert np.quantile(draws, 0.5) == pytest.approx(0.5, abs=0.02)

    def test_pdf_outside_support(self):
        dist = TabulatedCdf([1.0, 2.0], [0.0, 1.0])
        assert dist.pdf(0.0) == 0.0
        assert dist.pdf(3.0) == 0.0


class TestEmpiricalDistribution:
    def test_moments_match_data(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        dist = EmpiricalDistribution(data)
        assert dist.mean() == pytest.approx(3.0)
        assert dist.var() == pytest.approx(2.0)

    def test_cdf_is_step_ecdf(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(2.5) == pytest.approx(0.5)
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(10.0) == 1.0

    def test_samples_are_bootstrap_draws(self):
        data = [10.0, 20.0, 30.0]
        dist = EmpiricalDistribution(data)
        draws = dist.sample(np.random.default_rng(3), size=200)
        assert set(np.unique(draws)).issubset(set(data))

    def test_degenerate_data(self):
        dist = EmpiricalDistribution([5.0, 5.0, 5.0])
        assert dist.mean() == 5.0
        assert dist.sample(np.random.default_rng(4)) == 5.0

    def test_pdf_integrates_to_about_one(self):
        rng = np.random.default_rng(5)
        dist = EmpiricalDistribution(rng.normal(0, 1, size=5000), bins=40)
        xs = np.linspace(-6, 6, 2001)
        area = np.trapezoid(np.asarray(dist.pdf(xs)), xs)
        assert area == pytest.approx(1.0, abs=0.02)

    def test_rejects_bins_below_one(self):
        with pytest.raises(DistributionError):
            EmpiricalDistribution([1.0, 2.0], bins=0)

    def test_support(self):
        dist = EmpiricalDistribution([3.0, 9.0, 6.0])
        assert dist.support() == (3.0, 9.0)
