"""Unit tests for shifted and multi-stage gamma distributions."""

import numpy as np
import pytest

from repro.distributions import DistributionError, MultiStageGamma, ShiftedGamma


class TestShiftedGamma:
    def test_mean_and_var(self):
        dist = ShiftedGamma(shape=2.0, scale=3.0, offset=1.0)
        assert dist.mean() == pytest.approx(7.0)
        assert dist.var() == pytest.approx(18.0)

    def test_shape_one_is_exponential(self):
        gamma = ShiftedGamma(shape=1.0, scale=4.0)
        xs = np.linspace(0, 30, 200)
        expected = np.exp(-xs / 4.0) / 4.0
        np.testing.assert_allclose(gamma.pdf(xs), expected, rtol=1e-10)

    def test_pdf_zero_below_offset(self):
        dist = ShiftedGamma(2.0, 1.0, offset=10.0)
        assert dist.pdf(9.0) == 0.0
        assert dist.pdf(10.0) == 0.0  # shape > 1 density vanishes at onset

    def test_shape_one_density_at_onset(self):
        dist = ShiftedGamma(1.0, 2.0, offset=3.0)
        assert dist.pdf(3.0) == pytest.approx(0.5)

    def test_pdf_integrates_to_one(self):
        dist = ShiftedGamma(1.5, 25.4, offset=12.0)  # Figure 5.2 middle panel
        xs = np.linspace(12, 2000, 100_001)
        assert np.trapezoid(dist.pdf(xs), xs) == pytest.approx(1.0, abs=1e-4)

    def test_cdf_limits_and_monotone(self):
        dist = ShiftedGamma(2.0, 10.5)  # Figure 5.2 top panel
        assert dist.cdf(0.0) == pytest.approx(0.0)
        assert dist.cdf(1e5) == pytest.approx(1.0)
        xs = np.linspace(0, 200, 400)
        assert np.all(np.diff(dist.cdf(xs)) >= 0)

    def test_sampling_moments(self):
        dist = ShiftedGamma(3.0, 2.0, offset=5.0)
        draws = dist.sample(np.random.default_rng(3), size=200_000)
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.02)
        assert np.var(draws) == pytest.approx(dist.var(), rel=0.05)

    def test_rejects_bad_parameters(self):
        with pytest.raises(DistributionError):
            ShiftedGamma(0.0, 1.0)
        with pytest.raises(DistributionError):
            ShiftedGamma(1.0, -2.0)
        with pytest.raises(DistributionError):
            ShiftedGamma(1.0, 1.0, offset=np.inf)

    def test_equality_and_hash(self):
        a = ShiftedGamma(1.5, 2.5, 0.5)
        b = ShiftedGamma(1.5, 2.5, 0.5)
        assert a == b
        assert hash(a) == hash(b)


class TestMultiStageGamma:
    def make_fig_5_2(self):
        """Third panel of Figure 5.2."""
        return MultiStageGamma(
            weights=[0.7, 0.2, 0.1],
            shapes=[1.3, 1.5, 1.3],
            scales=[12.3, 12.4, 12.3],
            offsets=[0.0, 23.0, 41.0],
        )

    def test_single_stage_matches_shifted(self):
        mix = MultiStageGamma([1.0], [2.0], [3.0], [1.0])
        single = ShiftedGamma(2.0, 3.0, 1.0)
        xs = np.linspace(0, 40, 101)
        np.testing.assert_allclose(mix.pdf(xs), single.pdf(xs))
        np.testing.assert_allclose(mix.cdf(xs), single.cdf(xs))

    def test_pdf_integrates_to_one(self):
        dist = self.make_fig_5_2()
        xs = np.linspace(0, 1500, 150_001)
        assert np.trapezoid(dist.pdf(xs), xs) == pytest.approx(1.0, abs=1e-3)

    def test_mean_matches_monte_carlo(self):
        dist = self.make_fig_5_2()
        draws = dist.sample(np.random.default_rng(5), size=300_000)
        assert dist.mean() == pytest.approx(np.mean(draws), rel=0.02)
        assert dist.var() == pytest.approx(np.var(draws), rel=0.05)

    def test_cdf_monotone_nondecreasing(self):
        dist = self.make_fig_5_2()
        xs = np.linspace(-10, 500, 2000)
        assert np.all(np.diff(dist.cdf(xs)) >= -1e-12)

    def test_weights_validation(self):
        with pytest.raises(DistributionError):
            MultiStageGamma([0.7, 0.7], [1.0, 1.0], [1.0, 1.0])
        with pytest.raises(DistributionError):
            MultiStageGamma([1.0, -0.0], [1.0, 1.0], [1.0, 1.0])

    def test_length_validation(self):
        with pytest.raises(DistributionError):
            MultiStageGamma([1.0], [1.0, 2.0], [1.0])

    def test_n_stages(self):
        assert self.make_fig_5_2().n_stages == 3

    def test_support_is_min_offset(self):
        dist = MultiStageGamma([0.5, 0.5], [1.0, 1.0], [1.0, 1.0], [7.0, 3.0])
        assert dist.support()[0] == 3.0

    def test_samples_above_min_offset(self):
        dist = MultiStageGamma([0.5, 0.5], [2.0, 2.0], [1.0, 1.0], [7.0, 3.0])
        draws = dist.sample(np.random.default_rng(9), size=500)
        assert np.all(draws >= 3.0)
