"""Batched sampling: vectorized draws must equal scalar draws exactly.

Two properties are pinned for every distribution family:

* ``sample(rng, size=N)`` equals N successive scalar ``sample(rng)``
  calls from an identically seeded generator (NumPy fills vectorized
  output sequentially from the bit stream);
* :class:`~repro.distributions.BatchSampler` serves exactly that
  sequence regardless of its block size.

Together these make block pre-drawing in the synthesis stage a pure
optimisation: it can never change a generated workload.
"""

import numpy as np
import pytest

from repro.distributions import (
    BatchSampler,
    CdfTable,
    Constant,
    DistributionError,
    EmpiricalDistribution,
    MultiStageGamma,
    PhaseTypeExponential,
    ShiftedExponential,
    ShiftedGamma,
    TabulatedCdf,
    TabulatedPdf,
    Uniform,
)

FAMILIES = {
    "constant": Constant(42.5),
    "uniform": Uniform(3.0, 9.0),
    "shifted-exponential": ShiftedExponential(scale=22.1, offset=4.0),
    "phase-type-exponential": PhaseTypeExponential(
        weights=[0.4, 0.3, 0.3],
        scales=[12.7, 18.2, 24.5],
        offsets=[0.0, 18.0, 41.0],
    ),
    "shifted-gamma": ShiftedGamma(shape=1.3, scale=12.3, offset=2.0),
    "multi-stage-gamma": MultiStageGamma(
        weights=[0.7, 0.2, 0.1],
        shapes=[1.3, 1.5, 1.3],
        scales=[12.3, 12.4, 12.3],
        offsets=[0.0, 23.0, 41.0],
    ),
    "tabulated-pdf": TabulatedPdf([0.0, 1.0, 2.0, 3.0], [0.1, 0.5, 0.3, 0.1]),
    "tabulated-cdf": TabulatedCdf([0.0, 1.0, 2.0, 3.0], [0.0, 0.4, 0.9, 1.0]),
    "empirical": EmpiricalDistribution([1.0, 2.0, 2.5, 7.0, 11.0, 13.0]),
}

SAMPLERS = dict(
    FAMILIES,
    **{"cdf-table": CdfTable.from_distribution(ShiftedExponential(10.0))},
)

N = 257  # deliberately not a multiple of any block size


@pytest.mark.parametrize("name", sorted(SAMPLERS))
def test_vectorized_equals_scalar_sequence(name):
    dist = SAMPLERS[name]
    batched = np.asarray(dist.sample(np.random.default_rng(7), size=N))
    rng = np.random.default_rng(7)
    scalars = np.array([float(dist.sample(rng)) for _ in range(N)])
    np.testing.assert_array_equal(batched, scalars)


@pytest.mark.parametrize("name", sorted(SAMPLERS))
@pytest.mark.parametrize("block", [1, 7, 64, 1024])
def test_batch_sampler_equals_scalar_sequence(name, block):
    dist = SAMPLERS[name]
    rng = np.random.default_rng(13)
    sampler = BatchSampler(dist, np.random.default_rng(13), block=block)
    scalars = [float(dist.sample(rng)) for _ in range(N)]
    drawn = [sampler.draw() for _ in range(N)]
    assert drawn == scalars


def test_batch_sampler_block_size_is_invisible():
    dist = FAMILIES["multi-stage-gamma"]
    a = BatchSampler(dist, np.random.default_rng(3), block=4)
    b = BatchSampler(dist, np.random.default_rng(3), block=999)
    assert [a.draw() for _ in range(50)] == [b.draw() for _ in range(50)]


def test_constant_short_circuits_the_stream():
    rng = np.random.default_rng(0)
    sampler = BatchSampler(Constant(5.0), rng, block=8)
    before = rng.bit_generator.state
    assert [sampler.draw() for _ in range(20)] == [5.0] * 20
    assert rng.bit_generator.state == before  # no randomness consumed


def test_bad_block_rejected():
    with pytest.raises(DistributionError):
        BatchSampler(Uniform(0, 1), np.random.default_rng(0), block=0)


def test_draws_are_python_floats():
    sampler = BatchSampler(Uniform(0, 1), np.random.default_rng(0))
    assert type(sampler.draw()) is float
