"""Unit tests for distribution fitting and KS goodness-of-fit."""

import numpy as np
import pytest

from repro.distributions import (
    DistributionError,
    MultiStageGamma,
    PhaseTypeExponential,
    ShiftedExponential,
    ShiftedGamma,
    Uniform,
    fit_best,
    fit_multi_stage_gamma,
    fit_phase_type_exponential,
    fit_shifted_exponential,
    fit_shifted_gamma,
    ks_distance,
    ks_test,
)


class TestKolmogorovSmirnov:
    def test_distance_zero_for_own_quantiles(self):
        dist = ShiftedExponential(1.0)
        # Plug in the exact quantiles: KS distance is the 1/(2n) grid error.
        n = 1000
        qs = (np.arange(n) + 0.5) / n
        samples = -np.log(1.0 - qs)
        assert ks_distance(samples, dist) <= 0.5 / n + 1e-9

    def test_distance_large_for_wrong_distribution(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(1.0, size=2000)
        assert ks_distance(samples, Uniform(0.0, 1.0)) > 0.2

    def test_ks_test_accepts_true_distribution(self):
        rng = np.random.default_rng(1)
        dist = ShiftedExponential(3.0)
        samples = dist.sample(rng, size=500)
        stat, p = ks_test(samples, dist)
        assert p > 0.01
        assert stat < 0.1

    def test_ks_test_rejects_wrong_distribution(self):
        rng = np.random.default_rng(2)
        samples = rng.gamma(9.0, 1.0, size=2000)
        stat, p = ks_test(samples, ShiftedExponential(9.0))
        assert p < 0.001


class TestFitShiftedExponential:
    def test_recovers_parameters(self):
        rng = np.random.default_rng(3)
        truth = ShiftedExponential(scale=7.0, offset=2.0)
        fit = fit_shifted_exponential(truth.sample(rng, size=50_000))
        assert fit.distribution.scale == pytest.approx(7.0, rel=0.05)
        assert fit.distribution.offset == pytest.approx(2.0, abs=0.05)
        assert fit.ks_statistic < 0.02

    def test_fixed_offset(self):
        rng = np.random.default_rng(4)
        samples = rng.exponential(5.0, size=10_000)
        fit = fit_shifted_exponential(samples, offset=0.0)
        assert fit.distribution.offset == 0.0
        assert fit.distribution.scale == pytest.approx(5.0, rel=0.05)

    def test_rejects_offset_above_samples(self):
        with pytest.raises(DistributionError):
            fit_shifted_exponential([1.0, 2.0, 3.0], offset=5.0)

    def test_rejects_single_sample(self):
        with pytest.raises(DistributionError):
            fit_shifted_exponential([1.0])


class TestFitPhaseType:
    def test_two_phase_recovery(self):
        truth = PhaseTypeExponential([0.5, 0.5], [5.0, 5.0], [0.0, 100.0])
        rng = np.random.default_rng(5)
        samples = truth.sample(rng, size=30_000)
        fit = fit_phase_type_exponential(samples, n_phases=2, offsets=[0.0, 100.0])
        assert fit.ks_statistic < 0.02
        assert fit.distribution.mean() == pytest.approx(truth.mean(), rel=0.05)

    def test_one_phase_delegates(self):
        rng = np.random.default_rng(6)
        samples = rng.exponential(2.0, size=5000)
        fit = fit_phase_type_exponential(samples, n_phases=1)
        assert isinstance(fit.distribution, ShiftedExponential)

    def test_auto_offsets_fit_bimodal(self):
        truth = PhaseTypeExponential([0.6, 0.4], [3.0, 8.0], [0.0, 50.0])
        rng = np.random.default_rng(7)
        samples = truth.sample(rng, size=20_000)
        fit = fit_phase_type_exponential(samples, n_phases=2)
        assert fit.distribution.mean() == pytest.approx(truth.mean(), rel=0.1)

    def test_offsets_length_mismatch(self):
        with pytest.raises(DistributionError):
            fit_phase_type_exponential([1.0, 2.0, 3.0], n_phases=2, offsets=[0.0])

    def test_nonpositive_phase_count(self):
        with pytest.raises(DistributionError):
            fit_phase_type_exponential([1.0, 2.0], n_phases=0)


class TestFitGamma:
    def test_single_gamma_moments(self):
        truth = ShiftedGamma(shape=4.0, scale=2.0, offset=10.0)
        rng = np.random.default_rng(8)
        fit = fit_shifted_gamma(truth.sample(rng, size=50_000), offset=10.0)
        assert fit.distribution.shape == pytest.approx(4.0, rel=0.05)
        assert fit.distribution.scale == pytest.approx(2.0, rel=0.05)

    def test_multi_stage_fit_quality(self):
        truth = MultiStageGamma(
            [0.7, 0.3], [2.0, 3.0], [5.0, 4.0], [0.0, 60.0]
        )
        rng = np.random.default_rng(9)
        samples = truth.sample(rng, size=30_000)
        fit = fit_multi_stage_gamma(samples, n_stages=2, offsets=[0.0, 60.0])
        assert fit.ks_statistic < 0.05
        assert fit.distribution.mean() == pytest.approx(truth.mean(), rel=0.05)

    def test_one_stage_delegates(self):
        rng = np.random.default_rng(10)
        samples = rng.gamma(2.0, 3.0, size=5000)
        fit = fit_multi_stage_gamma(samples, n_stages=1)
        assert isinstance(fit.distribution, ShiftedGamma)


class TestFitBest:
    def test_picks_a_good_candidate(self):
        rng = np.random.default_rng(11)
        samples = rng.gamma(3.0, 10.0, size=8000)
        fit = fit_best(samples, max_phases=2)
        assert fit.ks_statistic < 0.05

    def test_respects_family_restriction(self):
        rng = np.random.default_rng(12)
        samples = rng.exponential(1.0, size=2000)
        fit = fit_best(samples, max_phases=1, families=("exponential",))
        assert isinstance(fit.distribution, ShiftedExponential)

    def test_describe_mentions_ks(self):
        rng = np.random.default_rng(13)
        fit = fit_shifted_exponential(rng.exponential(1.0, size=100))
        assert "KS=" in fit.describe()
