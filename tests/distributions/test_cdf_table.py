"""Unit tests for Simpson-rule CDF tabulation and inverse sampling."""

import numpy as np
import pytest

from repro.distributions import (
    CdfTable,
    Constant,
    DistributionError,
    PhaseTypeExponential,
    ShiftedExponential,
    ShiftedGamma,
    Uniform,
    simpson_cdf,
)


class TestSimpsonCdf:
    def test_uniform_density(self):
        xs, cdf = simpson_cdf(lambda x: np.full_like(x, 0.1), 0.0, 10.0, 101)
        np.testing.assert_allclose(cdf, xs / 10.0, atol=1e-12)

    def test_exponential_density_high_accuracy(self):
        dist = ShiftedExponential(2.0)
        xs, cdf = simpson_cdf(lambda x: np.asarray(dist.pdf(x)), 0.0, 40.0, 401)
        np.testing.assert_allclose(cdf, np.asarray(dist.cdf(xs)) / dist.cdf(40.0), atol=1e-6)

    def test_even_point_count_uses_trapezoid_tail(self):
        xs, cdf = simpson_cdf(lambda x: np.full_like(x, 0.5), 0.0, 2.0, 100)
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= 0)

    def test_rejects_tiny_tables(self):
        with pytest.raises(DistributionError):
            simpson_cdf(lambda x: np.ones_like(x), 0.0, 1.0, 2)

    def test_rejects_bad_range(self):
        with pytest.raises(DistributionError):
            simpson_cdf(lambda x: np.ones_like(x), 1.0, 1.0)
        with pytest.raises(DistributionError):
            simpson_cdf(lambda x: np.ones_like(x), 0.0, np.inf)

    def test_rejects_negative_density(self):
        with pytest.raises(DistributionError):
            simpson_cdf(lambda x: -np.ones_like(x), 0.0, 1.0)

    def test_rejects_zero_density(self):
        with pytest.raises(DistributionError):
            simpson_cdf(lambda x: np.zeros_like(x), 0.0, 1.0)

    def test_quadratic_density_exact(self):
        # Simpson is exact for polynomials up to cubic.
        xs, cdf = simpson_cdf(lambda x: 3.0 * x**2, 0.0, 1.0, 11)
        np.testing.assert_allclose(cdf[::2], xs[::2] ** 3, atol=1e-12)


class TestCdfTable:
    def test_from_distribution_mean(self):
        dist = ShiftedGamma(2.0, 100.0, offset=50.0)
        table = CdfTable.from_distribution(dist, n_points=1025, coverage=0.99999)
        assert table.mean() == pytest.approx(dist.mean(), rel=0.01)

    def test_inverse_sampling_matches_distribution(self):
        dist = PhaseTypeExponential([0.6, 0.4], [10.0, 30.0], [0.0, 20.0])
        table = CdfTable.from_distribution(dist, n_points=2049)
        draws = table.sample(np.random.default_rng(2), size=100_000)
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.03)

    def test_quantile_roundtrip(self):
        dist = ShiftedExponential(5.0)
        table = CdfTable.from_distribution(dist, n_points=513)
        for q in (0.1, 0.5, 0.9):
            x = table.quantile(q)
            assert table.cdf(x) == pytest.approx(q, abs=1e-6)

    def test_quantile_rejects_out_of_range(self):
        table = CdfTable([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(DistributionError):
            table.quantile(1.5)
        with pytest.raises(DistributionError):
            table.quantile(-0.1)

    def test_from_samples_ecdf(self):
        data = np.arange(1, 101, dtype=float)
        table = CdfTable.from_samples(data, n_points=101)
        assert table.cdf(50.0) == pytest.approx(0.5, abs=0.02)
        assert table.mean() == pytest.approx(np.mean(data), rel=0.03)

    def test_validation_rejects_non_monotone_xs(self):
        with pytest.raises(DistributionError):
            CdfTable([0.0, 0.0, 1.0], [0.0, 0.5, 1.0])

    def test_validation_rejects_decreasing_cdf(self):
        with pytest.raises(DistributionError):
            CdfTable([0.0, 0.5, 1.0], [0.0, 0.7, 0.6])

    def test_validation_rejects_bad_endpoints(self):
        with pytest.raises(DistributionError):
            CdfTable([0.0, 1.0], [0.2, 1.0])
        with pytest.raises(DistributionError):
            CdfTable([0.0, 1.0], [0.0, 0.9])

    def test_memory_bytes_grows_with_points(self):
        dist = Uniform(0.0, 1.0)
        small = CdfTable.from_distribution(dist, n_points=65)
        big = CdfTable.from_distribution(dist, n_points=1025)
        assert big.memory_bytes > small.memory_bytes
        assert small.memory_bytes == 65 * 8 * 2

    def test_constant_distribution_tabulates(self):
        table = CdfTable.from_distribution(Uniform(5.0, 5.5), n_points=33)
        draws = table.sample(np.random.default_rng(0), size=100)
        assert np.all((draws >= 5.0) & (draws <= 5.5))

    def test_constant_quantile_range(self):
        c = Constant(7.0)
        assert c.quantile_range() == (7.0, 7.0)

    def test_sample_scalar(self):
        table = CdfTable([0.0, 1.0], [0.0, 1.0])
        value = table.sample(np.random.default_rng(1))
        assert isinstance(value, float)
        assert 0.0 <= value <= 1.0

    def test_repr_mentions_range(self):
        table = CdfTable([2.0, 4.0], [0.0, 1.0])
        assert "2" in repr(table) and "4" in repr(table)
