"""Unit tests for shifted and phase-type exponential distributions."""

import numpy as np
import pytest

from repro.distributions import (
    DistributionError,
    PhaseTypeExponential,
    ShiftedExponential,
)

RNG = np.random.default_rng(1234)


class TestShiftedExponential:
    def test_pdf_at_origin(self):
        dist = ShiftedExponential(scale=2.0)
        assert dist.pdf(0.0) == pytest.approx(0.5)

    def test_pdf_zero_below_offset(self):
        dist = ShiftedExponential(scale=2.0, offset=5.0)
        assert dist.pdf(4.999) == 0.0
        assert dist.pdf(-10.0) == 0.0

    def test_pdf_decays(self):
        dist = ShiftedExponential(scale=1.0)
        assert dist.pdf(0.0) > dist.pdf(1.0) > dist.pdf(2.0)

    def test_cdf_limits(self):
        dist = ShiftedExponential(scale=3.0, offset=1.0)
        assert dist.cdf(1.0) == pytest.approx(0.0)
        assert dist.cdf(1e6) == pytest.approx(1.0)

    def test_cdf_median(self):
        dist = ShiftedExponential(scale=1.0)
        assert dist.cdf(np.log(2.0)) == pytest.approx(0.5)

    def test_mean_and_var(self):
        dist = ShiftedExponential(scale=4.0, offset=2.0)
        assert dist.mean() == pytest.approx(6.0)
        assert dist.var() == pytest.approx(16.0)
        assert dist.std() == pytest.approx(4.0)

    def test_sample_scalar_and_vector(self):
        dist = ShiftedExponential(scale=1.0, offset=3.0)
        scalar = dist.sample(RNG)
        assert np.isscalar(scalar) or np.ndim(scalar) == 0
        vec = dist.sample(RNG, size=100)
        assert vec.shape == (100,)
        assert np.all(vec >= 3.0)

    def test_sample_mean_converges(self):
        dist = ShiftedExponential(scale=5.0, offset=1.0)
        draws = dist.sample(np.random.default_rng(7), size=200_000)
        assert np.mean(draws) == pytest.approx(6.0, rel=0.02)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(DistributionError):
            ShiftedExponential(scale=0.0)
        with pytest.raises(DistributionError):
            ShiftedExponential(scale=-1.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(DistributionError):
            ShiftedExponential(scale=np.inf)
        with pytest.raises(DistributionError):
            ShiftedExponential(scale=1.0, offset=np.nan)

    def test_support(self):
        dist = ShiftedExponential(scale=1.0, offset=2.5)
        lo, hi = dist.support()
        assert lo == 2.5
        assert hi == np.inf

    def test_quantile_range_covers_mass(self):
        dist = ShiftedExponential(scale=10.0)
        lo, hi = dist.quantile_range(0.999)
        assert dist.cdf(hi) >= 0.999
        assert lo == 0.0

    def test_equality(self):
        assert ShiftedExponential(1.0, 2.0) == ShiftedExponential(1.0, 2.0)
        assert ShiftedExponential(1.0) != ShiftedExponential(2.0)


class TestPhaseTypeExponential:
    def make_fig_5_1(self):
        """Third panel of Figure 5.1."""
        return PhaseTypeExponential(
            weights=[0.4, 0.3, 0.3],
            scales=[12.7, 18.2, 24.5],
            offsets=[0.0, 18.0, 41.0],
        )

    def test_single_phase_matches_shifted(self):
        mix = PhaseTypeExponential([1.0], [3.0], [1.0])
        single = ShiftedExponential(3.0, 1.0)
        xs = np.linspace(0, 20, 101)
        np.testing.assert_allclose(mix.pdf(xs), single.pdf(xs))
        np.testing.assert_allclose(mix.cdf(xs), single.cdf(xs))

    def test_pdf_integrates_to_one(self):
        dist = self.make_fig_5_1()
        xs = np.linspace(0, 600, 60_001)
        area = np.trapezoid(dist.pdf(xs), xs)
        assert area == pytest.approx(1.0, abs=1e-3)

    def test_mean_formula(self):
        dist = PhaseTypeExponential([0.5, 0.5], [2.0, 4.0], [0.0, 10.0])
        assert dist.mean() == pytest.approx(0.5 * 2.0 + 0.5 * 14.0)

    def test_var_matches_monte_carlo(self):
        dist = self.make_fig_5_1()
        draws = dist.sample(np.random.default_rng(11), size=300_000)
        assert dist.mean() == pytest.approx(np.mean(draws), rel=0.02)
        assert dist.var() == pytest.approx(np.var(draws), rel=0.05)

    def test_cdf_monotone(self):
        dist = self.make_fig_5_1()
        xs = np.linspace(-5, 300, 1000)
        cdf = dist.cdf(xs)
        assert np.all(np.diff(cdf) >= 0)

    def test_sample_respects_min_offset(self):
        dist = PhaseTypeExponential([0.5, 0.5], [1.0, 1.0], [5.0, 9.0])
        draws = dist.sample(RNG, size=1000)
        assert np.all(draws >= 5.0)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(DistributionError):
            PhaseTypeExponential([0.5, 0.4], [1.0, 1.0])

    def test_weights_renormalised_within_tolerance(self):
        dist = PhaseTypeExponential([0.5, 0.5 + 1e-9], [1.0, 2.0])
        assert dist.weights.sum() == pytest.approx(1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(DistributionError):
            PhaseTypeExponential([1.0], [1.0, 2.0])
        with pytest.raises(DistributionError):
            PhaseTypeExponential([0.5, 0.5], [1.0, 2.0], [0.0])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(DistributionError):
            PhaseTypeExponential([1.5, -0.5], [1.0, 1.0])

    def test_n_phases(self):
        assert self.make_fig_5_1().n_phases == 3

    def test_scalar_pdf_returns_float(self):
        dist = self.make_fig_5_1()
        assert isinstance(dist.pdf(10.0), float)
        assert isinstance(dist.cdf(10.0), float)

    def test_figure_5_1_first_panel(self):
        """f(x) = exp(22.1, x): a plain exponential with mean 22.1."""
        dist = PhaseTypeExponential([1.0], [22.1])
        assert dist.pdf(0.0) == pytest.approx(1.0 / 22.1)
        assert dist.mean() == pytest.approx(22.1)
