"""Unit tests for reproducible named random streams."""

import numpy as np

from repro.distributions import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        for name in ("x", "y", "a-long-stream-name"):
            seed = derive_seed(123, name)
            assert 0 <= seed < 2**64


class TestRandomStreams:
    def test_same_name_same_generator(self):
        streams = RandomStreams(5)
        assert streams.get("s") is streams.get("s")

    def test_streams_are_independent_of_draw_order(self):
        """Drawing from one stream never perturbs another."""
        a = RandomStreams(5)
        a.get("noise").random(1000)  # extra draws on an unrelated stream
        value_after_noise = a.get("target").random()

        b = RandomStreams(5)
        value_clean = b.get("target").random()
        assert value_after_noise == value_clean

    def test_fork_gives_distinct_family(self):
        root = RandomStreams(5)
        child_a = root.fork("user-0")
        child_b = root.fork("user-1")
        assert child_a.get("x").random() != child_b.get("x").random()

    def test_fork_is_deterministic(self):
        a = RandomStreams(5).fork("user-0").get("x").random(4)
        b = RandomStreams(5).fork("user-0").get("x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_reset_restarts_streams(self):
        streams = RandomStreams(7)
        first = streams.get("s").random()
        streams.reset()
        assert streams.get("s").random() == first

    def test_spawn_seed_matches_derive(self):
        streams = RandomStreams(9)
        assert streams.spawn_seed("k") == derive_seed(9, "k")

    def test_seed_property(self):
        assert RandomStreams(42).seed == 42
