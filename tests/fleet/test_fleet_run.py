"""End-to-end fleet runs: determinism across shard counts and pools."""

import pytest

from repro.core import SpecError, paper_workload_spec
from repro.fleet import FleetConfig, WorkloadTally, run_fleet
from repro.harness import fleet_aggregate_block, fleet_report


def _config(**overrides):
    base = dict(scenario="mixed-campus", users=8, shards=1, workers=1,
                seed=7, total_files=120)
    base.update(overrides)
    return FleetConfig(**base)


class TestShardInvariance:
    """The ISSUE acceptance property at test scale: merged aggregate
    statistics are bit-for-bit identical for any shard count."""

    def test_shards_4_matches_shards_1_bit_for_bit(self):
        single = run_fleet(_config(shards=1))
        sharded = run_fleet(_config(shards=4))
        assert sharded.aggregate_kv() == single.aggregate_kv()
        # and the formatted report block is byte-identical too
        assert fleet_aggregate_block(sharded) == fleet_aggregate_block(single)

    def test_every_shard_count_agrees(self):
        reference = run_fleet(_config(shards=1)).aggregate_kv()
        for shards in (2, 3, 8):
            assert run_fleet(_config(shards=shards)).aggregate_kv() == reference

    def test_process_pool_matches_in_process(self):
        serial = run_fleet(_config(shards=2, workers=1))
        pooled = run_fleet(_config(shards=2, workers=2))
        assert pooled.aggregate_kv() == serial.aggregate_kv()

    def test_different_seeds_differ(self):
        a = run_fleet(_config(seed=1)).aggregate_kv()
        b = run_fleet(_config(seed=2)).aggregate_kv()
        assert a != b

    def test_empty_shards_merge_invariantly(self):
        # Regression: shards > users used to be rejected; now the extra
        # shards run zero users and the merged aggregate must still be
        # bit-for-bit the single-shard result.
        single = run_fleet(_config(users=2, shards=1))
        overly_sharded = run_fleet(_config(users=2, shards=5))
        assert overly_sharded.aggregate_kv() == single.aggregate_kv()
        assert [len(o.user_ids) for o in overly_sharded.outcomes] == \
            [1, 1, 0, 0, 0]
        empties = [o for o in overly_sharded.outcomes if not o.user_ids]
        assert all(o.tally.operations == 0 for o in empties)
        assert all(o.response_us.count == 0 for o in empties)
        assert (overly_sharded.response_us.count
                == single.response_us.count)


class TestFleetMechanics:
    def test_outcomes_cover_population(self):
        result = run_fleet(_config(shards=3))
        users = sorted(u for o in result.outcomes for u in o.user_ids)
        assert users == list(range(8))
        assert [o.shard_index for o in result.outcomes] == [0, 1, 2]

    def test_sessions_scale_with_sessions_per_user(self):
        result = run_fleet(_config(shards=2, sessions_per_user=3))
        assert result.tally.sessions == 8 * 3

    def test_collect_ops_merged_log_matches_tally(self):
        result = run_fleet(_config(shards=3, collect_ops=True))
        assert result.log is not None
        assert WorkloadTally.from_log(result.log) == result.tally

    def test_stats_only_keeps_no_log(self):
        result = run_fleet(_config(shards=2))
        assert result.log is None
        assert all(o.log is None for o in result.outcomes)
        assert result.response_us.count == result.tally.operations

    def test_explicit_spec_config(self):
        spec = paper_workload_spec(n_users=6, total_files=100, seed=3)
        result = run_fleet(FleetConfig(spec=spec, shards=2, workers=1))
        assert result.config.n_users == 6
        assert result.config.root_seed == 3
        assert result.tally.sessions == 6

    def test_explicit_spec_access_pattern_override(self):
        spec = paper_workload_spec(n_users=4, total_files=100, seed=3)
        sequential = run_fleet(FleetConfig(spec=spec, shards=2, workers=1))
        random = run_fleet(FleetConfig(spec=spec, shards=2, workers=1,
                                       access_pattern="random"))
        # random mode seeks before every chunk; sequential only on wrap
        assert random.tally.ops_by_kind.get("lseek", 0) > \
            sequential.tally.ops_by_kind.get("lseek", 0)

    def test_custom_registered_scenario_runs_in_pool(self):
        # Workers receive the resolved spec, not the registry name, so a
        # scenario registered only in this process survives any
        # multiprocessing start method.
        from repro.scenarios import Scenario, register_scenario

        register_scenario(Scenario(
            name="test-only-mix",
            description="registered by the test process",
            build=lambda users, seed, total_files=None: paper_workload_spec(
                n_users=users, total_files=total_files or 80, seed=seed),
        ), replace=True)
        result = run_fleet(FleetConfig(scenario="test-only-mix", users=4,
                                       shards=2, workers=2, seed=1))
        assert result.tally.sessions == 4

    def test_report_renders_both_blocks(self):
        result = run_fleet(_config(shards=2))
        text = fleet_report(result)
        assert "Aggregate workload statistics (shard-invariant)" in text
        assert "Timing (topology-dependent)" in text
        assert "Per-shard" in text

    def test_simulated_us_is_slowest_shard(self):
        result = run_fleet(_config(shards=2))
        assert result.simulated_us == max(
            o.simulated_us for o in result.outcomes
        )


class TestFleetConfigValidation:
    def test_requires_scenario_xor_spec(self):
        with pytest.raises(SpecError):
            FleetConfig()
        with pytest.raises(SpecError):
            FleetConfig(scenario="mixed-campus",
                        spec=paper_workload_spec(n_users=2))

    def test_rejects_bad_backend(self):
        with pytest.raises(SpecError):
            FleetConfig(scenario="mixed-campus", backend="s3")

    def test_rejects_bad_counts(self):
        with pytest.raises(SpecError):
            FleetConfig(scenario="mixed-campus", shards=0)
        with pytest.raises(SpecError):
            FleetConfig(scenario="mixed-campus", workers=0)
        with pytest.raises(SpecError):
            FleetConfig(scenario="mixed-campus", sessions_per_user=0)

    def test_rejects_bad_profile_name(self):
        with pytest.raises(SpecError):
            FleetConfig(scenario="mixed-campus", profile="no-such-profile")

    def test_rejects_bad_window(self):
        with pytest.raises(SpecError):
            FleetConfig(scenario="mixed-campus", window_us=0.0)

    def test_workers_capped_by_shards(self):
        assert _config(shards=2, workers=16).effective_workers() == 2


class TestFleetOutStream:
    """run_fleet(out_stream=...): artifacts, shard merge, cleanup."""

    def _stream_config(self, path, **overrides):
        return _config(backend="fast-columnar", out_stream=str(path),
                       **overrides)

    def test_multiprocess_merge_matches_single_shard(self, tmp_path):
        blobs = []
        for shards, workers in ((1, 1), (3, 2)):
            path = tmp_path / f"s{shards}.opstream"
            result = run_fleet(self._stream_config(
                path, shards=shards, workers=workers))
            assert result.out_stream == str(path)
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]

    def test_shard_temp_files_are_cleaned_up(self, tmp_path):
        path = tmp_path / "fleet.opstream"
        run_fleet(self._stream_config(path, shards=3))
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["fleet.opstream"]

    def test_artifact_replays_to_fleet_tally(self, tmp_path):
        from repro.core import StreamReader
        from repro.fleet.merge import ShardAccumulator

        path = tmp_path / "fleet.opstream"
        result = run_fleet(self._stream_config(path, shards=2))
        sink = ShardAccumulator()
        with StreamReader(str(path)) as reader:
            reader.replay(sink)
        assert sink.tally == result.tally

    def test_budget_shapes_chunking(self, tmp_path):
        from repro.core import StreamReader
        from repro.core.streamfile import ROW_BYTES

        path = tmp_path / "fleet.opstream"
        run_fleet(self._stream_config(
            path, stream_budget_bytes=ROW_BYTES * 32))
        with StreamReader(str(path)) as reader:
            assert reader.rows_per_chunk == 32
            assert len(reader.chunk_index) > 1

    def test_rejects_sharded_des_stream(self, tmp_path):
        with pytest.raises(SpecError, match="engine-free"):
            _config(backend="nfs", shards=2,
                    out_stream=str(tmp_path / "x.opstream"))

    def test_rejects_budget_without_stream(self):
        with pytest.raises(SpecError):
            _config(stream_budget_bytes=1 << 20)

    def test_single_shard_des_stream_allowed(self, tmp_path):
        from repro.core import StreamReader

        path = tmp_path / "des.opstream"
        result = run_fleet(_config(backend="nfs", shards=1,
                                   out_stream=str(path)))
        with StreamReader(str(path)) as reader:
            assert reader.total_rows == result.tally.operations > 0
