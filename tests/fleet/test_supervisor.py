"""Fault-tolerant fleet execution: retry, quarantine, chaos injection.

Every test leans on the determinism dividend: a retried shard is a pure
function of (spec, seed, shard range), so recovery is asserted as
**bit-for-bit identity** with the fault-free run — not merely "it
finished".
"""

import filecmp
import os

import pytest

from repro.core import SpecError
from repro.faults import (
    KILL_EXIT_CODE,
    FaultError,
    FaultSpec,
    parse_fault,
    random_faults,
)
from repro.fleet import FleetConfig, FleetPartialError, run_fleet

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning")

BUDGET = 4096  # 57-row chunks: many flushes even at test scale


def _config(tmp_path, name="out.opstream", **overrides):
    base = dict(scenario="mixed-campus", users=8, shards=2, workers=2,
                seed=7, total_files=120, backend="fast-columnar",
                out_stream=str(tmp_path / name), stream_budget_bytes=BUDGET,
                retry_backoff_s=0.0)
    base.update(overrides)
    return FleetConfig(**base)


@pytest.fixture()
def clean(tmp_path):
    """The fault-free reference artifact + result."""
    result = run_fleet(_config(tmp_path, name="clean.opstream"))
    return result


class TestFaultSpecs:
    def test_parse_round_trip(self):
        spec = parse_fault("kill:shard=0,row=120")
        assert spec == FaultSpec(kind="kill", shard=0, row=120)
        assert parse_fault(spec.describe()) == spec

    def test_parse_all_kinds(self):
        assert parse_fault("stall:shard=1,row=5,seconds=2.5").seconds == 2.5
        assert parse_fault("enospc:shard=0,chunk=3").chunk == 3
        assert parse_fault("bitflip:shard=2").kind == "bitflip"
        assert parse_fault("error:shard=0,row=9,attempt=2").attempt == 2

    @pytest.mark.parametrize("text", [
        "explode:shard=0",          # unknown kind
        "kill:shard=0",             # kill needs a row
        "kill:row=5",               # every fault needs a shard
        "enospc:shard=0",           # enospc needs a chunk
        "kill:shard=0,row=0",       # row must be >= 1
        "kill:shard=0,bogus=1",     # unknown field
        "kill:shard=zero,row=1",    # non-integer value
        "stall:shard=0,row=1,seconds=0",
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(FaultError):
            parse_fault(text)

    def test_random_faults_are_deterministic(self):
        a = random_faults(5, n_shards=3, max_row=100, count=4,
                          kinds=("kill", "error"))
        b = random_faults(5, n_shards=3, max_row=100, count=4,
                          kinds=("kill", "error"))
        assert a == b
        assert all(f.shard < 3 for f in a)

    def test_config_rejects_out_of_range_shard(self, tmp_path):
        with pytest.raises(SpecError, match="targets shard"):
            _config(tmp_path, faults=(parse_fault("kill:shard=5,row=1"),))

    def test_config_rejects_stream_fault_without_stream(self):
        with pytest.raises(SpecError, match="needs out_stream"):
            FleetConfig(scenario="mixed-campus", users=8, shards=2,
                        faults=(parse_fault("bitflip:shard=0"),))


class TestRetryRecovery:
    """Each fault kind recovers to a byte-identical artifact."""

    def test_killed_worker_retries_byte_identical(self, tmp_path, clean):
        result = run_fleet(_config(
            tmp_path, faults=(parse_fault("kill:shard=0,row=40"),)))
        assert result.retries == 1
        assert not result.quarantined
        died = [f for f in result.failures if f.reason == "died"]
        assert died and str(KILL_EXIT_CODE) in died[0].detail
        assert filecmp.cmp(result.out_stream, clean.out_stream,
                           shallow=False)
        assert result.tally == clean.tally

    def test_enospc_inline_retry_byte_identical(self, tmp_path, clean):
        # workers=1 with a catchable fault exercises the inline retry
        # loop (no worker processes at all).
        result = run_fleet(_config(
            tmp_path, workers=1,
            faults=(parse_fault("enospc:shard=1,chunk=1"),)))
        assert result.retries == 1
        errors = [f for f in result.failures if f.reason == "error"]
        assert errors and "ENOSPC" in errors[0].detail
        assert filecmp.cmp(result.out_stream, clean.out_stream,
                           shallow=False)

    def test_injected_error_supervised_retry(self, tmp_path, clean):
        result = run_fleet(_config(
            tmp_path, faults=(parse_fault("error:shard=1,row=25"),)))
        assert result.retries == 1
        assert filecmp.cmp(result.out_stream, clean.out_stream,
                           shallow=False)

    def test_bitflip_caught_by_verify_and_retried(self, tmp_path, clean):
        # Silent corruption: the shard "succeeds", the coordinator's CRC
        # walk rejects it, and the retry runs clean.
        result = run_fleet(_config(
            tmp_path, workers=1,
            faults=(parse_fault("bitflip:shard=0"),)))
        assert result.retries == 1
        corrupt = [f for f in result.failures if f.reason == "corrupt"]
        assert corrupt
        assert filecmp.cmp(result.out_stream, clean.out_stream,
                           shallow=False)

    def test_stalled_shard_times_out_and_retries(self, tmp_path, clean):
        result = run_fleet(_config(
            tmp_path, shard_timeout_s=1.0,
            faults=(parse_fault("stall:shard=0,row=10,seconds=600"),)))
        assert result.timeouts == 1
        assert result.retries == 1
        timeout = [f for f in result.failures if f.reason == "timeout"]
        assert timeout
        assert filecmp.cmp(result.out_stream, clean.out_stream,
                           shallow=False)

    def test_second_attempt_fault_still_recovers(self, tmp_path, clean):
        faults = (parse_fault("kill:shard=0,row=40"),
                  parse_fault("kill:shard=0,row=80,attempt=2"))
        result = run_fleet(_config(tmp_path, faults=faults))
        assert result.retries == 2
        assert filecmp.cmp(result.out_stream, clean.out_stream,
                           shallow=False)

    def test_fault_free_run_has_no_recovery(self, clean):
        assert clean.retries == 0
        assert clean.timeouts == 0
        assert not clean.quarantined
        assert not clean.failures


class TestQuarantine:
    def _always_dies(self, max_retries):
        # One kill per attempt: the shard can never succeed.
        return tuple(
            FaultSpec(kind="kill", shard=0, row=40, attempt=attempt)
            for attempt in range(1, max_retries + 2)
        )

    def test_exhausted_retries_raise_partial(self, tmp_path):
        config = _config(tmp_path, max_retries=1,
                         faults=self._always_dies(1))
        with pytest.raises(FleetPartialError) as excinfo:
            run_fleet(config)
        result = excinfo.value.result
        assert result.quarantined == (0,)
        assert result.partial
        assert result.retries == 1
        # Shard 1 still completed: the fleet did not lose the run.
        assert [o.shard_index for o in result.outcomes] == [1]
        assert result.out_stream is None

    def test_allow_partial_returns_result(self, tmp_path, clean):
        config = _config(tmp_path, max_retries=0, allow_partial=True,
                         faults=self._always_dies(0))
        result = run_fleet(config)
        assert result.quarantined == (0,)
        # The partial artifact exists and says so in its metadata.
        from repro.core import StreamReader

        assert os.path.exists(result.out_stream)
        with StreamReader(result.out_stream) as reader:
            assert reader.metadata["partial"] is True
            assert reader.metadata["quarantined_shards"] == [0]
        # Its content is exactly the surviving shard's.
        survivor = result.outcomes[0]
        assert survivor.shard_index == 1
        assert result.tally == survivor.tally

    def test_partial_manifest_records_casualties(self, tmp_path):
        metrics_out = str(tmp_path / "manifest.json")
        config = _config(tmp_path, max_retries=0, allow_partial=True,
                         metrics_out=metrics_out,
                         faults=self._always_dies(0))
        result = run_fleet(config)
        import json

        manifest = json.loads(open(metrics_out, encoding="utf-8").read())
        assert manifest["run"]["status"] == "partial"
        assert manifest["run"]["quarantined_shards"] == [0]
        counters = manifest["metrics"]["counters"]
        assert counters["fleet.quarantined_shards"] == 1
        assert counters["fleet.retries"] == result.retries == 0


class TestRecoveryTelemetry:
    def test_manifest_counts_retries_and_reuse(self, tmp_path):
        metrics_out = str(tmp_path / "manifest.json")
        result = run_fleet(_config(
            tmp_path, metrics_out=metrics_out,
            faults=(parse_fault("kill:shard=0,row=40"),)))
        import json

        manifest = json.loads(open(metrics_out, encoding="utf-8").read())
        counters = manifest["metrics"]["counters"]
        assert counters["fleet.retries"] == 1
        assert counters["fleet.timeouts"] == 0
        assert counters["fleet.quarantined_shards"] == 0
        assert "recovery" in manifest["metrics"]["stages"]
        assert manifest["run"]["status"] == "complete"
        assert result.retries == 1

    def test_metrics_do_not_perturb_artifact(self, tmp_path, clean):
        result = run_fleet(_config(
            tmp_path, metrics_out=str(tmp_path / "m.json"),
            faults=(parse_fault("kill:shard=0,row=40"),)))
        assert filecmp.cmp(result.out_stream, clean.out_stream,
                           shallow=False)


class TestRunDirHygiene:
    def test_run_dir_swept_on_success(self, tmp_path):
        result = run_fleet(_config(tmp_path))
        assert os.path.exists(result.out_stream)
        assert not os.path.exists(result.out_stream + ".run")

    def test_run_dir_swept_on_quarantine_by_default(self, tmp_path):
        config = _config(tmp_path, max_retries=0,
                         faults=(FaultSpec(kind="kill", shard=0, row=40),))
        with pytest.raises(FleetPartialError):
            run_fleet(config)
        assert not os.path.exists(config.out_stream + ".run")
        # And the unfinished artifact never appeared at out_stream.
        assert not os.path.exists(config.out_stream)

    def test_keep_run_dir_preserves_failed_run(self, tmp_path):
        config = _config(tmp_path, max_retries=0, keep_run_dir=True,
                         faults=(FaultSpec(kind="kill", shard=0, row=40),))
        with pytest.raises(FleetPartialError):
            run_fleet(config)
        run_dir = config.out_stream + ".run"
        assert os.path.isdir(run_dir)
        assert "fleet-run.json" in os.listdir(run_dir)

    def test_keep_run_dir_still_swept_on_success(self, tmp_path):
        result = run_fleet(_config(tmp_path, keep_run_dir=True))
        assert not os.path.exists(result.out_stream + ".run")

    def test_no_stream_run_has_no_run_dir(self, tmp_path):
        config = FleetConfig(scenario="mixed-campus", users=8, shards=2,
                             workers=1, seed=7, total_files=120)
        assert config.run_dir is None
        result = run_fleet(config)
        assert result.out_stream is None
