"""WorkloadTally / ShardAccumulator: online tallies merge exactly."""

from repro.core import OpRecord, OpSink, SessionRecord, UsageLog
from repro.fleet import ShardAccumulator, WorkloadTally


def _op(op="read", size=100, category="REG:USER:RDONLY", user=0):
    return OpRecord(
        user_id=user, user_type="heavy", session_id=0, op=op,
        path="/user00/f", category_key=category, size=size,
        start_us=0.0, response_us=12.5,
    )


def _session(user=0, files=3, accessed=500, referenced=900, utype="heavy"):
    return SessionRecord(
        user_id=user, user_type=utype, session_id=0, start_us=0.0,
        end_us=10.0, files_referenced=files, bytes_accessed=accessed,
        file_bytes_referenced=referenced, categories=("REG:USER:RDONLY",),
    )


class TestWorkloadTally:
    def test_counts_ops_and_bytes(self):
        tally = WorkloadTally()
        tally.record_op(_op("read", 100))
        tally.record_op(_op("write", 40))
        tally.record_op(_op("open", 0))
        assert tally.operations == 3
        assert tally.bytes_read == 100
        assert tally.bytes_written == 40
        assert tally.ops_by_kind == {"read": 1, "write": 1, "open": 1}
        assert tally.bytes_by_category == {"REG:USER:RDONLY": 140}

    def test_counts_sessions(self):
        tally = WorkloadTally()
        tally.record_session(_session(utype="heavy"))
        tally.record_session(_session(utype="light"))
        assert tally.sessions == 2
        assert tally.files_referenced == 6
        assert tally.sessions_by_type == {"heavy": 1, "light": 1}

    def test_merge_equals_sequential_recording(self):
        ops = [_op("read", s) for s in (10, 20, 30, 40)]
        whole = WorkloadTally()
        for op in ops:
            whole.record_op(op)
        left, right = WorkloadTally(), WorkloadTally()
        for op in ops[:2]:
            left.record_op(op)
        for op in ops[2:]:
            right.record_op(op)
        assert left.merge(right) == whole
        # merge is symmetric for the aggregate
        assert right.merge(left) == whole

    def test_merge_all_and_from_log_agree(self):
        log = UsageLog()
        log.record_op(_op("read", 64))
        log.record_op(_op("write", 32, category="REG:USER:NEW"))
        log.record_session(_session())
        replayed = WorkloadTally.from_log(log)
        online = WorkloadTally()
        for op in log.operations:
            online.record_op(op)
        for session in log.sessions:
            online.record_session(session)
        assert replayed == online
        assert WorkloadTally.merge_all([replayed]) == online

    def test_as_kv_deterministic_order(self):
        tally = WorkloadTally()
        tally.record_op(_op("write", 1, category="Z"))
        tally.record_op(_op("read", 1, category="A"))
        keys = list(tally.as_kv())
        assert keys.index("bytes[A]") < keys.index("bytes[Z]")


class TestWindowedTally:
    """Temporal bucketing: the offered-load curve inside the tally."""

    def _record(self, tally):
        for start in (0.0, 5.0, 9.999, 10.0, 25.0):
            record = _op()
            tally.record_op(OpRecord(**{**record.__dict__,
                                        "start_us": start}))

    def test_buckets_by_start_clock(self):
        tally = WorkloadTally(window_us=10.0)
        self._record(tally)
        assert tally.ops_by_window == {0: 3, 1: 1, 2: 1}
        # as_kv stays the backend-invariant content block: window
        # buckets (keyed by start clocks) report via offered_load().
        assert not any(k.startswith("window") for k in tally.as_kv())

    def test_no_window_means_no_buckets(self):
        tally = WorkloadTally()
        self._record(tally)
        assert tally.ops_by_window == {}
        assert tally.offered_load() == []

    def test_record_batch_matches_scalar_buckets(self):
        from repro.core import OpBatch

        records = [
            OpRecord(**{**_op().__dict__, "start_us": start})
            for start in (0.0, 3.0, 10.0, 19.5, 20.0, 47.0)
        ]
        scalar = WorkloadTally(window_us=10.0)
        for record in records:
            scalar.record_op(record)
        columnar = WorkloadTally(window_us=10.0)
        columnar.record_batch(OpBatch.from_records(records))
        assert columnar == scalar

    def test_merge_adds_buckets_and_keeps_window(self):
        a = WorkloadTally(window_us=10.0)
        b = WorkloadTally(window_us=10.0)
        a.record_op(OpRecord(**{**_op().__dict__, "start_us": 1.0}))
        b.record_op(OpRecord(**{**_op().__dict__, "start_us": 11.0}))
        merged = a.merge(b)
        assert merged.window_us == 10.0
        assert merged.ops_by_window == {0: 1, 1: 1}

    def test_merge_rejects_mismatched_windows(self):
        import pytest

        a = WorkloadTally(window_us=10.0)
        b = WorkloadTally(window_us=20.0)
        with pytest.raises(ValueError, match="different windows"):
            a.merge(b)

    def test_merge_rejects_unbucketed_ops_meeting_a_window(self):
        # Ops folded without a window were never bucketed; silently
        # adopting a window would under-report the offered-load curve.
        import pytest

        windowless = WorkloadTally()
        windowless.record_op(_op())
        windowed = WorkloadTally(window_us=10.0)
        windowed.record_op(_op())
        with pytest.raises(ValueError, match="different windows"):
            windowless.merge(windowed)
        with pytest.raises(ValueError, match="different windows"):
            windowed.merge(windowless)
        # but a genuinely empty side merges fine in either direction
        assert WorkloadTally().merge(windowed).window_us == 10.0
        assert windowed.merge(WorkloadTally()).ops_by_window == {0: 1}

    def test_offered_load_rates(self):
        tally = WorkloadTally(window_us=2e6)  # 2-second windows
        for start in (0.0, 1e6, 2.5e6):
            tally.record_op(OpRecord(**{**_op().__dict__,
                                        "start_us": start}))
        rows = tally.offered_load()
        assert rows == [(0.0, 2, 1.0), (2e6, 1, 0.5)]

    def test_from_log_accepts_window(self):
        log = UsageLog()
        log.record_op(_op())
        tally = WorkloadTally.from_log(log, window_us=10.0)
        assert tally.ops_by_window == {0: 1}


class TestShardAccumulator:
    def test_is_an_opsink(self):
        assert isinstance(ShardAccumulator(), OpSink)
        assert isinstance(UsageLog(), OpSink)

    def test_stats_only_mode_drops_records(self):
        sink = ShardAccumulator(collect_ops=False)
        sink.record_op(_op())
        sink.record_session(_session())
        assert sink.log is None
        assert sink.tally.operations == 1
        assert sink.response_us.count == 1

    def test_collect_mode_retains_log(self):
        sink = ShardAccumulator(collect_ops=True)
        sink.record_op(_op())
        sink.record_session(_session())
        assert len(sink.log.operations) == 1
        assert len(sink.log.sessions) == 1
        assert WorkloadTally.from_log(sink.log) == sink.tally
