"""WorkloadTally / ShardAccumulator: online tallies merge exactly."""

from repro.core import OpRecord, OpSink, SessionRecord, UsageLog
from repro.fleet import ShardAccumulator, WorkloadTally


def _op(op="read", size=100, category="REG:USER:RDONLY", user=0):
    return OpRecord(
        user_id=user, user_type="heavy", session_id=0, op=op,
        path="/user00/f", category_key=category, size=size,
        start_us=0.0, response_us=12.5,
    )


def _session(user=0, files=3, accessed=500, referenced=900, utype="heavy"):
    return SessionRecord(
        user_id=user, user_type=utype, session_id=0, start_us=0.0,
        end_us=10.0, files_referenced=files, bytes_accessed=accessed,
        file_bytes_referenced=referenced, categories=("REG:USER:RDONLY",),
    )


class TestWorkloadTally:
    def test_counts_ops_and_bytes(self):
        tally = WorkloadTally()
        tally.record_op(_op("read", 100))
        tally.record_op(_op("write", 40))
        tally.record_op(_op("open", 0))
        assert tally.operations == 3
        assert tally.bytes_read == 100
        assert tally.bytes_written == 40
        assert tally.ops_by_kind == {"read": 1, "write": 1, "open": 1}
        assert tally.bytes_by_category == {"REG:USER:RDONLY": 140}

    def test_counts_sessions(self):
        tally = WorkloadTally()
        tally.record_session(_session(utype="heavy"))
        tally.record_session(_session(utype="light"))
        assert tally.sessions == 2
        assert tally.files_referenced == 6
        assert tally.sessions_by_type == {"heavy": 1, "light": 1}

    def test_merge_equals_sequential_recording(self):
        ops = [_op("read", s) for s in (10, 20, 30, 40)]
        whole = WorkloadTally()
        for op in ops:
            whole.record_op(op)
        left, right = WorkloadTally(), WorkloadTally()
        for op in ops[:2]:
            left.record_op(op)
        for op in ops[2:]:
            right.record_op(op)
        assert left.merge(right) == whole
        # merge is symmetric for the aggregate
        assert right.merge(left) == whole

    def test_merge_all_and_from_log_agree(self):
        log = UsageLog()
        log.record_op(_op("read", 64))
        log.record_op(_op("write", 32, category="REG:USER:NEW"))
        log.record_session(_session())
        replayed = WorkloadTally.from_log(log)
        online = WorkloadTally()
        for op in log.operations:
            online.record_op(op)
        for session in log.sessions:
            online.record_session(session)
        assert replayed == online
        assert WorkloadTally.merge_all([replayed]) == online

    def test_as_kv_deterministic_order(self):
        tally = WorkloadTally()
        tally.record_op(_op("write", 1, category="Z"))
        tally.record_op(_op("read", 1, category="A"))
        keys = list(tally.as_kv())
        assert keys.index("bytes[A]") < keys.index("bytes[Z]")


class TestShardAccumulator:
    def test_is_an_opsink(self):
        assert isinstance(ShardAccumulator(), OpSink)
        assert isinstance(UsageLog(), OpSink)

    def test_stats_only_mode_drops_records(self):
        sink = ShardAccumulator(collect_ops=False)
        sink.record_op(_op())
        sink.record_session(_session())
        assert sink.log is None
        assert sink.tally.operations == 1
        assert sink.response_us.count == 1

    def test_collect_mode_retains_log(self):
        sink = ShardAccumulator(collect_ops=True)
        sink.record_op(_op())
        sink.record_session(_session())
        assert len(sink.log.operations) == 1
        assert len(sink.log.sessions) == 1
        assert WorkloadTally.from_log(sink.log) == sink.tally
