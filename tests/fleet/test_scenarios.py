"""Scenario registry round-trips: every entry builds and runs."""

import pytest

from repro.fleet import FleetConfig, run_fleet
from repro.scenarios import (
    Scenario,
    ScenarioError,
    build_scenario_spec,
    get_scenario,
    register_scenario,
    scenario_names,
)

EXPECTED = {
    "paper-campus",
    "mixed-campus",
    "dev-team",
    "batch-heavy",
    "database-random",
    "interactive-light",
}


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ScenarioError, match="mixed-campus"):
            get_scenario("no-such-mix")

    def test_duplicate_registration_rejected(self):
        existing = get_scenario("paper-campus")
        with pytest.raises(ValueError):
            register_scenario(existing)
        # replace=True is the explicit override
        assert register_scenario(existing, replace=True) is existing

    def test_bad_access_pattern_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="", build=lambda *a, **k: None,
                     access_pattern="strided")


class TestScenarioBuilds:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    @pytest.mark.parametrize("users", [1, 4, 13])
    def test_builds_valid_spec(self, name, users):
        spec = build_scenario_spec(name, users=users, seed=5)
        # WorkloadSpec.__post_init__ already validates; check the contract
        assert spec.n_users == users
        assert spec.seed == 5
        assert spec.total_files >= 1

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_total_files_override(self, name):
        spec = build_scenario_spec(name, users=3, seed=0, total_files=77)
        assert spec.total_files == 77

    def test_default_files_scale_with_population(self):
        small = build_scenario_spec("dev-team", users=10, seed=0)
        large = build_scenario_spec("dev-team", users=100, seed=0)
        assert large.total_files > small.total_files


class TestScenarioRuns:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_short_sharded_run_completes(self, name):
        result = run_fleet(FleetConfig(
            scenario=name, users=4, shards=2, workers=1, seed=3,
            total_files=80,
        ))
        assert result.tally.sessions == 4
        assert result.tally.operations > 0
        assert result.simulated_us >= 0.0

    def test_database_random_actually_seeks(self):
        result = run_fleet(FleetConfig(
            scenario="database-random", users=4, shards=2, workers=1,
            seed=3, total_files=80,
        ))
        # random access mode seeks before every chunk
        assert result.tally.ops_by_kind.get("lseek", 0) >= (
            result.tally.ops_by_kind.get("read", 0)
            + result.tally.ops_by_kind.get("write", 0)
        ) * 0.5

    def test_batch_heavy_writes_new_files(self):
        result = run_fleet(FleetConfig(
            scenario="batch-heavy", users=4, shards=2, workers=1, seed=3,
            total_files=80,
        ))
        assert result.tally.ops_by_kind.get("creat", 0) > 0
        assert result.tally.bytes_written > 0
