"""Checkpoint/resume of killed fleet runs, pinned to bit-for-bit golden.

A run killed mid-shard leaves CRC-framed chunks plus a checkpoint
sidecar in its run directory; ``resume_fleet_config`` rebuilds the run
from the recorded spec and regenerates only the tail.  The acceptance
property (ISSUE 9): the resumed artifact is **byte-identical** to an
uninterrupted run's, having reused at least one verified chunk.
"""

import filecmp
import json
import os
import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SpecError
from repro.faults import FaultSpec
from repro.fleet import (
    FleetConfig,
    FleetPartialError,
    resume_fleet_config,
    run_fleet,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning")

BUDGET = 4096


def _config(tmp_path, name="out.opstream", **overrides):
    base = dict(scenario="mixed-campus", users=8, shards=2, workers=2,
                seed=7, total_files=120, backend="fast-columnar",
                out_stream=str(tmp_path / name), stream_budget_bytes=BUDGET,
                retry_backoff_s=0.0)
    base.update(overrides)
    return FleetConfig(**base)


def _killed_run(tmp_path, row=2000, name="victim.opstream", shards=2):
    """Run until shard 0 dies at ``row`` with retries off; keep the dir."""
    config = _config(tmp_path, name=name, shards=shards, max_retries=0,
                     keep_run_dir=True,
                     faults=(FaultSpec(kind="kill", shard=0, row=row),))
    with pytest.raises(FleetPartialError):
        run_fleet(config)
    return config


class TestResumeGolden:
    def test_resume_is_bit_for_bit_and_reuses_chunks(self, tmp_path):
        clean = run_fleet(_config(tmp_path, name="clean.opstream"))
        config = _killed_run(tmp_path, row=2000)
        run_dir = config.out_stream + ".run"
        assert os.path.isdir(run_dir)

        resumed = run_fleet(resume_fleet_config(run_dir, workers=2))
        assert resumed.resumed
        assert resumed.reused_chunks >= 1
        assert resumed.reused_rows >= 1
        assert filecmp.cmp(resumed.out_stream, clean.out_stream,
                           shallow=False)
        assert resumed.tally == clean.tally
        assert resumed.response_us.count == clean.response_us.count
        # The run directory is swept once the run completes.
        assert not os.path.exists(run_dir)

    def test_resume_single_worker_matches(self, tmp_path):
        clean = run_fleet(_config(tmp_path, name="clean.opstream"))
        config = _killed_run(tmp_path, row=1500)
        resumed = run_fleet(
            resume_fleet_config(config.out_stream + ".run", workers=1))
        assert filecmp.cmp(resumed.out_stream, clean.out_stream,
                           shallow=False)

    def test_double_kill_then_resume(self, tmp_path):
        # The resume itself dies too (fresh fault), then a second resume
        # finishes the job.
        clean = run_fleet(_config(tmp_path, name="clean.opstream"))
        config = _killed_run(tmp_path, row=2500)
        run_dir = config.out_stream + ".run"
        # Fault rows count the rows *this execution* forwards, so the
        # resume's kill must land inside the regenerated tail.
        again = resume_fleet_config(
            run_dir, workers=2, max_retries=0,
            faults=(FaultSpec(kind="kill", shard=0, row=500),))
        with pytest.raises(FleetPartialError):
            run_fleet(again)
        assert os.path.isdir(run_dir)  # keep_run_dir defaults on
        final = run_fleet(resume_fleet_config(run_dir, workers=2))
        assert filecmp.cmp(final.out_stream, clean.out_stream,
                           shallow=False)

    def test_completed_shard_temps_are_replayed_not_regenerated(
            self, tmp_path):
        # Kill shard 1 while shard 0 finishes cleanly: on resume, shard
        # 0's temp is a complete artifact and is reused wholesale (its
        # entire chunk index), not regenerated.
        clean = run_fleet(_config(tmp_path, name="clean.opstream"))
        config = _config(tmp_path, name="late.opstream", max_retries=0,
                         keep_run_dir=True,
                         faults=(FaultSpec(kind="kill", shard=1, row=1300),))
        with pytest.raises(FleetPartialError):
            run_fleet(config)
        run_dir = config.out_stream + ".run"
        resumed = run_fleet(resume_fleet_config(run_dir, workers=2))
        survivor = next(o for o in resumed.outcomes if o.shard_index == 0)
        assert survivor.reused_rows == survivor.tally.operations
        assert resumed.reused_chunks >= 1
        assert filecmp.cmp(resumed.out_stream, clean.out_stream,
                           shallow=False)


class TestResumeValidation:
    def test_missing_record_fails_loudly(self, tmp_path):
        bogus = tmp_path / "nothing.run"
        bogus.mkdir()
        with pytest.raises(SpecError, match="no readable run record"):
            resume_fleet_config(str(bogus))

    def test_tampered_seed_is_rejected(self, tmp_path):
        config = _killed_run(tmp_path)
        run_dir = config.out_stream + ".run"
        record_path = os.path.join(run_dir, "fleet-run.json")
        record = json.loads(open(record_path, encoding="utf-8").read())
        record["seed"] += 1  # now disagrees with the recorded spec
        with open(record_path, "w", encoding="utf-8") as fh:
            json.dump(record, fh)
        with pytest.raises(SpecError, match="does not match"):
            run_fleet(resume_fleet_config(run_dir))

    def test_moved_run_dir_is_rejected(self, tmp_path):
        config = _killed_run(tmp_path)
        run_dir = config.out_stream + ".run"
        moved = str(tmp_path / "elsewhere.run")
        shutil.move(run_dir, moved)
        with pytest.raises(SpecError, match="does not belong"):
            run_fleet(resume_fleet_config(moved))

    def test_wrong_format_is_rejected(self, tmp_path):
        bogus = tmp_path / "x.run"
        bogus.mkdir()
        (bogus / "fleet-run.json").write_text('{"format": "other"}')
        with pytest.raises(SpecError, match="not a fleet run record"):
            resume_fleet_config(str(bogus))

    def test_resume_config_requires_stream(self):
        with pytest.raises(SpecError, match="needs out_stream"):
            FleetConfig(scenario="mixed-campus", users=8,
                        resume_dir="/nonexistent")

    def test_resume_rejects_des_backend(self, tmp_path):
        with pytest.raises(SpecError, match="engine-free"):
            FleetConfig(scenario="mixed-campus", users=8, backend="nfs",
                        out_stream=str(tmp_path / "x.opstream"),
                        resume_dir=str(tmp_path / "x.opstream.run"))


class TestCrashMatrix:
    """Satellite: hypothesis sweep over kill row × shard count."""

    _golden: dict = {}

    def _reference(self, tmp_path, shards):
        cached = self._golden.get(shards)
        if cached is None:
            result = run_fleet(_config(
                tmp_path, name=f"ref{shards}.opstream", shards=shards,
                users=6, workers=1))
            cached = (open(result.out_stream, "rb").read(), result.tally)
            self._golden[shards] = cached
        return cached

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(row=st.integers(min_value=1, max_value=800),
           shards=st.integers(min_value=1, max_value=3),
           data=st.data())
    def test_any_kill_recovers_bit_for_bit(self, tmp_path, row, shards,
                                           data):
        ref_bytes, ref_tally = self._reference(tmp_path, shards)
        shard = data.draw(st.integers(min_value=0, max_value=shards - 1))
        result = run_fleet(_config(
            tmp_path, name=f"m{shards}-{shard}-{row}.opstream",
            shards=shards, users=6, workers=2,
            faults=(FaultSpec(kind="kill", shard=shard, row=row),)))
        assert result.tally == ref_tally
        assert open(result.out_stream, "rb").read() == ref_bytes
