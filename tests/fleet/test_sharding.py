"""Shard-plan properties: coverage, balance, determinism, derived seeds."""

import pytest

from repro.core import SpecError, partition_user_ids
from repro.distributions import RandomStreams
from repro.fleet import plan_shards


class TestPartitionUserIds:
    def test_covers_population_disjointly(self):
        shards = partition_user_ids(103, 7)
        seen = [u for shard in shards for u in shard]
        assert sorted(seen) == list(range(103))
        assert len(seen) == len(set(seen))

    def test_balanced_within_one(self):
        shards = partition_user_ids(10, 4)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_round_robin_mixes_user_types(self):
        # assign_user_types lists each type contiguously; round-robin
        # dealing means every shard samples every region of that list.
        shards = partition_user_ids(8, 2)
        assert shards == ((0, 2, 4, 6), (1, 3, 5, 7))

    def test_single_shard_is_identity(self):
        assert partition_user_ids(5, 1) == (tuple(range(5)),)

    def test_deterministic(self):
        assert partition_user_ids(50, 3) == partition_user_ids(50, 3)

    @pytest.mark.parametrize("users,shards", [(0, 1), (4, 0)])
    def test_rejects_bad_shapes(self, users, shards):
        with pytest.raises(SpecError):
            partition_user_ids(users, shards)

    def test_more_shards_than_users_yields_empty_shards(self):
        # Regression: this used to raise; surplus shards must come back
        # empty so fleet topologies stay valid at any scale.
        shards = partition_user_ids(3, 5)
        assert shards == ((0,), (1,), (2,), (), ())
        seen = [u for shard in shards for u in shard]
        assert sorted(seen) == list(range(3))


class TestPlanShards:
    def test_plan_matches_partition(self):
        plans = plan_shards(9, 3, seed=7)
        assert [p.user_ids for p in plans] == list(partition_user_ids(9, 3))
        assert [p.shard_index for p in plans] == [0, 1, 2]
        assert all(p.n_shards == 3 for p in plans)

    def test_shard_seeds_are_spawned_from_root(self):
        plans = plan_shards(4, 2, seed=11)
        streams = RandomStreams(11)
        assert [p.shard_seed for p in plans] == [
            streams.spawn_seed("shard-0"),
            streams.spawn_seed("shard-1"),
        ]

    def test_shard_seeds_distinct_and_seed_dependent(self):
        plans_a = plan_shards(8, 4, seed=1)
        plans_b = plan_shards(8, 4, seed=2)
        seeds_a = [p.shard_seed for p in plans_a]
        assert len(set(seeds_a)) == len(seeds_a)
        assert seeds_a != [p.shard_seed for p in plans_b]

    def test_n_users_property(self):
        plans = plan_shards(10, 4, seed=0)
        assert [p.n_users for p in plans] == [3, 3, 2, 2]
