"""Adapter tests: happy paths, schema sniffing, and error reporting."""

import pytest

from repro.traces import (
    IssueCollector,
    TraceParseError,
    adapter_names,
    detect_format,
    get_adapter,
)

CSV_LINES = [
    "timestamp_us,user,session,op,path,size,duration_us,file_size,category\n",
    "1000.0,alice,0,open,/home/alice/a.txt,0,12.5,2048,REG:USER:RDONLY\n",
    "2000.0,alice,0,read,/home/alice/a.txt,512,40.0,2048,REG:USER:RDONLY\n",
    "3000.0,bob,7,write,/tmp/b.out,256,20.0,,\n",
]

JSONL_LINES = [
    '{"timestamp_us": 1000.0, "op": "open", "path": "/x", "user": "u1"}\n',
    '{"timestamp_us": 2000.0, "op": "read", "path": "/x", "size": 128}\n',
]

STRACE_LINES = [
    '7 1699999990.100000 openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = 3 <0.000040>\n',
    '7 1699999990.200000 read(3</etc/hosts>, "x", 4096) = 4096 <0.000100>\n',
    "7 1699999990.300000 close(3</etc/hosts>) = 0 <0.000003>\n",
]

NFS_LINES = [
    "999316802.796180 31.03f2 30.0801 U C3 184fd3ba 3 read fh 20e2f6 off 0 count 2000\n",
    "999316802.796700 30.0801 31.03f2 U R3 184fd3ba 3 read OK size 81920 count 2000\n",
    "999316802.801000 31.03f2 30.0801 U C3 184fd3bb 3 write fh 99aabb off 0 count 4096\n",
]


class TestSniffing:
    def test_detects_each_format(self):
        assert detect_format(CSV_LINES) == "csv"
        assert detect_format(JSONL_LINES) == "jsonl"
        assert detect_format(STRACE_LINES) == "strace"
        assert detect_format(NFS_LINES) == "nfsdump"
        assert detect_format(["OP\t1\ttrace\t0\tread\t/x\tK\t8\t0.0\t1.0\n"]) == "usagelog"

    def test_unknown_schema_raises(self):
        with pytest.raises(ValueError, match="could not detect"):
            detect_format(["complete nonsense with no structure\n"])

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            detect_format(["", "   \n"])

    def test_unknown_adapter_name(self):
        with pytest.raises(ValueError, match="unknown trace format"):
            get_adapter("tcpdump")

    def test_registry_lists_all(self):
        assert adapter_names() == ("csv", "jsonl", "nfsdump", "strace", "usagelog")


class TestCsvAdapter:
    def test_parses_rows(self):
        events = list(get_adapter("csv").iter_events(CSV_LINES))
        assert len(events) == 3
        assert events[0].op == "open"
        assert events[0].file_size == 2048
        assert events[0].category == "REG:USER:RDONLY"
        assert events[0].session == "0"
        assert events[2].user == "bob"
        assert events[2].file_size is None and events[2].category is None

    def test_second_timestamp_form_is_seconds(self):
        lines = ["time,op,path\n", "2.5,read,/x\n"]
        (event,) = get_adapter("csv").iter_events(lines)
        assert event.timestamp_us == pytest.approx(2.5e6)

    def test_malformed_lines_reported_not_fatal(self):
        lines = CSV_LINES + [
            "not-a-number,alice,0,read,/x,1,,,\n",
            "5000.0,alice,0,frobnicate,/x,1,,,\n",
            "6000.0,alice,0,read,,1,,,\n",
        ]
        issues = IssueCollector()
        events = list(get_adapter("csv").iter_events(lines, issues))
        assert len(events) == 3
        assert issues.total == 3
        reasons = " | ".join(i.reason for i in issues.issues)
        assert "could not convert" in reasons
        assert "unknown operation" in reasons
        assert "lacks 'path'" in reasons

    def test_strict_mode_raises_with_line_number(self):
        lines = CSV_LINES + ["broken,row\n"]
        issues = IssueCollector(strict=True)
        with pytest.raises(TraceParseError) as info:
            list(get_adapter("csv").iter_events(lines, issues))
        assert info.value.issue.line_no == 5

    def test_truncated_file_header_only(self):
        events = list(get_adapter("csv").iter_events(CSV_LINES[:1]))
        assert events == []


class TestStraceAdapter:
    def test_parses_and_maps_syscalls(self):
        events = list(get_adapter("strace").iter_events(STRACE_LINES))
        assert [e.op for e in events] == ["open", "read", "close"]
        assert events[1].size == 4096
        assert events[1].duration_us == pytest.approx(100.0)
        assert events[1].path == "/etc/hosts"

    def test_o_creat_becomes_creat(self):
        line = '1 1699999990.0 openat(AT_FDCWD, "/x", O_WRONLY|O_CREAT) = 4\n'
        (event,) = get_adapter("strace").iter_events([line])
        assert event.op == "creat"

    def test_failed_and_noise_lines_skipped_silently(self):
        lines = [
            '1 1699999990.0 openat(AT_FDCWD, "/x", O_RDONLY) = -1 ENOENT (No such file)\n',
            "--- SIGCHLD {...} ---\n",
            "+++ exited with 0 +++\n",
            '1 1699999990.0 read(3</y>,  <unfinished ...>\n',
            '1 1699999990.0 epoll_wait(9, [], 16, 0) = 0\n',
        ]
        issues = IssueCollector()
        assert list(get_adapter("strace").iter_events(lines, issues)) == []
        assert issues.total == 0

    def test_fd_call_without_annotation_is_an_issue(self):
        issues = IssueCollector()
        lines = ["1 1699999990.0 read(3, \"x\", 16) = 16\n"]
        assert list(get_adapter("strace").iter_events(lines, issues)) == []
        assert issues.total == 1
        assert "strace -y" in issues.issues[0].reason


class TestNfsDumpAdapter:
    def test_calls_parse_and_replies_carry_sizes(self):
        events = list(get_adapter("nfsdump").iter_events(NFS_LINES))
        assert [e.op for e in events] == ["read", "write"]
        assert events[0].path == "nfs:20e2f6"
        assert events[0].size == 2000
        # The reply's size attribute applies to later events on the handle.
        more = NFS_LINES + [
            "999316802.9 31.03f2 30.0801 U C3 184fd3bc 3 getattr fh 20e2f6\n"
        ]
        events = list(get_adapter("nfsdump").iter_events(more))
        assert events[-1].op == "stat"
        assert events[-1].file_size == 81920

    def test_malformed_lines_are_issues(self):
        issues = IssueCollector()
        lines = NFS_LINES + [
            "999316803.0 31.03f2 30.0801 U C3 184fd3bd 3 read off 0 count 20\n",
            "totally bogus\n",
        ]
        events = list(get_adapter("nfsdump").iter_events(lines, issues))
        assert len(events) == 2
        assert issues.total == 2
        assert "without an fh" in issues.issues[0].reason


class TestCsvExport:
    def test_hostile_paths_stay_one_record_per_line(self):
        import io

        from repro.core import OpRecord, UsageLog
        from repro.traces import export_csv

        log = UsageLog()
        for path in ("/a\nb", "/c\rd", "/e,f", '/g"h', "/i\\j"):
            log.record_op(
                OpRecord(
                    user_id=0,
                    user_type="t",
                    session_id=0,
                    op="read",
                    path=path,
                    category_key="REG:USER:RDONLY",
                    size=1,
                    start_us=0.0,
                    response_us=0.0,
                )
            )
        buffer = io.StringIO()
        assert export_csv(log, buffer) == 5
        issues = IssueCollector()
        events = list(
            get_adapter("csv").iter_events(buffer.getvalue().splitlines(True), issues)
        )
        assert issues.total == 0
        assert len(events) == 5
        # Escaped paths remain distinct, self-consistent identities.
        assert len({e.path for e in events}) == 5


class TestUsageLogAdapter:
    def test_round_trips_ops(self):
        from repro.core import OpRecord

        record = OpRecord(
            user_id=3,
            user_type="heavy",
            session_id=1,
            op="write",
            path="/user03/f",
            category_key="REG:USER:NEW",
            size=100,
            start_us=5.0,
            response_us=2.0,
        )
        (event,) = get_adapter("usagelog").iter_events([record.to_line() + "\n"])
        assert event.op == "write"
        assert event.session == "1"
        assert event.category == "REG:USER:NEW"
        assert event.duration_us == 2.0

    def test_corrupt_line_is_an_issue(self):
        issues = IssueCollector()
        assert list(get_adapter("usagelog").iter_events(["OP\tnope\n"], issues)) == []
        assert issues.total == 1
