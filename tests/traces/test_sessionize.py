"""Sessionization tests: idle-gap splitting, explicit sessions, inference."""

import pytest

from repro.core import UsageLog
from repro.traces import CategoryInferencer, TraceEvent, sessionize_events


def _event(ts, user="u", op="read", path="/data/f", **kwargs):
    return TraceEvent(timestamp_us=ts, user=user, op=op, path=path, **kwargs)


class TestIdleGapSplitting:
    def test_gap_splits_sessions(self):
        log = UsageLog()
        events = [
            _event(0.0),
            _event(1000.0),
            _event(1000.0 + 5_000_000.0),  # 5 s of idle
            _event(1000.0 + 5_001_000.0),
        ]
        result = sessionize_events(events, log, gap_us=1_000_000.0)
        assert result.stats.sessions == 2
        assert len(log.sessions) == 2
        assert [op.session_id for op in log.operations] == [0, 0, 1, 1]

    def test_gap_is_per_user(self):
        log = UsageLog()
        events = [
            _event(0.0, user="a"),
            _event(10.0, user="b"),
            _event(2_000_000.0, user="a"),  # a idled; b only appears once
        ]
        sessionize_events(events, log, gap_us=1_000_000.0)
        assert len(log.sessions) == 3
        by_user = {(s.user_id, s.session_id) for s in log.sessions}
        assert by_user == {(0, 0), (0, 1), (1, 0)}

    def test_explicit_session_column_wins_over_gap(self):
        log = UsageLog()
        events = [
            _event(0.0, session="s1"),
            _event(10.0, session="s1"),
            _event(20.0, session="s2"),  # tiny gap, still a new session
        ]
        sessionize_events(events, log, gap_us=1_000_000.0)
        assert len(log.sessions) == 2

    def test_bad_gap_rejected(self):
        with pytest.raises(ValueError, match="gap_us"):
            sessionize_events([], UsageLog(), gap_us=0.0)

    def test_out_of_order_timestamps_clamped(self):
        log = UsageLog()
        sessionize_events([_event(100.0), _event(50.0)], log, gap_us=1e6)
        starts = [op.start_us for op in log.operations]
        assert starts == [100.0, 100.0]


class TestAccounting:
    def test_session_summary_fields(self):
        log = UsageLog()
        events = [
            _event(0.0, op="open", path="/data/f", file_size=1000),
            _event(10.0, op="read", path="/data/f", size=600),
            _event(20.0, op="read", path="/data/f", size=600),
            _event(30.0, op="creat", path="/data/g"),
            _event(40.0, op="write", path="/data/g", size=250, duration_us=5.0),
        ]
        result = sessionize_events(events, log, gap_us=1e6)
        (session,) = log.sessions
        assert session.files_referenced == 2
        assert session.bytes_accessed == 600 + 600 + 250
        # /data/f has an observed size, /data/g accumulates its writes.
        assert session.file_bytes_referenced == 1000 + 250
        assert session.end_us == pytest.approx(45.0)
        assert result.size_index.size_of("/data/f") == 1000
        assert result.size_index.size_of("/data/g") is None

    def test_user_ids_dense_and_first_seen(self):
        log = UsageLog()
        events = [_event(0.0, user="zed"), _event(1.0, user="amy"), _event(2.0, user="zed")]
        result = sessionize_events(events, log, gap_us=1e6)
        assert result.user_ids == {"zed": 0, "amy": 1}
        assert result.stats.users == 2


class TestCategoryHandling:
    def test_explicit_category_respected(self):
        log = UsageLog()
        sessionize_events(
            [_event(0.0, category="REG:NOTES:RDONLY")], log, gap_us=1e6
        )
        assert log.operations[0].category_key == "REG:NOTES:RDONLY"

    def test_invalid_category_falls_back_to_inference(self):
        log = UsageLog()
        from repro.traces import IssueCollector

        issues = IssueCollector()
        sessionize_events(
            [_event(0.0, path="/home/x/f", category="NOT:A:KEY:AT:ALL")],
            log,
            gap_us=1e6,
            issues=issues,
        )
        assert log.operations[0].category_key == "REG:USER:RDONLY"
        assert issues.total == 1
        # Sessionizer issues count events, not physical lines.
        assert str(issues.issues[0]).startswith("event 1:")

    def test_inferencer_rules(self):
        inf = CategoryInferencer()
        assert inf.key_for(_event(0, op="read", path="/home/a/f")) == "REG:USER:RDONLY"
        assert inf.key_for(_event(0, op="read", path="/usr/lib/libc.so")) == "REG:OTHER:RDONLY"
        assert inf.key_for(_event(0, op="read", path="/var/notes/general")) == "REG:NOTES:RDONLY"
        assert inf.key_for(_event(0, op="write", path="/tmp/cc123.o")) == "REG:OTHER:TEMP"
        assert inf.key_for(_event(0, op="listdir", path="/home/a")) == "DIR:USER:RDONLY"
        # A created file is NEW from the creat onwards.
        assert inf.key_for(_event(0, op="creat", path="/home/a/new")) == "REG:USER:NEW"
        assert inf.key_for(_event(0, op="write", path="/home/a/new")) == "REG:USER:NEW"
        # A written (but not created) file is RD-WRT from the write onwards.
        assert inf.key_for(_event(0, op="write", path="/home/a/log")) == "REG:USER:RD-WRT"
        assert inf.key_for(_event(0, op="read", path="/home/a/log")) == "REG:USER:RD-WRT"
