"""WorkloadSpec JSON round-trip tests, including empirical payloads."""

import pytest

from repro.core import (
    SpecError,
    dumps_spec,
    loads_spec,
    paper_workload_spec,
    spec_from_jsonable,
    spec_to_jsonable,
)
from repro.core.spec import (
    FileCategory,
    FileCategorySpec,
    UsageSpec,
    UserTypeSpec,
    WorkloadSpec,
)
from repro.distributions import (
    Constant,
    EmpiricalDistribution,
    MultiStageGamma,
    PhaseTypeExponential,
    ShiftedExponential,
    ShiftedGamma,
    TabulatedCdf,
    TabulatedPdf,
    Uniform,
    from_jsonable,
    to_jsonable,
)


class TestDistributionCodec:
    @pytest.mark.parametrize(
        "dist",
        [
            Constant(7.0),
            Uniform(1.0, 9.0),
            ShiftedExponential(1024.0, 3.0),
            PhaseTypeExponential([0.4, 0.6], [10.0, 20.0], [0.0, 5.0]),
            ShiftedGamma(1.5, 8.0, 2.0),
            MultiStageGamma([0.7, 0.3], [1.2, 2.0], [3.0, 4.0], [0.0, 1.0]),
            EmpiricalDistribution([5.0, 1.0, 3.0, 3.0, 8.0], bins=4),
            TabulatedPdf([0.0, 1.0, 2.0], [0.0, 1.0, 0.0]),
            TabulatedCdf([0.0, 1.0, 2.0], [0.0, 0.4, 1.0]),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_round_trip_equality(self, dist):
        assert from_jsonable(to_jsonable(dist)) == dist

    def test_unknown_kind_rejected(self):
        from repro.distributions import DistributionError

        with pytest.raises(DistributionError, match="unknown distribution kind"):
            from_jsonable({"kind": "zipf", "s": 1.1})

    def test_bad_payload_rejected(self):
        from repro.distributions import DistributionError

        with pytest.raises(DistributionError, match="bad"):
            from_jsonable({"kind": "uniform", "lo": 1.0})


def _empirical_spec() -> WorkloadSpec:
    category = FileCategory.from_key("REG:USER:RD-WRT")
    return WorkloadSpec(
        file_categories=(
            FileCategorySpec(
                category=category,
                size_distribution=EmpiricalDistribution([100.0, 900.0, 400.0]),
                fraction_of_files=1.0,
            ),
        ),
        user_types=(
            UserTypeSpec(
                name="measured",
                fraction=1.0,
                usage=(
                    UsageSpec(
                        category=category,
                        access_per_byte=EmpiricalDistribution([1.0, 2.0, 2.5]),
                        file_count=Constant(3.0),
                        file_size=EmpiricalDistribution([128.0, 4096.0]),
                        fraction_of_users=0.75,
                    ),
                ),
                think_time=PhaseTypeExponential([0.5, 0.5], [100.0, 9000.0]),
                access_size=EmpiricalDistribution([512.0, 1024.0, 1024.0]),
            ),
        ),
        total_files=64,
        n_users=5,
        seed=42,
    )


class TestSpecRoundTrip:
    def test_paper_spec_round_trip(self):
        spec = paper_workload_spec(n_users=4, total_files=200, seed=3)
        restored, meta = loads_spec(dumps_spec(spec, meta={"k": "v"}))
        assert restored == spec
        assert meta == {"k": "v"}

    def test_empirical_spec_round_trip(self):
        spec = _empirical_spec()
        restored, _ = loads_spec(dumps_spec(spec))
        assert restored == spec
        # Serialisation is stable: encode(decode(encode(x))) == encode(x).
        assert spec_to_jsonable(restored) == spec_to_jsonable(spec)

    def test_calibrated_spec_round_trip(self, example_trace):
        from repro.traces import calibrate_trace_file

        result = calibrate_trace_file(example_trace, method="empirical", seed=5)
        restored, _ = loads_spec(dumps_spec(result.spec))
        assert restored == result.spec

    def test_not_json_rejected(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            loads_spec("{nope")

    def test_wrong_format_rejected(self):
        with pytest.raises(SpecError, match="unknown format"):
            spec_from_jsonable({"format": "other", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(SpecError, match="unsupported version"):
            spec_from_jsonable({"format": "repro.workload-spec", "version": 99})

    def test_missing_fields_reported(self):
        payload = spec_to_jsonable(_empirical_spec())
        del payload["user_types"][0]["think_time"]
        with pytest.raises(SpecError, match="missing 'think_time'"):
            spec_from_jsonable(payload)

    def test_semantic_validation_still_applies(self):
        payload = spec_to_jsonable(_empirical_spec())
        payload["user_types"][0]["fraction"] = 0.5  # no longer sums to 1
        with pytest.raises(SpecError, match="sum to 1"):
            spec_from_jsonable(payload)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.__setitem__("file_categories", 0),
            lambda p: p.__setitem__("user_types", [7]),
            lambda p: p["file_categories"][0].__setitem__("fraction_of_files", "abc"),
            lambda p: p["user_types"][0].__setitem__("usage", {"not": "a list"}),
        ],
        ids=["categories-not-list", "user-type-not-dict", "non-numeric", "usage-not-list"],
    )
    def test_structural_garbage_becomes_spec_error(self, mutate):
        payload = spec_to_jsonable(_empirical_spec())
        mutate(payload)
        with pytest.raises(SpecError):
            spec_from_jsonable(payload)


class TestScenarioRegistration:
    def test_register_spec_file(self, tmp_path):
        from repro.scenarios import _REGISTRY, register_spec_file

        spec = _empirical_spec()
        path = tmp_path / "measured.spec.json"
        path.write_text(dumps_spec(spec, meta={"calibrated_from": "t.csv"}))
        scenario = register_spec_file(str(path), name="test-calibrated")
        try:
            built = scenario.build(11, 99)
            assert built.n_users == 11
            assert built.seed == 99
            assert built.user_types == spec.user_types
            assert "t.csv" in scenario.description
            assert scenario.arrival_model is None  # no block, no model
        finally:
            _REGISTRY.pop("test-calibrated", None)

    def test_register_spec_file_keeps_arrivals_block(self, tmp_path):
        from repro.core import ArrivalModel, get_profile
        from repro.scenarios import _REGISTRY, register_spec_file

        model = ArrivalModel(profile=get_profile("nightly"))
        path = tmp_path / "timed.spec.json"
        path.write_text(dumps_spec(_empirical_spec(), arrivals=model))
        scenario = register_spec_file(str(path), name="test-timed")
        try:
            # the saved temporal shape survives registration: a
            # `fleet run --scenario test-timed --arrivals` replays it
            assert scenario.arrival_model == model
        finally:
            _REGISTRY.pop("test-timed", None)
