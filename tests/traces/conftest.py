"""Shared paths for the trace tests."""

import pathlib

import pytest

EXAMPLE_TRACE = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "example_trace.csv"
)


@pytest.fixture(scope="session")
def example_trace() -> str:
    """Absolute path of the bundled example trace."""
    assert EXAMPLE_TRACE.exists(), "examples/example_trace.csv is missing"
    return str(EXAMPLE_TRACE)
