"""Calibration + closed-loop validation tests (the tentpole acceptance)."""

import pytest

from repro.core import UsageLog
from repro.traces import (
    DEFAULT_KS_THRESHOLD,
    TraceError,
    calibrate_trace_file,
    ingest_trace_file,
    measure_samples,
    think_time_samples,
    validate_spec,
)


class TestIngestion:
    def test_ingest_example_trace(self, example_trace):
        log = UsageLog()
        stats, sizes = ingest_trace_file(example_trace, log)
        assert stats.adapter == "csv"
        assert stats.events == len(log.operations) > 1000
        assert stats.users == 4
        assert stats.sessions == len(log.sessions) == 8
        assert stats.issues_total == 0
        assert len(sizes) > 0

    def test_missing_file_raises_oserror(self):
        with pytest.raises(OSError):
            ingest_trace_file("/nonexistent/trace.csv", UsageLog())

    def test_empty_trace_cannot_calibrate(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("timestamp_us,op,path\n")
        with pytest.raises(TraceError, match="no operations"):
            calibrate_trace_file(str(path))


class TestCalibration:
    def test_defaults_derive_from_trace(self, example_trace):
        result = calibrate_trace_file(example_trace, seed=5)
        assert result.spec.n_users == 4
        assert result.spec.seed == 5
        assert result.spec.total_files == result.stats.distinct_paths
        assert len(result.spec.user_types) == 1
        assert result.spec.user_types[0].name == "calibrated"
        assert result.meta(example_trace)["adapter"] == "csv"

    def test_overrides_respected(self, example_trace):
        result = calibrate_trace_file(
            example_trace, n_users=10, total_files=500, user_type_name="campus"
        )
        assert result.spec.n_users == 10
        assert result.spec.total_files == 500
        assert result.spec.user_types[0].name == "campus"

    def test_think_time_excludes_service_time(self, example_trace):
        # Per-call durations are present, so the calibrated think time
        # must sit below the raw inter-request gap mean.
        result = calibrate_trace_file(example_trace, method="empirical")
        gaps = think_time_samples(result.log)
        assert result.spec.user_types[0].think_time.mean() == pytest.approx(
            float(gaps.mean()), rel=1e-6
        )

    def test_deterministic(self, example_trace):
        from repro.core import dumps_spec

        one = calibrate_trace_file(example_trace, seed=5)
        two = calibrate_trace_file(example_trace, seed=5)
        assert dumps_spec(one.spec) == dumps_spec(two.spec)


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def calibration(self, example_trace):
        return calibrate_trace_file(example_trace, seed=5)

    def test_loop_closes_within_threshold(self, calibration):
        report = validate_spec(
            calibration.spec, calibration.log, calibration.size_index
        )
        assert report.passed, report.formatted()
        assert report.worst_ks <= DEFAULT_KS_THRESHOLD
        assert {m.measure for m in report.measures} == {
            "access_size",
            "file_size",
            "files_referenced",
            "access_per_byte",
            "think_time",
        }
        for measure in report.measures:
            assert measure.n_source > 0
            assert measure.n_synthetic > 0

    def test_deterministic_for_fixed_seed(self, calibration):
        one = validate_spec(calibration.spec, calibration.log, calibration.size_index)
        two = validate_spec(calibration.spec, calibration.log, calibration.size_index)
        assert one.to_json() == two.to_json()

    def test_fleet_regeneration_matches_single_engine(self, calibration):
        # The fleet's merged content is shard-invariant, so the fidelity
        # numbers cannot depend on the regeneration topology.
        single = validate_spec(
            calibration.spec, calibration.log, calibration.size_index, shards=1
        )
        sharded = validate_spec(
            calibration.spec, calibration.log, calibration.size_index, shards=2
        )
        assert {m.measure: m.ks for m in single.measures} == {
            m.measure: m.ks for m in sharded.measures
        }

    def test_mismatched_spec_fails(self, calibration):
        from repro.scenarios import build_scenario_spec

        # A batch workload is nothing like the dev-team trace.
        wrong = build_scenario_spec("batch-heavy", 4, 5, total_files=70)
        report = validate_spec(wrong, calibration.log, calibration.size_index)
        assert not report.passed

    def test_report_renders_and_serialises(self, calibration):
        report = validate_spec(
            calibration.spec, calibration.log, calibration.size_index
        )
        text = report.formatted()
        assert "Closed-loop validation" in text
        assert "PASS" in text
        payload = report.to_jsonable()
        assert payload["passed"] is True
        assert set(payload["measures"]) == {m.measure for m in report.measures}


class TestMeasures:
    def test_think_time_subtracts_response(self):
        from repro.core import OpRecord

        log = UsageLog()
        ops = [
            OpRecord(1, "t", 0, "read", "/f", "", 10, 0.0, 40.0),
            OpRecord(1, "t", 0, "read", "/f", "", 10, 100.0, 5.0),
            OpRecord(1, "t", 0, "read", "/f", "", 10, 190.0, 0.0),
        ]
        for op in ops:
            log.record_op(op)
        gaps = think_time_samples(log)
        assert list(gaps) == [60.0, 85.0]

    def test_report_json_is_strict_even_with_infinite_rel_err(self):
        import json as json_module

        from repro.traces.validate import FidelityReport, MeasureFidelity

        report = FidelityReport(
            measures=[
                MeasureFidelity(
                    measure="think_time",
                    ks=0.1,
                    source_mean=0.0,
                    synthetic_mean=5.0,
                    mean_relative_error=float("inf"),
                    n_source=3,
                    n_synthetic=3,
                )
            ],
            threshold=0.35,
            source_sessions=1,
            synthetic_sessions=1,
            source_ops=3,
            synthetic_ops=3,
            sessions_per_user=1,
            shards=1,
            seed=0,
        )
        payload = json_module.loads(report.to_json())
        assert payload["measures"]["think_time"]["mean_relative_error"] is None
        assert "Infinity" not in report.to_json()

    def test_measure_samples_keys(self, example_trace):
        log = UsageLog()
        _, sizes = ingest_trace_file(example_trace, log)
        samples = measure_samples(log, sizes)
        assert set(samples) == {
            "access_size",
            "file_size",
            "files_referenced",
            "access_per_byte",
            "think_time",
        }
        assert all(len(v) > 0 for v in samples.values())
