"""Unit tests for the File System Creator."""

import pytest

from repro.core import FileCategory, FileSystemCreator, paper_workload_spec
from repro.distributions import RandomStreams
from repro.vfs import MemoryFileSystem


@pytest.fixture
def spec():
    return paper_workload_spec(n_users=3, total_files=200, seed=7)


@pytest.fixture
def built(spec):
    fs = MemoryFileSystem()
    layout = FileSystemCreator(spec).create(fs)
    return fs, layout


class TestApportionment:
    def test_counts_sum_to_total(self, spec):
        counts = FileSystemCreator(spec).category_file_counts()
        assert sum(counts.values()) == spec.total_files

    def test_counts_follow_fractions(self, spec):
        counts = FileSystemCreator(spec).category_file_counts()
        # TEMP is 38.2% of files: the largest category.
        assert counts["REG:USER:TEMP"] == max(counts.values())
        assert counts["REG:USER:TEMP"] == pytest.approx(
            0.382 * spec.total_files, abs=1.0
        )


class TestCreation:
    def test_standard_directories_exist(self, built):
        fs, layout = built
        assert fs.stat("/system").is_dir
        assert fs.stat("/notes").is_dir
        for user_id in range(layout.n_users):
            assert fs.stat(layout.user_home(user_id)).is_dir

    def test_every_manifest_path_exists(self, built):
        fs, layout = built
        for record in layout.files:
            assert fs.exists(record.path), record.path

    def test_total_files_created(self, built, spec):
        _, layout = built
        assert layout.total_files == spec.total_files

    def test_regular_files_have_sampled_sizes(self, built):
        fs, layout = built
        regular = [r for r in layout.files
                   if not r.category_key.startswith("DIR")]
        assert regular
        for record in regular[:50]:
            assert fs.stat(record.path).size == record.size

    def test_mean_sizes_near_table_5_1(self, spec):
        # Use a bigger build so sample means are stable.
        big = paper_workload_spec(n_users=2, total_files=4000, seed=11)
        layout = FileSystemCreator(big).create(MemoryFileSystem())
        means = layout.mean_size_by_category()
        # Exponential with mean 12431 (TEMP) — allow 15% sampling slack.
        assert means["REG:USER:TEMP"] == pytest.approx(12431, rel=0.15)
        assert means["REG:NOTES:RDONLY"] == pytest.approx(31347, rel=0.15)

    def test_dir_categories_are_directories(self, built):
        fs, layout = built
        dirs = [r for r in layout.files if r.category_key.startswith("DIR")]
        assert dirs
        for record in dirs:
            assert fs.stat(record.path).is_dir
            assert len(fs.listdir(record.path)) >= 1

    def test_user_files_in_user_homes(self, built):
        _, layout = built
        for record in layout.files:
            if record.owner_user is not None:
                assert record.path.startswith(
                    layout.user_home(record.owner_user)
                )

    def test_shared_files_in_shared_dirs(self, built):
        _, layout = built
        for record in layout.files:
            if record.owner_user is None:
                assert record.path.startswith(("/system/", "/notes/"))

    def test_notes_files_under_notes(self, built):
        _, layout = built
        notes = [r for r in layout.files if ":NOTES:" in r.category_key]
        assert notes
        assert all(r.path.startswith("/notes/") for r in notes)

    def test_user_files_spread_across_users(self, built):
        _, layout = built
        owners = {r.owner_user for r in layout.files
                  if r.owner_user is not None}
        assert owners == {0, 1, 2}

    def test_deterministic_given_seed(self, spec):
        layout_a = FileSystemCreator(
            spec, streams=RandomStreams(1)).create(MemoryFileSystem())
        layout_b = FileSystemCreator(
            spec, streams=RandomStreams(1)).create(MemoryFileSystem())
        assert [r.size for r in layout_a.files] == [
            r.size for r in layout_b.files
        ]

    def test_different_seed_differs(self, spec):
        layout_a = FileSystemCreator(
            spec, streams=RandomStreams(1)).create(MemoryFileSystem())
        layout_b = FileSystemCreator(
            spec, streams=RandomStreams(2)).create(MemoryFileSystem())
        assert [r.size for r in layout_a.files] != [
            r.size for r in layout_b.files
        ]


class TestLayoutQueries:
    def test_files_for_user_category(self, built):
        _, layout = built
        cat = FileCategory.from_key("REG:USER:RDONLY")
        for user_id in range(3):
            pool = layout.files_for(cat, user_id)
            assert pool
            assert all(r.owner_user == user_id for r in pool)

    def test_files_for_shared_category(self, built):
        _, layout = built
        cat = FileCategory.from_key("REG:NOTES:RDONLY")
        pool_a = layout.files_for(cat, 0)
        pool_b = layout.files_for(cat, 2)
        assert pool_a == pool_b
        assert pool_a

    def test_size_of(self, built):
        _, layout = built
        record = layout.files[0]
        assert layout.size_of(record.path) == record.size
        assert layout.size_of("/not/created") is None

    def test_user_home_bounds(self, built):
        _, layout = built
        with pytest.raises(ValueError):
            layout.user_home(99)

    def test_count_by_category_matches_apportionment(self, built, spec):
        _, layout = built
        counts = layout.count_by_category()
        expected = FileSystemCreator(spec).category_file_counts()
        assert counts == expected

    def test_works_on_localfs(self, spec, tmp_path):
        from repro.vfs import LocalFileSystem

        fs = LocalFileSystem(str(tmp_path / "root"))
        layout = FileSystemCreator(spec).create(fs)
        assert layout.total_files == spec.total_files
        sample = layout.files[0]
        assert fs.exists(sample.path)
