"""Property-based tests (hypothesis) on session op-stream invariants.

These are the thesis's logical constraints (section 3.1.4) checked over
arbitrary seeds, user ids and access patterns: whatever the random draws,
an operation stream must be a well-formed sequence of system calls.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FileSystemCreator, SessionGenerator, paper_user_type
from repro.core.datasets import paper_workload_spec
from repro.distributions import RandomStreams
from repro.vfs import MemoryFileSystem

_SPEC = paper_workload_spec(n_users=3, total_files=120, seed=99)
_LAYOUT = FileSystemCreator(_SPEC).create(MemoryFileSystem())


def make_session(seed, user_id, pattern, think, session_id=0):
    generator = SessionGenerator(
        paper_user_type("t", think_time_mean_us=think),
        _LAYOUT,
        RandomStreams(seed),
        user_id=user_id,
        access_pattern=pattern,
    )
    return list(generator.generate_session(session_id))


session_params = {
    "seed": st.integers(min_value=0, max_value=10_000),
    "user_id": st.integers(min_value=0, max_value=2),
    "pattern": st.sampled_from(["sequential", "random"]),
    "think": st.sampled_from([0.0, 5000.0, 20000.0]),
}


@given(**session_params)
@settings(max_examples=30, deadline=None)
def test_stream_is_well_formed(seed, user_id, pattern, think):
    """Every data op happens on an open file; every open is closed."""
    open_plans = set()
    for op in make_session(seed, user_id, pattern, think):
        if op.kind in ("open", "creat"):
            assert op.plan_id not in open_plans
            open_plans.add(op.plan_id)
        elif op.kind in ("read", "write", "lseek"):
            assert op.plan_id in open_plans
        elif op.kind == "close":
            open_plans.remove(op.plan_id)
    assert open_plans == set()


@given(**session_params)
@settings(max_examples=30, deadline=None)
def test_stream_is_executable(seed, user_id, pattern, think):
    """The stream replays cleanly against a fresh copy of the layout."""
    from repro.core import RealRunner, UsageLog

    fs = MemoryFileSystem()
    layout = FileSystemCreator(_SPEC).create(fs)
    generator = SessionGenerator(
        paper_user_type("t", think_time_mean_us=think),
        layout,
        RandomStreams(seed),
        user_id=user_id,
        access_pattern=pattern,
    )
    log = UsageLog()
    RealRunner(fs, generator, log).run_sessions(1)
    assert len(log.sessions) == 1
    assert all(op.response_us >= 0 for op in log.operations)
    # No descriptor leaks across a session.
    assert fs.open_descriptor_count == 0


@given(**session_params)
@settings(max_examples=30, deadline=None)
def test_sizes_nonnegative_and_bounded(seed, user_id, pattern, think):
    """Chunk sizes are positive; think times are non-negative."""
    for op in make_session(seed, user_id, pattern, think):
        if op.kind in ("read", "write"):
            assert op.size >= 1
        elif op.kind == "think":
            assert op.size >= 0
            if think == 0.0:
                assert op.size == 0


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_streams_deterministic(seed):
    a = make_session(seed, 0, "sequential", 5000.0)
    b = make_session(seed, 0, "sequential", 5000.0)
    assert a == b


@given(seed=st.integers(min_value=0, max_value=10_000),
       sid=st.integers(min_value=0, max_value=5))
@settings(max_examples=20, deadline=None)
def test_created_paths_unique_within_session(seed, sid):
    """NEW/TEMP file names never collide inside a session."""
    ops = make_session(seed, 1, "sequential", 5000.0, session_id=sid)
    created = [op.path for op in ops if op.kind == "creat"]
    assert len(created) == len(set(created))
