"""Unit tests for the analyzer on hand-built logs (no simulation)."""

import numpy as np
import pytest

from repro.core import OpRecord, SessionRecord, UsageAnalyzer, UsageLog


def op(kind, size, response=100.0, user=0, session=0, path="/f",
       category="REG:USER:RDONLY"):
    return OpRecord(
        user_id=user, user_type="t", session_id=session, op=kind,
        path=path, category_key=category, size=size, start_us=0.0,
        response_us=response,
    )


def session_record(user=0, session_id=0, files=2, accessed=400,
                   referenced=200):
    return SessionRecord(
        user_id=user, user_type="t", session_id=session_id, start_us=0.0,
        end_us=50.0, files_referenced=files, bytes_accessed=accessed,
        file_bytes_referenced=referenced, categories=("REG:USER:RDONLY",),
    )


@pytest.fixture
def log():
    built = UsageLog()
    built.record_op(op("open", 200, response=300.0))
    built.record_op(op("read", 150, response=1000.0))
    built.record_op(op("write", 50, response=2000.0))
    built.record_op(op("close", 0, response=50.0))
    built.record_session(session_record())
    built.record_session(session_record(session_id=1, files=4,
                                        accessed=1200, referenced=300))
    return built


class TestSessionMeasures:
    def test_arrays(self, log):
        measures = UsageAnalyzer(log).session_measures()
        np.testing.assert_allclose(measures.access_per_byte, [2.0, 4.0])
        np.testing.assert_allclose(measures.mean_file_size, [100.0, 75.0])
        np.testing.assert_allclose(measures.files_referenced, [2.0, 4.0])
        assert measures.n_sessions == 2

    def test_empty_log(self):
        measures = UsageAnalyzer(UsageLog()).session_measures()
        assert measures.n_sessions == 0


class TestSyscallStats:
    def test_access_size_only_data_ops(self, log):
        stats = UsageAnalyzer(log).access_size_stats()
        assert stats.count == 2
        assert stats.mean == pytest.approx(100.0)

    def test_response_all_ops(self, log):
        stats = UsageAnalyzer(log).response_time_stats()
        assert stats.count == 4
        assert stats.mean == pytest.approx((300 + 1000 + 2000 + 50) / 4)

    def test_response_filtered(self, log):
        stats = UsageAnalyzer(log).response_time_stats(ops=("read",))
        assert stats.count == 1
        assert stats.mean == 1000.0

    def test_response_per_byte(self, log):
        # (1000 + 2000) µs over 200 data bytes.
        assert UsageAnalyzer(log).response_per_byte() == pytest.approx(15.0)

    def test_response_per_byte_zero_bytes(self):
        empty = UsageLog()
        empty.record_op(op("open", 0))
        assert UsageAnalyzer(empty).response_per_byte() == 0.0


class TestHistograms:
    def test_bins_configurable(self, log):
        hist = UsageAnalyzer(log).histogram_access_per_byte(hi=5.0, n_bins=5)
        assert hist.n_bins == 5
        assert hist.total == 2

    def test_files_referenced_histogram(self, log):
        hist = UsageAnalyzer(log).histogram_files_referenced(hi=10, n_bins=10)
        assert hist.counts[2] == 1
        assert hist.counts[4] == 1


class TestCharacterizationUnits:
    def test_single_category_cell(self):
        built = UsageLog()
        built.record_op(op("open", 100))
        built.record_op(op("read", 250))
        built.record_op(op("write", 50))
        built.record_session(session_record())
        rows = UsageAnalyzer(built).characterization()
        assert len(rows) == 1
        row = rows[0]
        assert row.category_key == "REG:USER:RDONLY"
        # Without a layout, the written bytes stand in for the file size.
        assert row.mean_files == 1.0
        assert row.sessions_accessing == 1

    def test_ops_without_category_ignored(self):
        built = UsageLog()
        built.record_op(op("read", 100, category=""))
        built.record_session(session_record())
        assert UsageAnalyzer(built).characterization() == []

    def test_percent_of_users(self):
        built = UsageLog()
        built.record_op(op("open", 100, session=0))
        built.record_op(op("open", 100, session=1, category=""))
        built.record_session(session_record(session_id=0))
        built.record_session(session_record(session_id=1))
        rows = UsageAnalyzer(built).characterization()
        assert rows[0].percent_of_users == pytest.approx(50.0)
