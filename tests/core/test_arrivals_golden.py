"""Golden cross-backend identity with the temporal load model enabled.

The arrivals layer's contract extends the staged pipeline's: schedules
move the *timeline* only.  With arrivals on, every backend must still
emit the byte-identical op stream it emits with arrivals off, the two
engine-free backends must agree bit-for-bit on records — start clocks
included — and the merged fleet tally (windowed offered-load buckets
included) must stay shard-count-invariant.  The DES shares the exact
first-login offsets (they come from the same pre-resolved schedules)
but times subsequent ops on its own queueing clock, so it is held to
content identity plus offset identity.
"""

import pytest

from repro.core import (
    ArrivalModel,
    DEFAULT_ARRIVALS,
    WorkloadGenerator,
    get_profile,
)
from repro.fleet import FleetConfig, run_fleet
from repro.scenarios import get_scenario

SCENARIOS = ("mixed-campus", "batch-heavy")
SEED = 17
USERS = 3
SESSIONS = 2


def run_scenario(name, backend, arrivals, **kwargs):
    scenario = get_scenario(name)
    spec = scenario.build(USERS, SEED)
    return WorkloadGenerator(spec).run_simulated(
        sessions_per_user=SESSIONS,
        backend=backend,
        access_pattern=scenario.access_pattern,
        arrivals=arrivals,
        **kwargs,
    )


def content_by_user(log):
    """Per-user, in-order, timing-free projection of an op log."""
    out = {}
    for op in log.operations:
        out.setdefault(op.user_id, []).append(
            (op.session_id, op.op, op.path, op.category_key, op.size)
        )
    return out


@pytest.mark.parametrize("name", SCENARIOS)
class TestArrivalsGoldenIdentity:
    def model(self, name):
        return get_scenario(name).arrival_model or DEFAULT_ARRIVALS

    def test_all_backends_same_stream_fast_pair_bit_identical(self, name):
        model = self.model(name)
        des = run_scenario(name, "nfs", model)
        fast = run_scenario(name, "fast", model)
        columnar = run_scenario(name, "fast-columnar", model)
        # content identity across all three
        reference = content_by_user(fast.log)
        assert content_by_user(des.log) == reference
        assert content_by_user(columnar.log) == reference
        # bit identity (start clocks and response times included) for
        # the engine-free pair, sessions and duration too
        assert fast.log.operations == columnar.log.operations
        assert fast.log.sessions == columnar.log.sessions
        assert fast.simulated_duration_us == columnar.simulated_duration_us

    def test_des_shares_the_first_login_offsets(self, name):
        model = self.model(name)
        des = run_scenario(name, "nfs", model)
        fast = run_scenario(name, "fast", model)

        def first_starts(log):
            firsts = {}
            for op in log.operations:
                firsts.setdefault(op.user_id, op.start_us)
            return firsts

        assert first_starts(des.log) == first_starts(fast.log)

    def test_arrivals_do_not_change_the_op_stream(self, name):
        model = self.model(name)
        with_arrivals = run_scenario(name, "fast-columnar", model)
        without = run_scenario(name, "fast-columnar", None)
        assert (content_by_user(with_arrivals.log)
                == content_by_user(without.log))
        # but the timeline did move: users no longer all start at 0
        starts = {op.start_us for op in with_arrivals.log.operations}
        assert min(starts) > 0.0

    def test_truncation_stays_bit_identical(self, name):
        model = self.model(name)
        full = run_scenario(name, "fast", model)
        limit = full.simulated_duration_us / 2
        fast = run_scenario(name, "fast", model, time_limit_us=limit)
        columnar = run_scenario(name, "fast-columnar", model,
                                time_limit_us=limit)
        assert fast.log.operations == columnar.log.operations
        assert fast.log.sessions == columnar.log.sessions
        assert fast.simulated_duration_us == columnar.simulated_duration_us
        assert len(columnar.log.operations) < len(full.log.operations)

    def test_des_truncation_obeys_the_boundary_rule(self, name):
        model = self.model(name)
        full = run_scenario(name, "nfs", model)
        limit = full.simulated_duration_us / 2
        cut = run_scenario(name, "nfs", model, time_limit_us=limit)
        assert cut.simulated_duration_us <= limit
        assert all(op.start_us < limit for op in cut.log.operations)
        assert all(s.end_us <= limit for s in cut.log.sessions)
        assert len(cut.log.operations) < len(full.log.operations)


class TestArrivalsFleetInvariance:
    """The ISSUE acceptance property: `fleet run --profile` output is
    invariant to shard count (windowed offered-load buckets included)."""

    def fleet(self, shards, backend="fast-columnar", **kwargs):
        return run_fleet(FleetConfig(
            scenario="mixed-campus", users=9, shards=shards, workers=1,
            seed=5, backend=backend, use_arrivals=True, **kwargs,
        ))

    def test_windowed_aggregate_shard_invariant(self):
        one = self.fleet(1)
        assert one.tally.ops_by_window  # windows actually recorded
        for shards in (2, 3, 12):
            many = self.fleet(shards)
            assert many.aggregate_kv() == one.aggregate_kv()
            # the offered-load curve itself is shard-invariant on the
            # engine-free backends (per-user clocks)
            assert many.tally.ops_by_window == one.tally.ops_by_window
            assert many.tally == one.tally

    def test_scalar_and_columnar_windowed_tallies_match(self):
        scalar = self.fleet(2, backend="fast")
        columnar = self.fleet(2, backend="fast-columnar")
        assert scalar.tally == columnar.tally

    def test_profile_override_changes_the_curve(self):
        office = self.fleet(1)
        nightly = self.fleet(1, profile="nightly")
        assert office.tally.ops_by_window != nightly.tally.ops_by_window
        assert office.tally.operations == nightly.tally.operations

    def test_report_renders_offered_load(self):
        from repro.harness import fleet_offered_load_block, fleet_report

        result = self.fleet(2)
        block = fleet_offered_load_block(result)
        assert block is not None and "Offered load" in block
        assert "Offered load" in fleet_report(result)

    def test_offered_load_rows_sum_to_operations(self):
        result = self.fleet(3)
        rows = result.tally.offered_load()
        assert sum(ops for _, ops, _ in rows) == result.tally.operations

    def test_explicit_model_on_spec_config(self):
        from repro.core import paper_workload_spec

        spec = paper_workload_spec(n_users=4, total_files=100, seed=3)
        model = ArrivalModel(profile=get_profile("evening"))
        result = run_fleet(FleetConfig(spec=spec, shards=2, workers=1,
                                       arrival_model=model, backend="fast"))
        assert result.tally.ops_by_window
        assert result.tally.sessions == 4
