"""Unit tests for the Distribution Specifier (GDS) and plotting."""

import numpy as np
import pytest

from repro.core import DistributionSpecifier
from repro.core.plotting import render_histogram, render_pdf, render_series, sparkline
from repro.distributions import (
    DistributionError,
    MultiStageGamma,
    PhaseTypeExponential,
    ShiftedExponential,
)


class TestDistributionSpecifier:
    def test_specify_and_get(self):
        gds = DistributionSpecifier()
        dist = ShiftedExponential(1024.0)
        gds.specify("access-size", dist)
        assert gds.get("access-size") is dist
        assert "access-size" in gds
        assert len(gds) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(DistributionError):
            DistributionSpecifier().get("nope")

    def test_specify_pdf_values(self):
        gds = DistributionSpecifier()
        gds.specify_pdf_values("tri", [0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        assert gds.get("tri").mean() == pytest.approx(1.0)

    def test_specify_cdf_values(self):
        gds = DistributionSpecifier()
        gds.specify_cdf_values("uni", [0.0, 10.0], [0.0, 1.0])
        assert gds.get("uni").mean() == pytest.approx(5.0)

    def test_fit_families(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(10.0, size=3000)
        gds = DistributionSpecifier()
        result = gds.fit("exp-fit", samples, family="exponential", n_phases=1)
        assert result.ks_statistic < 0.05
        assert "exp-fit" in gds
        result = gds.fit("gamma-fit", samples, family="gamma", n_phases=1)
        assert "gamma-fit" in gds
        result = gds.fit("auto-fit", samples, family="auto", n_phases=2)
        assert result.ks_statistic < 0.05

    def test_fit_unknown_family(self):
        with pytest.raises(DistributionError):
            DistributionSpecifier().fit("x", [1.0, 2.0], family="weibull")

    def test_table_is_cached(self):
        gds = DistributionSpecifier(table_points=65)
        gds.specify("d", ShiftedExponential(2.0))
        assert gds.table("d") is gds.table("d")

    def test_table_invalidated_on_respecify(self):
        gds = DistributionSpecifier(table_points=65)
        gds.specify("d", ShiftedExponential(2.0))
        first = gds.table("d")
        gds.specify("d", ShiftedExponential(9.0))
        second = gds.table("d")
        assert first is not second
        assert second.mean() > first.mean()

    def test_tables_covers_all_names(self):
        gds = DistributionSpecifier(table_points=65)
        gds.specify("a", ShiftedExponential(1.0))
        gds.specify("b", ShiftedExponential(2.0))
        assert set(gds.tables()) == {"a", "b"}

    def test_table_sampling_matches_distribution(self):
        gds = DistributionSpecifier(table_points=1025, coverage=0.9999)
        dist = PhaseTypeExponential([0.5, 0.5], [10.0, 40.0], [0.0, 50.0])
        gds.specify("mix", dist)
        draws = gds.table("mix").sample(np.random.default_rng(1), size=50_000)
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.03)

    def test_memory_report(self):
        gds = DistributionSpecifier(table_points=129)
        gds.specify("a", ShiftedExponential(1.0))
        gds.specify("b", ShiftedExponential(2.0))
        report = gds.memory_report()
        assert report["TOTAL"] == report["a"] + report["b"]
        assert report["a"] == 129 * 16

    def test_render_contains_name(self):
        gds = DistributionSpecifier()
        gds.specify("my-dist", ShiftedExponential(5.0))
        out = gds.render("my-dist")
        assert "my-dist" in out
        assert "pdf" in out

    def test_validation(self):
        with pytest.raises(DistributionError):
            DistributionSpecifier(table_points=2)
        with pytest.raises(DistributionError):
            DistributionSpecifier(coverage=1.5)
        with pytest.raises(DistributionError):
            DistributionSpecifier().specify("", ShiftedExponential(1.0))


class TestPlotting:
    def test_sparkline_scales(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " "
        assert line[-1] == "█"

    def test_sparkline_empty_and_zero(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "  "

    def test_render_series_shape(self):
        out = render_series([0, 1, 2, 3], [0, 1, 2, 3], height=5, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 5 + 2  # title + rows + axis + range

    def test_render_series_validation(self):
        with pytest.raises(ValueError):
            render_series([1], [1, 2])
        with pytest.raises(ValueError):
            render_series([1, 2], [1, 2], height=1)

    def test_render_series_all_zero(self):
        out = render_series([0, 1], [0, 0])
        assert "all-zero" in out

    def test_render_pdf_multi_stage(self):
        dist = MultiStageGamma([0.7, 0.3], [1.3, 1.5], [12.3, 12.4],
                               [0.0, 23.0])
        out = render_pdf(dist, n_points=40, height=6)
        assert "pdf" in out

    def test_render_histogram(self):
        out = render_histogram([1, 2, 3], [5, 1, 3], title="H")
        assert out.startswith("H")
