"""Failure-injection tests: the workload on constrained file systems."""

import pytest

from repro.core import (
    FileSystemCreator,
    RealRunner,
    SessionGenerator,
    UsageLog,
    WorkloadGenerator,
    paper_user_type,
    paper_workload_spec,
)
from repro.distributions import RandomStreams
from repro.vfs import (
    MemoryFileSystem,
    NoSpaceError,
    NoSuchFileError,
    TooManyOpenFilesError,
)


class TestCapacityExhaustion:
    def test_fsc_surfaces_enospc(self):
        """Creating the initial FS on a tiny disk fails loudly, not quietly."""
        spec = paper_workload_spec(n_users=1, total_files=200, seed=1)
        tiny = MemoryFileSystem(capacity_bytes=10_000)
        with pytest.raises(NoSpaceError):
            FileSystemCreator(spec).create(tiny)

    def test_workload_surfaces_enospc_mid_run(self):
        """A disk that fills during the run propagates ENOSPC to the caller."""
        spec = paper_workload_spec(n_users=1, total_files=60, seed=1)
        generator = WorkloadGenerator(spec)
        # Enough room for the FSC build, little headroom for new files.
        fs = MemoryFileSystem()
        layout = generator.create_file_system(fs)
        fs.capacity_bytes = fs.bytes_used + 2_000
        runner = RealRunner(
            fs,
            SessionGenerator(
                generator.spec.user_types[0], layout,
                RandomStreams(1), user_id=0,
            ),
            UsageLog(),
        )
        with pytest.raises(NoSpaceError):
            runner.run_sessions(20)

    def test_descriptor_exhaustion(self):
        """An fd table smaller than max_open_files trips EMFILE."""
        spec = paper_workload_spec(n_users=1, total_files=60, seed=2)
        generator = WorkloadGenerator(spec)
        fs = MemoryFileSystem(max_open_files=2)
        layout = generator.create_file_system(fs)
        runner = RealRunner(
            fs,
            SessionGenerator(
                paper_user_type("t"), layout, RandomStreams(2), user_id=0,
            ),
            UsageLog(),
        )
        with pytest.raises(TooManyOpenFilesError):
            runner.run_sessions(20)


class TestEmptyAndDegenerateLayouts:
    def test_user_with_no_candidate_files_still_runs(self):
        """Categories with empty pools are skipped, not crashed on."""
        spec = paper_workload_spec(n_users=1, total_files=9, seed=3)
        generator = WorkloadGenerator(spec)
        result = generator.run_real(MemoryFileSystem(), sessions_per_user=3)
        assert len(result.log.sessions) == 3

    def test_single_file_system(self):
        spec = paper_workload_spec(n_users=1, total_files=1, seed=3)
        result = WorkloadGenerator(spec).run_real(
            MemoryFileSystem(), sessions_per_user=2
        )
        assert len(result.log.sessions) == 2

    def test_many_users_few_files(self):
        spec = paper_workload_spec(n_users=6, total_files=12, seed=4)
        result = WorkloadGenerator(spec).run_simulated(sessions_per_user=1)
        assert len(result.log.sessions) == 6

    def test_missing_file_raises_cleanly(self):
        """Deleting a layout file behind the USIM's back yields ENOENT."""
        spec = paper_workload_spec(n_users=1, total_files=100, seed=5)
        generator = WorkloadGenerator(spec)
        fs = MemoryFileSystem()
        layout = generator.create_file_system(fs)
        # Sabotage: remove every read-only user file.
        for record in layout.files:
            if record.category_key == "REG:USER:RDONLY":
                fs.unlink(record.path)
        runner = RealRunner(
            fs,
            SessionGenerator(
                paper_user_type("t"), layout, RandomStreams(5), user_id=0,
            ),
            UsageLog(),
        )
        with pytest.raises(NoSuchFileError):
            runner.run_sessions(10)


class TestSimulatedFailurePropagation:
    def test_store_error_propagates_through_des(self):
        """Server-side ENOENT surfaces from the simulated client stack."""
        from repro.nfs import FileServer, NetworkLink, NfsClient, SUN_NFS_TIMING
        from repro.sim import Engine
        from repro.vfs import OpenFlags

        engine = Engine()
        server = FileServer(engine, SUN_NFS_TIMING)
        client = NfsClient(engine, server,
                           NetworkLink(engine, SUN_NFS_TIMING.network))

        def workload():
            yield from client.open("/ghost", OpenFlags.RDONLY)

        engine.spawn(workload())
        with pytest.raises(NoSuchFileError):
            engine.run()
        # No resources may be leaked by the failed call.
        assert server.cpu.in_use == 0
