"""Unit tests for the User Simulator's session op-stream generation."""

import numpy as np
import pytest

from repro.core import (
    FileSystemCreator,
    PhaseModel,
    SessionGenerator,
    paper_user_type,
    paper_workload_spec,
)
from repro.distributions import RandomStreams
from repro.vfs import MemoryFileSystem


@pytest.fixture(scope="module")
def layout():
    spec = paper_workload_spec(n_users=2, total_files=200, seed=3)
    return FileSystemCreator(spec).create(MemoryFileSystem())


def make_generator(layout, user_id=0, think=5000.0, pattern="sequential",
                   phase_model=None, seed=3):
    return SessionGenerator(
        paper_user_type("t", think_time_mean_us=think),
        layout,
        RandomStreams(seed),
        user_id=user_id,
        access_pattern=pattern,
        phase_model=phase_model,
    )


def collect_ops(layout, sessions=3, **kwargs):
    generator = make_generator(layout, **kwargs)
    ops = []
    for sid in range(sessions):
        ops.append(list(generator.generate_session(sid)))
    return ops


class TestStreamConstraints:
    """The thesis's logical constraints on the independent op stream."""

    def test_open_precedes_data_ops(self, layout):
        for session in collect_ops(layout):
            open_plans = set()
            for op in session:
                if op.kind in ("open", "creat"):
                    assert op.plan_id not in open_plans
                    open_plans.add(op.plan_id)
                elif op.kind in ("read", "write", "lseek"):
                    assert op.plan_id in open_plans, (
                        f"{op.kind} before open (plan {op.plan_id})"
                    )
                elif op.kind == "close":
                    assert op.plan_id in open_plans
                    open_plans.remove(op.plan_id)
            assert not open_plans, "session left files open"

    def test_unlink_only_after_close(self, layout):
        for session in collect_ops(layout):
            closed_paths = set()
            open_paths = set()
            for op in session:
                if op.kind in ("open", "creat"):
                    open_paths.add(op.path)
                elif op.kind == "close":
                    closed_paths.add(op.path)
                    open_paths.discard(op.path)
                elif op.kind == "unlink":
                    assert op.path not in open_paths
                    assert op.path in closed_paths

    def test_max_open_files_respected(self, layout):
        user_type = paper_user_type("t")
        for session in collect_ops(layout):
            open_now = 0
            peak = 0
            for op in session:
                if op.kind in ("open", "creat"):
                    open_now += 1
                    peak = max(peak, open_now)
                elif op.kind == "close":
                    open_now -= 1
            assert peak <= user_type.max_open_files

    def test_think_follows_every_file_op(self, layout):
        for session in collect_ops(layout):
            for i, op in enumerate(session):
                if op.kind != "think" and i + 1 < len(session):
                    assert session[i + 1].kind == "think"

    def test_sequential_reads_do_not_exceed_file_size(self, layout):
        """Within a plan, bytes between rewinds never exceed the file size."""
        for session in collect_ops(layout):
            file_size = {}
            consumed = {}
            for op in session:
                if op.kind == "open":
                    file_size[op.plan_id] = op.size
                    consumed[op.plan_id] = 0
                elif op.kind == "lseek" and op.plan_id in consumed:
                    consumed[op.plan_id] = op.size
                elif op.kind in ("read", "write") and op.plan_id in file_size:
                    consumed[op.plan_id] += op.size
                    assert consumed[op.plan_id] <= file_size[op.plan_id]


class TestStreamContent:
    def test_rdonly_plans_never_write(self, layout):
        for session in collect_ops(layout, sessions=5):
            rdonly_plans = {
                op.plan_id
                for op in session
                if op.kind == "open" and op.category_key
                and op.category_key.endswith(":RDONLY")
                and op.category_key.startswith("REG")
            }
            for op in session:
                if op.kind == "write":
                    assert op.plan_id not in rdonly_plans

    def test_new_files_created_in_user_home(self, layout):
        for session in collect_ops(layout, sessions=5, user_id=1):
            for op in session:
                if op.kind == "creat":
                    assert op.path.startswith("/user01/")

    def test_temp_files_are_unlinked(self, layout):
        for session in collect_ops(layout, sessions=5):
            created_tmp = {op.path for op in session
                           if op.kind == "creat" and "/tmp-" in op.path}
            unlinked = {op.path for op in session if op.kind == "unlink"}
            assert created_tmp == unlinked

    def test_directory_plans_use_stat_and_listdir(self, layout):
        saw_listdir = False
        for session in collect_ops(layout, sessions=10):
            for op in session:
                if op.kind == "listdir":
                    saw_listdir = True
                    assert op.category_key.startswith("DIR")
        assert saw_listdir

    def test_zero_think_time_user(self, layout):
        for session in collect_ops(layout, think=0.0):
            for op in session:
                if op.kind == "think":
                    assert op.size == 0

    def test_think_times_roughly_exponential(self, layout):
        thinks = []
        for session in collect_ops(layout, sessions=10, think=5000.0):
            thinks.extend(op.size for op in session if op.kind == "think")
        assert len(thinks) > 100
        assert np.mean(thinks) == pytest.approx(5000.0, rel=0.25)

    def test_random_access_pattern_seeks(self, layout):
        sequential_seeks = sum(
            1
            for session in collect_ops(layout, sessions=3)
            for op in session
            if op.kind == "lseek"
        )
        random_seeks = sum(
            1
            for session in collect_ops(layout, sessions=3, pattern="random")
            for op in session
            if op.kind == "lseek"
        )
        # Random mode seeks before every chunk; sequential only on wrap.
        assert random_seeks > sequential_seeks

    def test_bad_access_pattern_rejected(self, layout):
        with pytest.raises(ValueError):
            make_generator(layout, pattern="zigzag")

    def test_deterministic_given_seed(self, layout):
        a = collect_ops(layout, sessions=2, seed=9)
        b = collect_ops(layout, sessions=2, seed=9)
        assert a == b

    def test_different_users_differ(self, layout):
        a = collect_ops(layout, sessions=1, user_id=0)
        b = collect_ops(layout, sessions=1, user_id=1)
        assert a != b


class TestPhaseModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseModel(cpu_multiplier=-1.0)
        with pytest.raises(ValueError):
            PhaseModel(p_enter_cpu=1.5)

    def test_cpu_phase_inflates_think_time(self):
        rng = np.random.default_rng(0)
        model = PhaseModel(cpu_multiplier=10.0, p_enter_cpu=1.0,
                           p_exit_cpu=0.0)
        assert model.multiplier(rng) == 10.0  # enters CPU immediately
        assert model.state == "cpu"

    def test_exit_returns_to_io(self):
        rng = np.random.default_rng(0)
        model = PhaseModel(cpu_multiplier=10.0, p_enter_cpu=1.0,
                           p_exit_cpu=1.0)
        model.multiplier(rng)          # io -> cpu
        assert model.multiplier(rng) == 1.0  # cpu -> io
        assert model.state == "io"

    def test_phase_model_raises_mean_think(self, layout):
        def mean_think(phase_model):
            generator = make_generator(layout, phase_model=phase_model)
            thinks = []
            for sid in range(10):
                thinks.extend(
                    op.size for op in generator.generate_session(sid)
                    if op.kind == "think"
                )
            return np.mean(thinks)

        plain = mean_think(None)
        phased = mean_think(PhaseModel(cpu_multiplier=20.0,
                                       p_enter_cpu=0.3, p_exit_cpu=0.3))
        assert phased > plain * 2
