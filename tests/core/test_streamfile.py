"""On-disk op-stream artifacts: format round trips, corruption, merge.

The format's contract has three legs, each tested here:

* **lossless**: any event stream — arbitrary paths (tabs, newlines,
  non-ASCII), int64 extremes, empty batches, think columns, sessions on
  exact chunk boundaries — reads back identical, at any chunk size
  (property-based, hypothesis);
* **loud**: any truncation or single-bit flip raises a clean
  :class:`StreamFormatError`, never garbage records (every frame is
  CRC-framed, the tail is cross-checked);
* **deterministic**: chunk boundaries depend only on the budget, so a
  replay into a same-budget sink reproduces the file byte for byte, and
  a k-way shard merge is bit-identical to the 1-shard artifact.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    OP_KIND_NAMES,
    OpBatch,
    OpRecord,
    SessionRecord,
    StreamFileSink,
    StreamFormatError,
    StreamReader,
    TeeSink,
    UsageLog,
    WorkloadGenerator,
    iter_batches,
    merge_stream_files,
    paper_workload_spec,
)
from repro.core.streamfile import (
    ROW_BYTES,
    StreamWriter,
    concat_batches,
    rows_per_chunk_for,
)
from repro.fleet.merge import ShardAccumulator

# ``think`` rows live in the optional think column, never in records.
RECORD_KINDS = tuple(k for k in OP_KIND_NAMES if k != "think")

INT64_MIN, INT64_MAX = -(2**63), 2**63 - 1

# Deliberately hostile strings: separator bytes, escapes, non-ASCII.
NASTY_TEXT = st.text(
    alphabet=st.sampled_from(
        list("abz/._-\\,\t\n\r") + ["é", "ß", "日", "🐍", " "]
    ),
    max_size=12,
)

op_records = st.builds(
    OpRecord,
    user_id=st.integers(min_value=0, max_value=INT64_MAX),
    user_type=NASTY_TEXT,
    session_id=st.integers(min_value=0, max_value=INT64_MAX),
    op=st.sampled_from(RECORD_KINDS),
    path=NASTY_TEXT,
    category_key=NASTY_TEXT,
    size=st.integers(min_value=INT64_MIN, max_value=INT64_MAX),
    start_us=st.floats(allow_nan=False, allow_infinity=False),
    response_us=st.floats(allow_nan=False, allow_infinity=False),
)

session_records = st.builds(
    SessionRecord,
    user_id=st.integers(min_value=0, max_value=INT64_MAX),
    user_type=NASTY_TEXT,
    session_id=st.integers(min_value=0, max_value=INT64_MAX),
    start_us=st.floats(allow_nan=False, allow_infinity=False),
    end_us=st.floats(allow_nan=False, allow_infinity=False),
    files_referenced=st.integers(min_value=0, max_value=INT64_MAX),
    bytes_accessed=st.integers(min_value=0, max_value=INT64_MAX),
    file_bytes_referenced=st.integers(min_value=0, max_value=INT64_MAX),
    # Empty category keys are dropped by the oplog line format itself.
    categories=st.lists(NASTY_TEXT.filter(lambda s: s),
                        max_size=3).map(tuple),
)


@st.composite
def op_batches(draw, max_rows=8):
    """An arbitrary OpBatch, sometimes empty, sometimes with think."""
    records = draw(st.lists(op_records, min_size=0, max_size=max_rows))
    batch = OpBatch.from_records(records)
    if draw(st.booleans()):
        batch.think_us = np.array(
            draw(st.lists(
                st.integers(min_value=INT64_MIN, max_value=INT64_MAX),
                min_size=len(records), max_size=len(records),
            )),
            dtype=np.int64,
        )
    return batch


@st.composite
def event_streams(draw):
    """An interleaving of batches and session summaries."""
    return draw(st.lists(
        st.one_of(op_batches(), session_records), min_size=0, max_size=6))


def write_events(path, events, rows_per_chunk, metadata=None):
    with StreamWriter(path, rows_per_chunk, metadata=metadata) as writer:
        for event in events:
            if isinstance(event, SessionRecord):
                writer.add_session(event)
            else:
                writer.add_batch(event)
    return path


def flatten_events(events):
    """(records, think-or-None, sessions-in-order) ground truth."""
    batches = [e for e in events if not isinstance(e, SessionRecord)]
    batches = [b for b in batches if len(b)]
    records = [r for b in batches for r in b.to_records()]
    think = None
    if batches and all(b.think_us is not None for b in batches):
        think = np.concatenate([b.think_us for b in batches])
    sessions = [e for e in events if isinstance(e, SessionRecord)]
    return records, think, sessions


def read_back(path):
    """(records, think-or-None, sessions) as the reader sees them."""
    with StreamReader(path) as reader:
        chunks = list(reader.iter_chunks())
    batches = [c.batch for c in chunks if len(c.batch)]
    records = [r for b in batches for r in b.to_records()]
    think = None
    if batches and all(b.think_us is not None for b in batches):
        think = np.concatenate([b.think_us for b in batches])
    sessions = [rec for c in chunks for _, rec in c.sessions]
    return records, think, sessions


class TestPropertyRoundTrip:
    """Leg one: arbitrary event streams survive the disk byte-exactly."""

    @given(events=event_streams(), rows_per_chunk=st.integers(1, 7))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_identical(self, tmp_path_factory, events,
                                  rows_per_chunk):
        path = str(tmp_path_factory.mktemp("rt") / "a.opstream")
        write_events(path, events, rows_per_chunk)
        want_records, want_think, want_sessions = flatten_events(events)
        got_records, got_think, got_sessions = read_back(path)
        assert got_records == want_records
        assert got_sessions == want_sessions
        if want_think is None:
            assert got_think is None
        else:
            assert got_think is not None
            assert np.array_equal(got_think, want_think)

    @given(events=event_streams())
    @settings(max_examples=25, deadline=None)
    def test_chunk_size_never_changes_content(self, tmp_path_factory,
                                              events):
        tmp = tmp_path_factory.mktemp("cs")
        views = []
        for rows_per_chunk in (1, 3, 1000):
            path = str(tmp / f"c{rows_per_chunk}.opstream")
            write_events(path, events, rows_per_chunk)
            views.append(read_back(path))
        for records, think, sessions in views[1:]:
            assert records == views[0][0]
            assert sessions == views[0][2]
            if views[0][1] is None:
                assert think is None
            else:
                assert np.array_equal(think, views[0][1])

    @given(events=event_streams(), rows_per_chunk=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_footer_counts_match(self, tmp_path_factory, events,
                                 rows_per_chunk):
        path = str(tmp_path_factory.mktemp("fc") / "a.opstream")
        write_events(path, events, rows_per_chunk)
        records, _, sessions = flatten_events(events)
        with StreamReader(path) as reader:
            assert reader.total_rows == len(records)
            assert reader.total_sessions == len(sessions)
            assert sum(c.rows for c in reader.chunk_index) == len(records)


def small_artifact(path, rows_per_chunk=3):
    """A fixed multi-chunk artifact with sessions for corruption tests."""
    records = [
        OpRecord(u, "heavy", s, op, f"/u{u}/f{i}", "user:rdonly",
                 64 * i, float(i), 1.5)
        for i, (u, s, op) in enumerate(
            (u, s, op)
            for u in (0, 1)
            for s in (0, 1)
            for op in ("open", "read", "write", "close")
        )
    ]
    sessions = [
        SessionRecord(u, "heavy", s, 0.0, 9.0, 2, 128, 256, ("user:rdonly",))
        for u in (0, 1) for s in (0, 1)
    ]
    with StreamWriter(path, rows_per_chunk) as writer:
        for u in (0, 1):
            for s in (0, 1):
                batch = OpBatch.from_records(
                    [r for r in records if r.user_id == u
                     and r.session_id == s])
                writer.add_batch(batch)
                writer.add_session(sessions[2 * u + s])
    return records, sessions


def consume_fully(path):
    """Open and decode everything (corrupt files must raise here)."""
    with StreamReader(path) as reader:
        sink = ShardAccumulator()
        reader.replay(sink)
        return sink.tally


class TestCorruptionIsLoud:
    """Leg two: damaged files raise StreamFormatError, never bad data."""

    def test_truncation_at_every_length(self, tmp_path):
        cut = tmp_path / "cut.opstream"
        small_artifact(str(cut))
        size = cut.stat().st_size
        fd = os.open(str(cut), os.O_WRONLY)
        try:
            # Every proper prefix must be rejected: shave the file down
            # in place (step keeps it fast but still crosses every
            # frame boundary).
            for n in range(size - 1, -1, -7):
                os.ftruncate(fd, n)
                with pytest.raises(StreamFormatError):
                    consume_fully(str(cut))
        finally:
            os.close(fd)

    def test_single_bit_flip_at_every_byte(self, tmp_path):
        flipped = tmp_path / "flip.opstream"
        # One full chunk plus a short tail chunk keeps the sweep fast
        # while still crossing every structural region (magic, version,
        # header, both frame kinds, footer, tail).
        small_artifact(str(flipped), rows_per_chunk=12)
        blob = flipped.read_bytes()
        fd = os.open(str(flipped), os.O_WRONLY)
        try:
            for n in range(len(blob)):
                # Alternate low/high bit: every byte is hit, both ends.
                bit = 0x01 if n % 2 == 0 else 0x80
                os.pwrite(fd, bytes([blob[n] ^ bit]), n)
                with pytest.raises(StreamFormatError):
                    consume_fully(str(flipped))
                os.pwrite(fd, blob[n:n + 1], n)
        finally:
            os.close(fd)

    def test_unclosed_writer_is_rejected(self, tmp_path):
        path = str(tmp_path / "open.opstream")
        writer = StreamWriter(path, 4)
        writer.add_batch(OpBatch.from_records(
            [OpRecord(0, "t", 0, "open", "/f", "", 0, 0.0, 1.0)]))
        writer._stream.flush()
        with pytest.raises(StreamFormatError, match="tail|footer"):
            StreamReader(path)
        writer.close()
        consume_fully(path)

    def test_missing_file_and_non_stream_file(self, tmp_path):
        with pytest.raises(StreamFormatError, match="cannot open"):
            StreamReader(str(tmp_path / "nope.opstream"))
        other = tmp_path / "other.bin"
        other.write_bytes(b"this is not an op stream, not even close....")
        with pytest.raises(StreamFormatError, match="magic"):
            StreamReader(str(other))


class TestSinkBudget:
    """StreamFileSink never buffers more than its memory budget."""

    def test_rows_per_chunk_matches_budget(self):
        assert rows_per_chunk_for(ROW_BYTES * 10) == 10
        assert rows_per_chunk_for(1) == 1  # floor, never zero
        assert rows_per_chunk_for(ROW_BYTES - 1) == 1

    def test_buffer_never_exceeds_budget(self, tmp_path):
        path = str(tmp_path / "budget.opstream")
        budget = ROW_BYTES * 8
        flushes = []
        with StreamFileSink(path, memory_budget_bytes=budget) as sink:
            assert sink.rows_per_chunk == 8
            inner = sink._writer._flush_chunk

            def counting_flush(take):
                flushes.append(take)
                inner(take)

            sink._writer._flush_chunk = counting_flush
            records, _ = small_artifact(str(tmp_path / "src.opstream"))
            for record in records:
                sink.record_op(record)
                # The budget bound: a full chunk awaiting its flush
                # trigger plus at most one scalar block in flight.
                assert (sink.buffered_rows
                        <= sink.rows_per_chunk + sink._scalar_block)
        # Every non-final flush is exactly one full chunk.
        assert all(take == 8 for take in flushes[:-1])
        assert sum(flushes) == len(records)

    def test_tiny_budget_one_row_chunks(self, tmp_path):
        src = str(tmp_path / "src.opstream")
        records, sessions = small_artifact(src)
        path = str(tmp_path / "tiny.opstream")
        with StreamFileSink(path, memory_budget_bytes=1) as sink:
            for record in records:
                sink.record_op(record)
            for record in sessions:
                sink.record_session(record)
        with StreamReader(path) as reader:
            assert reader.rows_per_chunk == 1
            assert reader.total_rows == len(records)
            got = [r for b in reader.iter_batches() for r in b.to_records()]
        assert got == records


class TestDeterminism:
    """Leg three: replay and merge reproduce artifacts byte for byte."""

    def run_spec(self, path, budget, user_ids=None):
        spec = paper_workload_spec(n_users=4, total_files=150, seed=23)
        with StreamFileSink(str(path), memory_budget_bytes=budget) as sink:
            WorkloadGenerator(spec).run_simulated(
                sessions_per_user=2, backend="fast-columnar", log=sink,
                user_ids=user_ids,
            )
        return path.read_bytes()

    @pytest.mark.parametrize("budget", [ROW_BYTES * 100, 1 << 20])
    def test_replay_reproduces_file(self, tmp_path, budget):
        original = self.run_spec(tmp_path / "a.opstream", budget)
        copy = tmp_path / "b.opstream"
        with StreamReader(str(tmp_path / "a.opstream")) as reader:
            with StreamFileSink(str(copy), memory_budget_bytes=budget) as s:
                reader.replay(s)
        assert copy.read_bytes() == original

    def test_replay_matches_in_ram_log(self, tmp_path):
        path = str(tmp_path / "a.opstream")
        spec = paper_workload_spec(n_users=3, total_files=150, seed=29)
        direct = UsageLog()
        with StreamFileSink(path, memory_budget_bytes=ROW_BYTES * 64) as s:
            WorkloadGenerator(spec).run_simulated(
                sessions_per_user=2, backend="fast-columnar",
                log=TeeSink(direct, s),
            )
        replayed = UsageLog()
        with StreamReader(path) as reader:
            reader.replay(replayed)
        assert replayed.operations == direct.operations
        assert replayed.sessions == direct.sessions

    @pytest.mark.parametrize("shards", [2, 3])
    def test_merge_bit_identical_to_single_shard(self, tmp_path, shards):
        budget = ROW_BYTES * 100
        whole = self.run_spec(tmp_path / "whole.opstream", budget)
        paths = []
        for shard in range(shards):
            path = tmp_path / f"s{shard}.opstream"
            self.run_spec(path, budget,
                          user_ids=[u for u in range(4)
                                    if u % shards == shard])
            paths.append(str(path))
        merged = tmp_path / "merged.opstream"
        # Shard order must not matter: feed them reversed.
        merge_stream_files(str(merged), list(reversed(paths)))
        assert merged.read_bytes() == whole

    def test_merge_rejects_overlapping_users(self, tmp_path):
        budget = ROW_BYTES * 100
        a = tmp_path / "a.opstream"
        b = tmp_path / "b.opstream"
        self.run_spec(a, budget, user_ids=[0, 1])
        self.run_spec(b, budget, user_ids=[1, 2])
        out = str(tmp_path / "bad.opstream")
        with pytest.raises(StreamFormatError, match="disjoint"):
            merge_stream_files(out, [str(a), str(b)])
        assert not os.path.exists(out)  # no half-written artifact

    def test_merge_rejects_interleaved_users(self, tmp_path):
        # A DES-style artifact interleaves users on the shared clock;
        # the merge must refuse it loudly rather than mis-chunk.
        path = str(tmp_path / "des.opstream")
        with StreamWriter(path, 4) as writer:
            for user in (0, 1, 0):
                writer.add_batch(OpBatch.from_records([
                    OpRecord(user, "t", 0, "read", "/f", "", 8, 1.0, 1.0),
                ]))
        out = str(tmp_path / "bad.opstream")
        with pytest.raises(StreamFormatError, match="user-contiguous"):
            merge_stream_files(out, [path])
        assert not os.path.exists(out)

    def test_merge_rejects_mismatched_budgets(self, tmp_path):
        a = tmp_path / "a.opstream"
        b = tmp_path / "b.opstream"
        self.run_spec(a, ROW_BYTES * 100, user_ids=[0])
        self.run_spec(b, ROW_BYTES * 200, user_ids=[1])
        with pytest.raises(StreamFormatError, match="budget"):
            merge_stream_files(str(tmp_path / "bad.opstream"),
                               [str(a), str(b)])


class TestReaderSlicing:
    """The footer index slices by user and time without full scans."""

    @pytest.fixture()
    def artifact(self, tmp_path):
        path = str(tmp_path / "a.opstream")
        spec = paper_workload_spec(n_users=4, total_files=150, seed=31)
        with StreamFileSink(path, memory_budget_bytes=ROW_BYTES * 50) as s:
            WorkloadGenerator(spec).run_simulated(
                sessions_per_user=1, backend="fast-columnar", log=s)
        return path

    def test_user_filter_matches_mask(self, artifact):
        everything = concat_batches(list(iter_batches(artifact)))
        for users in ([0], [1, 3], [99]):
            got = sum(len(b) for b in iter_batches(artifact, users=users))
            want = int(np.isin(everything.user_ids,
                               np.array(users)).sum())
            assert got == want

    def test_time_window_matches_mask(self, artifact):
        everything = concat_batches(list(iter_batches(artifact)))
        hi = float(np.quantile(everything.start_us, 0.4))
        got = sum(len(b)
                  for b in iter_batches(artifact, time_range=(0.0, hi)))
        want = int(((everything.start_us >= 0.0)
                    & (everything.start_us < hi)).sum())
        assert 0 < got == want

    def test_index_skips_chunks(self, artifact):
        with StreamReader(artifact) as reader:
            assert len(reader.chunk_index) > 1
            last_user_chunks = [
                c for c in reader.chunk_index if c.rows and c.user_hi >= 3
            ]
            visited = list(reader.iter_chunks(users=[3]))
            assert len(visited) == len(last_user_chunks)
            assert len(visited) < len(reader.chunk_index)


class TestEmptyBatches:
    """Degenerate containers stay well-typed end to end."""

    def test_from_records_empty_round_trip(self, tmp_path):
        batch = OpBatch.from_records([])
        assert len(batch) == 0
        assert batch.to_records() == []
        assert batch.kinds.dtype == np.int8
        assert batch.user_ids.dtype == np.int64
        path = str(tmp_path / "empty.opstream")
        with StreamWriter(path, 4) as writer:
            writer.add_batch(batch)
        with StreamReader(path) as reader:
            assert reader.total_rows == 0
            assert list(reader.iter_batches()) == []

    def test_concat_batches_empty_inputs(self):
        assert len(concat_batches([])) == 0
        assert len(concat_batches([OpBatch.from_records([])])) == 0

    def test_empty_record_batch_accepted_by_every_sink(self, tmp_path):
        empty = OpBatch.from_records([])
        log = UsageLog()
        tally = ShardAccumulator()
        path = str(tmp_path / "a.opstream")
        with StreamFileSink(path, memory_budget_bytes=1 << 16) as sink:
            for target in (log, tally, sink, TeeSink(log, tally, sink)):
                target.record_batch(empty)
        assert log.operations == []
        assert tally.tally.operations == 0
        with StreamReader(path) as reader:
            assert reader.total_rows == 0

    @pytest.mark.parametrize("backend", ["fast", "fast-columnar", "nfs"])
    def test_time_limit_zero_yields_empty_artifact(self, tmp_path, backend):
        # time_limit_us=0 truncates every session before its first op;
        # all three backends must produce a clean, empty artifact.
        spec = paper_workload_spec(n_users=2, total_files=100, seed=5)
        path = tmp_path / "zero.opstream"
        direct = UsageLog()
        with StreamFileSink(str(path), memory_budget_bytes=1 << 16) as sink:
            WorkloadGenerator(spec).run_simulated(
                sessions_per_user=1, backend=backend,
                log=TeeSink(direct, sink), time_limit_us=0,
            )
        assert direct.operations == []
        assert direct.sessions == []
        with StreamReader(str(path)) as reader:
            assert reader.total_rows == 0
            assert reader.total_sessions == 0
            assert list(reader.iter_batches()) == []


class _CountingBatchSink(UsageLog):
    """Batch-aware sink that counts how the rows arrived."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def record_batch(self, batch):
        self.batches.append(batch)
        super().record_batch(batch)


class _ScalarOnlySink:
    """No ``record_batch`` at all — must be fed through the bridge."""

    def __init__(self):
        self.ops = []
        self.sessions = []

    def record_op(self, record):
        self.ops.append(record)

    def record_session(self, record):
        self.sessions.append(record)


class _ConversionCountingBatch:
    """OpBatch stand-in that counts ``to_records`` conversions."""

    def __init__(self, batch):
        self._batch = batch
        self.conversions = 0

    def __len__(self):
        return len(self._batch)

    def to_records(self):
        self.conversions += 1
        return self._batch.to_records()


class TestTeeSinkBatchPath:
    def _batch(self, n=5):
        records = [
            OpRecord(user_id=1, user_type="t", session_id=0, op="read",
                     path=f"/f{i}", category_key="c", size=10 * i,
                     start_us=float(i), response_us=1.0)
            for i in range(n)
        ]
        return OpBatch.from_records(records)

    def test_batch_aware_sinks_receive_the_batch_object(self):
        a, b = _CountingBatchSink(), _CountingBatchSink()
        batch = self._batch()
        TeeSink(a, b).record_batch(batch)
        assert a.batches == [batch] and b.batches == [batch]
        assert a.operations == batch.to_records()

    def test_scalar_only_sink_gets_bridged_rows(self):
        batch_aware, scalar = _CountingBatchSink(), _ScalarOnlySink()
        batch = self._batch()
        TeeSink(batch_aware, scalar).record_batch(batch)
        assert batch_aware.batches == [batch]
        assert scalar.ops == batch.to_records()

    def test_bridge_converts_once_for_many_scalar_sinks(self):
        scalars = [_ScalarOnlySink() for _ in range(3)]
        batch = _ConversionCountingBatch(self._batch())
        TeeSink(*scalars).record_batch(batch)
        assert batch.conversions == 1
        expected = batch.to_records()
        for sink in scalars:
            assert sink.ops == expected

    def test_all_batch_aware_never_converts(self):
        class BatchOnly:
            def __init__(self):
                self.batches = []

            def record_batch(self, batch):
                self.batches.append(batch)

        sinks = [BatchOnly(), BatchOnly()]
        batch = _ConversionCountingBatch(self._batch())
        TeeSink(*sinks).record_batch(batch)
        assert batch.conversions == 0
        assert all(s.batches == [batch] for s in sinks)

    def test_sessions_fan_out_to_every_sink(self):
        a, b = _CountingBatchSink(), _ScalarOnlySink()
        session = SessionRecord(
            user_id=1, user_type="t", session_id=0, start_us=0.0,
            end_us=5.0, files_referenced=1, bytes_accessed=10,
            file_bytes_referenced=10, categories=("c",))
        TeeSink(a, b).record_session(session)
        assert a.sessions == [session]
        assert b.sessions == [session]

    def test_scalar_ops_fan_out_to_every_sink(self):
        a, b = _ScalarOnlySink(), _CountingBatchSink()
        record = self._batch(1).to_records()[0]
        TeeSink(a, b).record_op(record)
        assert a.ops == [record] and b.operations == [record]
