"""Integration tests: the full GDS → FSC → USIM pipeline (Figure 4.1)."""

import numpy as np
import pytest

from repro.core import (
    UsageLog,
    WorkloadGenerator,
    paper_workload_spec,
)
from repro.vfs import MemoryFileSystem


@pytest.fixture(scope="module")
def small_run():
    spec = paper_workload_spec(n_users=2, total_files=120, seed=5)
    return WorkloadGenerator(spec).run_simulated(sessions_per_user=3)


class TestSimulatedPipeline:
    def test_sessions_logged(self, small_run):
        assert len(small_run.log.sessions) == 2 * 3

    def test_operations_logged(self, small_run):
        assert len(small_run.log.operations) > 100

    def test_every_op_has_nonnegative_response(self, small_run):
        assert all(op.response_us >= 0 for op in small_run.log.operations)

    def test_simulated_time_advanced(self, small_run):
        assert small_run.simulated_duration_us > 0

    def test_reproducible_given_seed(self):
        def run():
            spec = paper_workload_spec(n_users=2, total_files=100, seed=9)
            return WorkloadGenerator(spec).run_simulated(sessions_per_user=2)

        a, b = run(), run()
        assert len(a.log.operations) == len(b.log.operations)
        assert a.simulated_duration_us == b.simulated_duration_us
        assert [o.response_us for o in a.log.operations] == [
            o.response_us for o in b.log.operations
        ]

    def test_different_seeds_differ(self):
        def run(seed):
            spec = paper_workload_spec(n_users=1, total_files=100, seed=seed)
            return WorkloadGenerator(spec).run_simulated(sessions_per_user=2)

        assert (run(1).simulated_duration_us
                != run(2).simulated_duration_us)

    def test_backends(self):
        spec = paper_workload_spec(n_users=1, total_files=80, seed=4)
        durations = {}
        for backend in ("nfs", "local", "afs"):
            result = WorkloadGenerator(spec).run_simulated(
                sessions_per_user=2, backend=backend
            )
            durations[backend] = result.simulated_duration_us
            assert result.backend == backend
            assert result.log.operations
        # The local disk must beat remote NFS on the same workload.
        assert durations["local"] < durations["nfs"]

    def test_bad_backend_rejected(self):
        spec = paper_workload_spec(n_users=1, total_files=50, seed=4)
        with pytest.raises(ValueError):
            WorkloadGenerator(spec).build_simulation(backend="zfs")

    def test_bad_session_count_rejected(self, small_run):
        spec = paper_workload_spec(n_users=1, total_files=50, seed=4)
        with pytest.raises(ValueError):
            WorkloadGenerator(spec).run_simulated(sessions_per_user=0)

    def test_memory_report_counts_all_tables(self):
        spec = paper_workload_spec(n_users=1, total_files=50, seed=4)
        gen = WorkloadGenerator(spec, table_points=65)
        report = gen.memory_report()
        # 9 file-size + per type: think + access-size + 3 x 9 usage = 29.
        assert len(report) == 9 + 29 + 1  # + TOTAL

    def test_log_roundtrips_through_text(self, small_run):
        restored = UsageLog.loads(small_run.log.dumps())
        assert len(restored.operations) == len(small_run.log.operations)


class TestRealPipeline:
    def test_run_real_on_memfs(self):
        spec = paper_workload_spec(n_users=2, total_files=100, seed=6)
        result = WorkloadGenerator(spec).run_real(
            MemoryFileSystem(), sessions_per_user=2
        )
        assert len(result.log.sessions) == 4
        assert all(op.response_us >= 0 for op in result.log.operations)
        assert result.backend == "real"

    def test_run_real_on_tmpdir(self, tmp_path):
        spec = paper_workload_spec(n_users=1, total_files=60, seed=6)
        result = WorkloadGenerator(spec).run_real(
            str(tmp_path / "w"), sessions_per_user=1
        )
        assert result.log.sessions
        # Real wall-clock responses are strictly positive.
        assert all(op.response_us > 0 for op in result.log.operations)

    def test_real_and_simulated_streams_have_same_op_counts(self):
        """The op stream is execution-independent: same seed, same calls."""
        spec = paper_workload_spec(n_users=1, total_files=100, seed=13)
        sim = WorkloadGenerator(spec).run_simulated(sessions_per_user=2)
        real = WorkloadGenerator(spec).run_real(
            MemoryFileSystem(), sessions_per_user=2
        )
        sim_ops = [(o.op, o.path) for o in sim.log.operations]
        real_ops = [(o.op, o.path) for o in real.log.operations]
        assert sim_ops == real_ops


class TestAnalyzerOnRuns:
    @pytest.fixture(scope="class")
    def run(self):
        spec = paper_workload_spec(n_users=2, total_files=200, seed=21)
        return WorkloadGenerator(spec).run_simulated(sessions_per_user=10)

    def test_session_measures_sane(self, run):
        measures = run.analyzer.session_measures()
        assert measures.n_sessions == 20
        assert np.all(measures.access_per_byte >= 0)
        assert np.all(measures.files_referenced >= 0)
        # Most sessions reference at least one file.
        assert np.median(measures.files_referenced) >= 1

    def test_access_per_byte_in_paper_range(self, run):
        """Figure 5.3's x axis spans ~0-7; session averages should too."""
        measures = run.analyzer.session_measures()
        positive = measures.access_per_byte[measures.access_per_byte > 0]
        assert positive.size > 0
        assert np.median(positive) < 7.0

    def test_histograms_capture_sessions(self, run):
        hist = run.analyzer.histogram_access_per_byte()
        assert hist.total + hist.overflow + hist.underflow == 20

    def test_render_measure_figures(self, run):
        for which in ("access_per_byte", "file_size", "files_referenced"):
            out = run.analyzer.render_measure_figure(which)
            assert "before smoothing" in out
            assert "after smoothing" in out
        with pytest.raises(ValueError):
            run.analyzer.render_measure_figure("bogus")

    def test_access_size_stats_near_1024(self, run):
        stats = run.analyzer.access_size_stats()
        # Exponential(1024) truncated by file sizes: mean somewhat below.
        assert 500 < stats.mean < 1300

    def test_response_time_stats_positive(self, run):
        stats = run.analyzer.response_time_stats()
        assert stats.mean > 0
        assert stats.count == len(run.log.operations)

    def test_response_per_byte_sane(self, run):
        rpb = run.analyzer.response_per_byte()
        assert 0.5 < rpb < 20.0

    def test_characterization_covers_major_categories(self, run):
        rows = {c.category_key: c for c in run.analyzer.characterization()}
        # REG:USER:RDONLY is accessed by 100% of users in Table 5.2.
        assert "REG:USER:RDONLY" in rows
        assert rows["REG:USER:RDONLY"].percent_of_users > 80.0

    def test_characterization_respects_table_5_2_shape(self):
        """With many sessions the re-derived table approaches the input."""
        spec = paper_workload_spec(n_users=2, total_files=400, seed=31)
        result = WorkloadGenerator(spec).run_simulated(sessions_per_user=40)
        rows = {c.category_key: c
                for c in result.analyzer.characterization()}
        notes = rows.get("REG:NOTES:RDONLY")
        assert notes is not None
        # Table 5.2: 53% of users, ~0.75 accesses/byte.  Allow generous
        # sampling slack: 80 sessions is still a small sample.
        assert 30.0 < notes.percent_of_users < 75.0
        assert 0.3 < notes.mean_accesses_per_byte < 1.5
