"""Golden scalar-vs-columnar equivalence, across the whole scenario space.

The columnar pipeline's contract is *representation change only*: for any
workload, `generate_session_batch` must emit the byte-identical op stream
that `generate_session` yields, and the `fast-columnar` backend must
record the bit-identical operation records, session summaries and fleet
tallies that the scalar `fast` backend records — including under
`time_limit_us` truncation, for both access patterns, and with the phase
model on or off.  These tests are the determinism floor the benchmark's
identity check re-asserts before timing anything.
"""

import pytest

from repro.core import (
    PhaseModel,
    StreamReader,
    WorkloadGenerator,
    paper_workload_spec,
)
from repro.fleet import FleetConfig, run_fleet
from repro.fleet.merge import ShardAccumulator
from repro.scenarios import get_scenario, scenario_names
from repro.vfs import MemoryFileSystem

SPEC = paper_workload_spec(n_users=3, total_files=150, seed=11)


def synthesizers(spec, access_pattern="sequential", phases=False):
    """Two stream-aligned generator sets for one spec (scalar/columnar
    paths consume the same per-user streams, so each side needs its own
    fresh ``WorkloadGenerator``)."""
    out = []
    for _ in range(2):
        generator = WorkloadGenerator(spec)
        layout = generator.create_file_system(
            MemoryFileSystem(), materialize_users=set(),
            materialize_shared=False,
        )
        assignment, selected = generator.plan_users()
        out.append(generator.synthesize_users(
            layout, selected, assignment,
            access_pattern=access_pattern,
            phase_model_factory=PhaseModel if phases else None,
        ))
    return out


def assert_streams_identical(spec, access_pattern, phases, sessions=2):
    scalar_users, columnar_users = synthesizers(spec, access_pattern, phases)
    compared = 0
    for scalar_gen, columnar_gen in zip(scalar_users, columnar_users):
        for session_id in range(sessions):
            scalar = list(scalar_gen.generate_session(session_id))
            batch = columnar_gen.generate_session_batch(session_id)
            columnar = list(batch.iter_session_ops())
            assert scalar == columnar
            compared += len(scalar)
    assert compared > 0


class TestSessionStreamsAcrossScenarios:
    """Every registered scenario: scalar and columnar synthesis agree."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_scenario_streams_identical(self, name):
        scenario = get_scenario(name)
        spec = scenario.build(4, 13)
        assert_streams_identical(
            spec, scenario.access_pattern, scenario.use_phase_model,
            sessions=1,
        )


class TestSessionStreamsMatrix:
    """Paper spec × access pattern × phase model."""

    @pytest.mark.parametrize("access_pattern", ["sequential", "random"])
    @pytest.mark.parametrize("phases", [False, True])
    def test_streams_identical(self, access_pattern, phases):
        assert_streams_identical(SPEC, access_pattern, phases)


class TestBackendRecordsMatrix:
    """fast vs fast-columnar: bit-identical records, timing included."""

    def run(self, backend, **kwargs):
        return WorkloadGenerator(SPEC).run_simulated(
            sessions_per_user=2, backend=backend, **kwargs
        )

    @pytest.mark.parametrize("kwargs", [
        {},
        {"access_pattern": "random"},
        {"phase_model_factory": PhaseModel},
        {"access_pattern": "random", "phase_model_factory": PhaseModel},
    ])
    def test_records_identical(self, kwargs):
        scalar = self.run("fast", **kwargs)
        columnar = self.run("fast-columnar", **kwargs)
        assert scalar.log.operations == columnar.log.operations
        assert scalar.log.sessions == columnar.log.sessions
        assert (scalar.simulated_duration_us
                == columnar.simulated_duration_us)

    def test_truncation_identical(self):
        full = self.run("fast")
        limit = full.simulated_duration_us / 4
        scalar = self.run("fast", time_limit_us=limit)
        columnar = self.run("fast-columnar", time_limit_us=limit)
        assert scalar.log.operations == columnar.log.operations
        assert scalar.log.sessions == columnar.log.sessions
        assert (scalar.simulated_duration_us
                == columnar.simulated_duration_us)
        assert len(columnar.log.operations) < len(full.log.operations)

    def test_matches_des_content(self):
        sim = self.run("nfs")
        columnar = self.run("fast-columnar")

        def by_user(log):
            out = {}
            for op in log.operations:
                out.setdefault(op.user_id, []).append(
                    (op.session_id, op.op, op.path, op.category_key, op.size)
                )
            return out

        assert by_user(sim.log) == by_user(columnar.log)


class TestFleetTallies:
    """The fleet aggregate is bit-for-bit backend- and shard-invariant."""

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_columnar_tally_equals_scalar(self, shards):
        scalar = run_fleet(FleetConfig(
            scenario="mixed-campus", users=12, shards=shards, workers=1,
            seed=5, backend="fast",
        ))
        columnar = run_fleet(FleetConfig(
            scenario="mixed-campus", users=12, shards=shards, workers=1,
            seed=5, backend="fast-columnar",
        ))
        assert scalar.tally == columnar.tally
        assert scalar.aggregate_kv() == columnar.aggregate_kv()

    @pytest.mark.parametrize("name", scenario_names())
    def test_scenario_tallies_match(self, name):
        runs = [
            run_fleet(FleetConfig(scenario=name, users=4, shards=1,
                                  workers=1, seed=3, backend=backend))
            for backend in ("fast", "fast-columnar")
        ]
        assert runs[0].tally == runs[1].tally
        assert runs[0].tally.operations > 0


class TestStreamArtifactsAcrossScenarios:
    """Every scenario's on-disk op stream equals its in-RAM stream."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_artifact_replays_to_run_tally(self, name, tmp_path):
        path = tmp_path / "run.opstream"
        result = run_fleet(FleetConfig(
            scenario=name, users=4, shards=1, workers=1, seed=3,
            backend="fast-columnar", out_stream=str(path),
        ))
        replayed = ShardAccumulator()
        with StreamReader(str(path)) as reader:
            rows, sessions = reader.replay(replayed)
        assert replayed.tally == result.tally
        assert rows == result.tally.operations > 0
        assert sessions == result.tally.sessions

    @pytest.mark.parametrize("name", scenario_names())
    def test_merged_shards_bit_identical(self, name, tmp_path):
        blobs = []
        for shards in (1, 2):
            path = tmp_path / f"s{shards}.opstream"
            run_fleet(FleetConfig(
                scenario=name, users=4, shards=shards, workers=1, seed=3,
                backend="fast-columnar", out_stream=str(path),
            ))
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]
