"""Execution backends: cross-backend stream identity, the analytic
service model, time limits, and pathological-draw clamping."""

import dataclasses
import math

import numpy as np
import pytest

from repro.core import (
    AnalyticServiceModel,
    FastReplayBackend,
    FileSystemCreator,
    PhaseModel,
    RUN_BACKENDS,
    SessionGenerator,
    UsageLog,
    UserSessions,
    WorkloadGenerator,
    paper_user_type,
    paper_workload_spec,
)
from repro.distributions import Distribution, RandomStreams
from repro.vfs import MemoryFileSystem

SPEC = paper_workload_spec(n_users=3, total_files=200, seed=21)


def content_ops(log: UsageLog):
    """The timing-free projection of an op log (what must match)."""
    return [
        (o.user_id, o.user_type, o.session_id, o.op, o.path, o.category_key,
         o.size)
        for o in log.operations
    ]


def content_sessions(log: UsageLog):
    return [
        (s.user_id, s.user_type, s.session_id, s.files_referenced,
         s.bytes_accessed, s.file_bytes_referenced, s.categories)
        for s in log.sessions
    ]


def run(backend, **kwargs):
    return WorkloadGenerator(SPEC).run_simulated(
        sessions_per_user=2, backend=backend, **kwargs
    )


class TestCrossBackendDeterminism:
    def test_fast_matches_des_stream_exactly(self):
        sim = run("nfs")
        fast = run("fast")
        # Same multiset overall, and the same in-order stream per user
        # (the DES interleaves users on the engine clock; the fast path
        # runs them one after another).
        assert sorted(content_ops(sim.log)) == sorted(content_ops(fast.log))
        for user_id in range(SPEC.n_users):
            assert (
                [op for op in content_ops(sim.log) if op[0] == user_id]
                == [op for op in content_ops(fast.log) if op[0] == user_id]
            )
        assert sorted(content_sessions(sim.log)) == sorted(
            content_sessions(fast.log)
        )

    def test_fast_matches_des_with_random_access_and_phases(self):
        sim = run("nfs", access_pattern="random",
                  phase_model_factory=PhaseModel)
        fast = run("fast", access_pattern="random",
                   phase_model_factory=PhaseModel)
        assert sorted(content_ops(sim.log)) == sorted(content_ops(fast.log))

    def test_fast_is_deterministic(self):
        assert content_ops(run("fast").log) == content_ops(run("fast").log)

    def test_only_timing_differs(self):
        sim = run("nfs")
        fast = run("fast")
        sim_times = {
            (o.user_id, o.session_id, o.op, o.path): o.response_us
            for o in sim.log.operations
        }
        diffs = sum(
            1
            for o in fast.log.operations
            if sim_times.get((o.user_id, o.session_id, o.op, o.path))
            != o.response_us
        )
        assert diffs > 0  # timings come from different models

    def test_fast_run_result_shape(self):
        result = run("fast")
        assert result.backend == "fast"
        assert result.handle is None
        assert result.simulated_duration_us > 0
        # The analyzer consumes a fast run's log like any other.
        assert result.analyzer.response_time_stats().count > 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run("warp")
        assert "fast" in RUN_BACKENDS


class TestStagedPipeline:
    def test_plan_users_validates_ids(self):
        generator = WorkloadGenerator(SPEC)
        with pytest.raises(ValueError):
            generator.plan_users([0, 99])
        assignment, selected = generator.plan_users([2, 0])
        assert selected == [0, 2]
        assert len(assignment) == SPEC.n_users

    def test_synthesis_needs_no_executor(self):
        generator = WorkloadGenerator(SPEC)
        layout = generator.create_file_system(
            MemoryFileSystem(), materialize_users=set()
        )
        _, selected = generator.plan_users()
        users = generator.synthesize_users(layout, selected)
        ops = [op for op in users[0].generate_session(0)]
        assert any(op.kind != "think" for op in ops)

    def test_fleet_shard_invariance_on_fast_backend(self):
        from repro.fleet import FleetConfig, run_fleet

        single = run_fleet(FleetConfig(spec=SPEC, shards=1, backend="fast"))
        sharded = run_fleet(FleetConfig(spec=SPEC, shards=3, backend="fast"))
        assert single.aggregate_kv() == sharded.aggregate_kv()


class TestAnalyticServiceModel:
    def test_costs_are_positive_and_deterministic(self):
        model = AnalyticServiceModel()
        for kind in ("open", "creat", "read", "write", "lseek", "close",
                     "unlink", "stat", "listdir"):
            cost = model.response_us(kind, 4096)
            assert cost > 0
            assert cost == model.response_us(kind, 4096)

    def test_local_ops_cost_less_than_rpcs(self):
        model = AnalyticServiceModel()
        assert model.response_us("lseek") < model.response_us("stat")

    def test_data_cost_grows_with_bytes_and_pages(self):
        model = AnalyticServiceModel()
        small = model.response_us("read", 1024)
        one_page = model.response_us("read", model.page_bytes)
        two_pages = model.response_us("read", model.page_bytes + 1)
        assert small < one_page < two_pages
        # The page split charges a whole extra RPC round trip.
        assert two_pages - one_page >= model.per_rpc_us

    def test_time_limit_truncates_fast_runs(self):
        full = run("fast")
        limit = full.simulated_duration_us / 4
        cut = run("fast", time_limit_us=limit)
        assert cut.simulated_duration_us <= limit
        assert len(cut.log.operations) < len(full.log.operations)
        assert all(o.start_us < limit for o in cut.log.operations)
        # A session summary is only recorded if it completed within the
        # limit (the DES drops interrupted sessions the same way).
        assert all(s.end_us <= limit for s in cut.log.sessions)

    def test_time_limit_truncates_des_runs(self):
        # Regression: the DES used to raise SimulationError past the
        # limit instead of truncating like the engine-free backends.
        full = run("nfs")
        limit = full.simulated_duration_us / 4
        cut = run("nfs", time_limit_us=limit)
        assert cut.simulated_duration_us <= limit
        assert len(cut.log.operations) < len(full.log.operations)
        assert all(o.start_us < limit for o in cut.log.operations)
        assert all(s.end_us <= limit for s in cut.log.sessions)

    @pytest.mark.parametrize("which", ["op-start", "session-end"])
    def test_exact_boundary_limit_is_exclusive_across_backends(self, which):
        # The pinned rule: an op starting exactly at the limit is
        # excluded — `start >= limit` drops the op — and fast vs
        # fast-columnar stay bit-identical at that exact boundary.
        full = run("fast")
        if which == "op-start":
            limit = full.log.operations[len(full.log.operations) // 2].start_us
        else:
            limit = full.log.sessions[0].end_us
        assert limit > 0.0
        scalar = run("fast", time_limit_us=limit)
        columnar = run("fast-columnar", time_limit_us=limit)
        assert scalar.log.operations == columnar.log.operations
        assert scalar.log.sessions == columnar.log.sessions
        assert scalar.simulated_duration_us == columnar.simulated_duration_us
        for result in (scalar, columnar):
            assert all(o.start_us < limit for o in result.log.operations)
            assert not any(o.start_us == limit for o in result.log.operations)
        # the DES applies the same exclusive-boundary rule to its own clock
        des = run("nfs", time_limit_us=limit)
        assert all(o.start_us < limit for o in des.log.operations)


class _ScriptedDistribution(Distribution):
    """Cycles through a fixed list of values (NaN/negatives included)."""

    def __init__(self, values):
        self._values = np.asarray(values, dtype=float)

    def pdf(self, x):
        return np.zeros_like(np.asarray(x, dtype=float))

    def cdf(self, x):
        return np.zeros_like(np.asarray(x, dtype=float))

    def mean(self):
        return 0.0

    def var(self):
        return 0.0

    def sample(self, rng, size=None):
        if size is None:
            return float(self._values[0])
        return np.resize(self._values, int(size))

    def support(self):
        return 0.0, 1.0


class TestPathologicalDrawClamping:
    """Satellite fix: NaN/negative draws from fitted distributions must be
    clamped at synthesis instead of exploding in an executor."""

    @pytest.fixture(scope="class")
    def layout(self):
        spec = paper_workload_spec(n_users=1, total_files=120, seed=5)
        return FileSystemCreator(spec).create(MemoryFileSystem())

    def _generate(self, layout, **overrides):
        user_type = dataclasses.replace(
            paper_user_type("t", think_time_mean_us=1000.0), **overrides
        )
        generator = SessionGenerator(
            user_type, layout, RandomStreams(9), user_id=0
        )
        return list(generator.generate_session(0))

    def test_nan_and_negative_think_become_zero(self, layout):
        ops = self._generate(
            layout,
            think_time=_ScriptedDistribution([float("nan"), -500.0, 2000.0]),
        )
        thinks = [op.size for op in ops if op.kind == "think"]
        assert thinks, "session generated no ops"
        assert all(t >= 0 for t in thinks)
        assert all(isinstance(t, int) for t in thinks)

    def test_nan_chunks_fall_back_to_one_byte(self, layout):
        ops = self._generate(
            layout, access_size=_ScriptedDistribution([float("nan")])
        )
        data = [op for op in ops if op.kind in ("read", "write")]
        assert data, "session generated no data ops"
        assert all(op.size == 1 for op in data)

    def test_inf_think_becomes_zero(self, layout):
        ops = self._generate(
            layout, think_time=_ScriptedDistribution([float("inf")])
        )
        assert all(op.size == 0 for op in ops if op.kind == "think")

    def test_clamped_stream_survives_execution(self, layout):
        """A pathological user type must run end to end on the fast path."""
        user_type = dataclasses.replace(
            paper_user_type("t"),
            think_time=_ScriptedDistribution([float("nan"), -1.0]),
            access_size=_ScriptedDistribution([float("nan"), 512.0]),
        )
        generator = SessionGenerator(
            user_type, layout, RandomStreams(9), user_id=0
        )
        log = UsageLog()
        duration = FastReplayBackend().execute(
            [UserSessions(generator, 2)], log
        )
        assert math.isfinite(duration) and duration > 0
        assert log.sessions and log.operations
