"""Temporal load model: profiles, schedules, determinism, serialisation."""

import numpy as np
import pytest

from repro.core import (
    DAY_US,
    DEFAULT_ARRIVALS,
    HOUR_US,
    ArrivalError,
    ArrivalModel,
    LoadProfile,
    SessionSchedule,
    arrival_model_from_jsonable,
    arrival_model_to_jsonable,
    dumps_spec,
    get_profile,
    paper_workload_spec,
    profile_names,
    spec_arrivals,
)
from repro.distributions import Constant, RandomStreams, ShiftedExponential
import json


class TestLoadProfile:
    def test_uniform_warp_is_identity_scaled(self):
        profile = get_profile("uniform")
        for u in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert profile.warp(u) == pytest.approx(u * DAY_US)

    def test_warp_is_monotone_and_in_range(self):
        profile = get_profile("office-hours")
        us = np.linspace(0.0, 1.0, 501)
        ts = profile.warp_array(us)
        assert np.all(np.diff(ts) >= 0)
        assert ts[0] >= 0.0 and ts[-1] <= profile.period_us

    def test_warp_mass_follows_weights(self):
        # Inverse-CDF property: a segment with weight w receives a
        # w*width / total share of a dense uniform grid.
        profile = LoadProfile([0.0, 1.0, 2.0, 4.0], [1.0, 3.0, 0.0])
        ts = profile.warp_array(np.linspace(0.0, 1.0, 4001))
        in_first = np.mean(ts < 1.0)
        in_second = np.mean((ts >= 1.0) & (ts < 2.0))
        assert in_first == pytest.approx(0.25, abs=0.01)
        assert in_second == pytest.approx(0.75, abs=0.01)

    def test_zero_weight_segment_receives_no_arrivals(self):
        profile = get_profile("nightly")  # hours 8..16 have weight 0
        ts = profile.warp_array(np.linspace(0.0, 1.0, 2001))
        hours = ts / HOUR_US
        assert not np.any((hours > 8.001) & (hours < 16.0))

    def test_intensity_at_normalised(self):
        uniform = get_profile("uniform")
        assert uniform.intensity_at(0.0) == pytest.approx(1.0)
        assert uniform.intensity_at(3 * DAY_US + 1.0) == pytest.approx(1.0)
        office = get_profile("office-hours")
        assert office.intensity_at(10.5 * HOUR_US) > \
            office.intensity_at(3.5 * HOUR_US)

    def test_from_hourly_period(self):
        profile = LoadProfile.from_hourly([1.0] * 24)
        assert profile.period_us == DAY_US

    @pytest.mark.parametrize("edges,weights", [
        ([0.0, 1.0], []),                      # no segments
        ([0.0, 1.0, 2.0], [1.0]),              # length mismatch
        ([1.0, 2.0], [1.0]),                   # does not start at 0
        ([0.0, 2.0, 1.0], [1.0, 1.0]),         # not increasing
        ([0.0, 1.0, 2.0], [0.0, 0.0]),         # all-zero intensity
        ([0.0, 1.0], [-1.0]),                  # negative weight
        ([0.0, float("nan")], [1.0]),          # non-finite edge
    ])
    def test_rejects_invalid_shapes(self, edges, weights):
        with pytest.raises(ArrivalError):
            LoadProfile(edges, weights)

    def test_registry(self):
        assert set(profile_names()) >= {
            "uniform", "office-hours", "nightly", "evening"
        }
        with pytest.raises(ArrivalError):
            get_profile("no-such-profile")

    def test_equality_and_jsonable_round_trip(self):
        profile = get_profile("office-hours")
        back = LoadProfile.from_jsonable(profile.to_jsonable())
        assert back == profile
        assert back.name == profile.name
        assert back != get_profile("nightly")


class TestSessionSchedule:
    def test_gap_after_bounds(self):
        schedule = SessionSchedule(5.0, (1.0, 2.0))
        assert schedule.gap_after(0) == 1.0
        assert schedule.gap_after(1) == 2.0
        assert schedule.gap_after(2) == 0.0
        assert schedule.gap_after(-1) == 0.0


class TestArrivalModel:
    def test_schedule_is_seed_deterministic(self):
        model = DEFAULT_ARRIVALS
        a = model.schedule(RandomStreams(42), user_id=3, sessions=4)
        b = model.schedule(RandomStreams(42), user_id=3, sessions=4)
        assert a == b
        c = model.schedule(RandomStreams(43), user_id=3, sessions=4)
        assert a != c

    def test_schedules_differ_by_user(self):
        streams = RandomStreams(7)
        offsets = {
            DEFAULT_ARRIVALS.schedule(streams, u, 2).offset_us
            for u in range(8)
        }
        assert len(offsets) == 8  # continuous draws never collide

    def test_schedule_lengths_and_clamping(self):
        model = ArrivalModel(first_login=Constant(-10.0),
                             session_gap=Constant(-5.0))
        schedule = model.schedule(RandomStreams(0), 0, 3)
        assert schedule.offset_us == 0.0  # negative draw clamped
        # one gap per separator *between* sessions, none after the last
        assert schedule.gaps_us == (0.0, 0.0)
        assert model.schedule(RandomStreams(0), 0, 1).gaps_us == ()
        assert model.schedule(RandomStreams(0), 0, 0).gaps_us == ()
        with pytest.raises(ArrivalError):
            model.schedule(RandomStreams(0), 0, -1)

    def test_profile_constrains_offsets(self):
        model = ArrivalModel(profile=get_profile("nightly"))
        streams = RandomStreams(5)
        for user in range(32):
            offset = model.schedule(streams, user, 1).offset_us
            hour = (offset % DAY_US) / HOUR_US
            assert hour <= 8.01 or hour >= 16.0

    def test_arrival_draws_do_not_perturb_synthesis_streams(self):
        # The model forks the same user family under new stream names;
        # a synthesis stream drawn before and after scheduling must not
        # move.
        streams = RandomStreams(11)
        before = streams.fork("user-1").get("chunk").random(4).tolist()
        DEFAULT_ARRIVALS.schedule(streams, 1, 5)
        after = streams.fork("user-1").get("chunk").random(4).tolist()
        assert before == after

    def test_with_profile(self):
        model = DEFAULT_ARRIVALS.with_profile(get_profile("evening"))
        assert model.profile == get_profile("evening")
        assert model.session_gap == DEFAULT_ARRIVALS.session_gap
        assert model.with_profile(None).profile is None

    def test_describe_mentions_profile(self):
        model = ArrivalModel(profile=get_profile("office-hours"))
        assert "office-hours" in model.describe()


class TestArrivalSerialization:
    def test_model_round_trip(self):
        model = ArrivalModel(
            first_login=ShiftedExponential(1234.5),
            session_gap=ShiftedExponential(999.0, 10.0),
            profile=get_profile("office-hours"),
        )
        back = arrival_model_from_jsonable(arrival_model_to_jsonable(model))
        assert back == model

    def test_model_round_trip_without_profile(self):
        back = arrival_model_from_jsonable(
            arrival_model_to_jsonable(DEFAULT_ARRIVALS)
        )
        assert back == DEFAULT_ARRIVALS

    def test_bad_payloads_rejected(self):
        with pytest.raises(ArrivalError):
            arrival_model_from_jsonable([1, 2, 3])
        with pytest.raises(ArrivalError):
            arrival_model_from_jsonable({"first_login": {"kind": "constant",
                                                         "value": 1.0}})

    def test_spec_document_carries_arrivals_block(self):
        spec = paper_workload_spec(n_users=2, total_files=100, seed=1)
        model = ArrivalModel(profile=get_profile("nightly"))
        text = dumps_spec(spec, meta={"note": "test"}, arrivals=model)
        payload = json.loads(text)
        assert spec_arrivals(payload) == model
        # a document without the block decodes to None
        assert spec_arrivals(json.loads(dumps_spec(spec))) is None
