"""Tests for trace characterization (measure → spec → re-measure loop)."""

import numpy as np
import pytest

from repro.core import (
    UsageLog,
    WorkloadGenerator,
    characterize_log,
    extract_samples,
    paper_workload_spec,
)
from repro.distributions import EmpiricalDistribution
from repro.vfs import MemoryFileSystem


@pytest.fixture(scope="module")
def measured():
    """A 'trace': 60 sessions of the paper workload on an in-memory FS."""
    spec = paper_workload_spec(n_users=2, total_files=300, seed=77)
    result = WorkloadGenerator(spec).run_real(
        MemoryFileSystem(), sessions_per_user=30
    )
    return result


class TestExtractSamples:
    def test_categories_present(self, measured):
        by_cat, access_sizes, gaps = extract_samples(
            measured.log, measured.layout
        )
        assert "REG:USER:RDONLY" in by_cat
        assert len(access_sizes) > 100
        assert len(gaps) > 100

    def test_sessions_accessing_bounded(self, measured):
        by_cat, _, _ = extract_samples(measured.log, measured.layout)
        n_sessions = len(measured.log.sessions)
        for samples in by_cat.values():
            assert 0 < samples.sessions_accessing <= n_sessions

    def test_access_per_byte_positive(self, measured):
        by_cat, _, _ = extract_samples(measured.log, measured.layout)
        rdonly = by_cat["REG:USER:RDONLY"]
        assert all(r >= 0 for r in rdonly.accesses_per_byte)
        assert np.mean(rdonly.accesses_per_byte) == pytest.approx(1.42,
                                                                  rel=0.4)

    def test_empty_log(self):
        by_cat, access_sizes, gaps = extract_samples(UsageLog())
        assert by_cat == {}
        assert access_sizes == []
        assert gaps == []


class TestCharacterizeLog:
    def test_produces_valid_spec(self, measured):
        spec = characterize_log(measured.log, measured.layout)
        assert spec.user_types[0].usage
        assert abs(sum(fc.fraction_of_files
                       for fc in spec.file_categories) - 1.0) < 1e-9

    def test_spec_is_runnable(self, measured):
        spec = characterize_log(measured.log, measured.layout,
                                total_files=150)
        result = WorkloadGenerator(spec).run_real(
            MemoryFileSystem(), sessions_per_user=3
        )
        assert result.log.sessions

    def test_loop_converges_on_access_size(self, measured):
        """Synthesising from the characterization reproduces the trace's
        access-size distribution — the thesis's measure→synthesise loop."""
        spec = characterize_log(measured.log, measured.layout,
                                total_files=200)
        replay = WorkloadGenerator(spec).run_real(
            MemoryFileSystem(), sessions_per_user=20
        )
        original = measured.analyzer.access_size_stats().mean
        synthetic = replay.analyzer.access_size_stats().mean
        assert synthetic == pytest.approx(original, rel=0.25)

    def test_loop_converges_on_files_referenced(self, measured):
        spec = characterize_log(measured.log, measured.layout,
                                total_files=200)
        replay = WorkloadGenerator(spec).run_real(
            MemoryFileSystem(), sessions_per_user=20
        )
        original = float(np.mean(
            measured.analyzer.session_measures().files_referenced))
        synthetic = float(np.mean(
            replay.analyzer.session_measures().files_referenced))
        assert synthetic == pytest.approx(original, rel=0.4)

    def test_empirical_method(self, measured):
        spec = characterize_log(measured.log, measured.layout,
                                method="empirical")
        usage = spec.user_types[0].usage[0]
        assert isinstance(usage.access_per_byte, EmpiricalDistribution)

    def test_exponential_method(self, measured):
        spec = characterize_log(measured.log, measured.layout,
                                method="exponential")
        assert spec.user_types[0].usage

    def test_bad_method_rejected(self, measured):
        with pytest.raises(ValueError):
            characterize_log(measured.log, measured.layout, method="magic")

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            characterize_log(UsageLog())
