"""Unit tests for the workload model types."""

import pytest

from repro.core import (
    FileCategory,
    FileCategorySpec,
    SpecError,
    UsageSpec,
    UserTypeSpec,
    WorkloadSpec,
    paper_file_categories,
    paper_usage_specs,
    paper_user_type,
)
from repro.core.spec import FileType, Owner, UseType
from repro.distributions import ShiftedExponential


def usage(category_key="REG:USER:RDONLY", fraction=1.0):
    return UsageSpec(
        category=FileCategory.from_key(category_key),
        access_per_byte=ShiftedExponential(1.5),
        file_count=ShiftedExponential(3.0),
        file_size=ShiftedExponential(4096.0),
        fraction_of_users=fraction,
    )


class TestFileCategory:
    def test_key_roundtrip(self):
        cat = FileCategory(FileType.REG, Owner.NOTES, UseType.RD_WRT)
        assert cat.key == "REG:NOTES:RD-WRT"
        assert FileCategory.from_key(cat.key) == cat

    def test_bad_key(self):
        with pytest.raises(SpecError):
            FileCategory.from_key("REG:USER")
        with pytest.raises(SpecError):
            FileCategory.from_key("REG:USER:BOGUS")

    def test_directory_flag(self):
        assert FileCategory.from_key("DIR:USER:RDONLY").is_directory
        assert not FileCategory.from_key("REG:USER:RDONLY").is_directory

    def test_shared_flag(self):
        assert FileCategory.from_key("REG:NOTES:RDONLY").is_shared
        assert FileCategory.from_key("REG:OTHER:RDONLY").is_shared
        assert not FileCategory.from_key("REG:USER:RDONLY").is_shared

    def test_creates_files(self):
        assert FileCategory.from_key("REG:USER:NEW").creates_files
        assert FileCategory.from_key("REG:USER:TEMP").creates_files
        assert not FileCategory.from_key("REG:USER:RDONLY").creates_files

    def test_reads_and_writes(self):
        rdonly = FileCategory.from_key("REG:USER:RDONLY")
        new = FileCategory.from_key("REG:USER:NEW")
        rdwrt = FileCategory.from_key("REG:USER:RD-WRT")
        assert rdonly.reads and not rdonly.writes
        assert new.writes and not new.reads
        assert rdwrt.reads and rdwrt.writes


class TestSpecValidation:
    def test_category_spec_fraction_bounds(self):
        with pytest.raises(SpecError):
            FileCategorySpec(
                category=FileCategory.from_key("REG:USER:RDONLY"),
                size_distribution=ShiftedExponential(100.0),
                fraction_of_files=1.5,
            )

    def test_usage_fraction_bounds(self):
        with pytest.raises(SpecError):
            usage(fraction=-0.1)

    def test_user_type_requires_usage(self):
        with pytest.raises(SpecError):
            UserTypeSpec(name="u", fraction=1.0, usage=())

    def test_user_type_rejects_duplicate_categories(self):
        with pytest.raises(SpecError):
            UserTypeSpec(name="u", fraction=1.0, usage=(usage(), usage()))

    def test_user_type_fraction_bounds(self):
        with pytest.raises(SpecError):
            UserTypeSpec(name="u", fraction=0.0, usage=(usage(),))

    def test_workload_fractions_must_sum_to_one(self):
        a = UserTypeSpec(name="a", fraction=0.5, usage=(usage(),))
        b = UserTypeSpec(name="b", fraction=0.6, usage=(usage(),))
        with pytest.raises(SpecError):
            WorkloadSpec(
                file_categories=paper_file_categories(),
                user_types=(a, b),
            )

    def test_workload_rejects_duplicate_type_names(self):
        a = UserTypeSpec(name="same", fraction=0.5, usage=(usage(),))
        b = UserTypeSpec(name="same", fraction=0.5, usage=(usage(),))
        with pytest.raises(SpecError):
            WorkloadSpec(
                file_categories=paper_file_categories(),
                user_types=(a, b),
            )

    def test_usage_for_lookup(self):
        user_type = paper_user_type("t")
        cat = FileCategory.from_key("REG:USER:RDONLY")
        assert user_type.usage_for(cat) is not None
        weird = FileCategory(FileType.DIR, Owner.NOTES, UseType.TEMP)
        assert user_type.usage_for(weird) is None


class TestUserTypeAssignment:
    def make_spec(self, n_users, fractions):
        types = tuple(
            UserTypeSpec(name=f"t{i}", fraction=f, usage=(usage(),))
            for i, f in enumerate(fractions)
        )
        return WorkloadSpec(
            file_categories=paper_file_categories(),
            user_types=types,
            n_users=n_users,
        )

    def test_exact_split(self):
        spec = self.make_spec(10, [0.8, 0.2])
        names = [t.name for t in spec.assign_user_types()]
        assert names.count("t0") == 8
        assert names.count("t1") == 2

    def test_largest_remainder(self):
        spec = self.make_spec(5, [0.8, 0.2])
        names = [t.name for t in spec.assign_user_types()]
        assert names.count("t0") == 4
        assert names.count("t1") == 1

    def test_single_user_gets_biggest_type(self):
        spec = self.make_spec(1, [0.8, 0.2])
        assert [t.name for t in spec.assign_user_types()] == ["t0"]

    def test_assignment_length(self):
        for n in (1, 3, 7):
            spec = self.make_spec(n, [0.5, 0.3, 0.2])
            assert len(spec.assign_user_types()) == n

    def test_deterministic(self):
        spec = self.make_spec(6, [0.5, 0.5])
        assert [t.name for t in spec.assign_user_types()] == [
            t.name for t in spec.assign_user_types()
        ]


class TestPaperDatasets:
    def test_table_5_1_has_nine_categories(self):
        assert len(paper_file_categories()) == 9

    def test_table_5_1_fractions_sum_to_one(self):
        total = sum(fc.fraction_of_files for fc in paper_file_categories())
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_table_5_2_has_nine_rows(self):
        assert len(paper_usage_specs()) == 9

    def test_usage_means_match_table(self):
        by_key = {u.category.key: u for u in paper_usage_specs()}
        notes = by_key["REG:NOTES:RDONLY"]
        assert notes.access_per_byte.mean() == pytest.approx(0.75)
        assert notes.file_size.mean() == pytest.approx(53965.0)
        assert notes.file_count.mean() == pytest.approx(11.3)
        assert notes.fraction_of_users == pytest.approx(0.53)

    def test_dir_user_accesses_per_byte_is_decimal(self):
        """The 3128 misprint must be read as 3.128 (see datasets docstring)."""
        by_key = {u.category.key: u for u in paper_usage_specs()}
        assert by_key["DIR:USER:RDONLY"].access_per_byte.mean() == pytest.approx(
            3.128
        )

    def test_extremely_heavy_think_time_is_zero(self):
        user_type = paper_user_type("x", think_time_mean_us=0.0)
        assert user_type.think_time.mean() == 0.0
        assert user_type.think_time.var() == 0.0
