"""Unit tests for the usage log and its text round-trip."""

import pytest

from repro.core import OpRecord, SessionRecord, UsageLog


def op(kind="read", size=100, user=0, session=0, response=12.5):
    return OpRecord(
        user_id=user,
        user_type="heavy",
        session_id=session,
        op=kind,
        path="/user00/f",
        category_key="REG:USER:RDONLY",
        size=size,
        start_us=1.0,
        response_us=response,
    )


def session(user=0, session_id=0, files=3, accessed=1000, referenced=500):
    return SessionRecord(
        user_id=user,
        user_type="heavy",
        session_id=session_id,
        start_us=0.0,
        end_us=100.0,
        files_referenced=files,
        bytes_accessed=accessed,
        file_bytes_referenced=referenced,
        categories=("REG:USER:RDONLY", "DIR:USER:RDONLY"),
    )


class TestRecords:
    def test_op_roundtrip(self):
        record = op()
        assert OpRecord.from_line(record.to_line()) == record

    def test_session_roundtrip(self):
        record = session()
        assert SessionRecord.from_line(record.to_line()) == record

    def test_session_derived_measures(self):
        record = session(files=4, accessed=2000, referenced=1000)
        assert record.access_per_byte == pytest.approx(2.0)
        assert record.mean_file_size == pytest.approx(250.0)
        assert record.duration_us == 100.0

    def test_session_zero_guards(self):
        record = session(files=0, accessed=0, referenced=0)
        assert record.access_per_byte == 0.0
        assert record.mean_file_size == 0.0

    def test_bad_lines_rejected(self):
        with pytest.raises(ValueError):
            OpRecord.from_line("SESSION\tnot-an-op")
        with pytest.raises(ValueError):
            SessionRecord.from_line("OP\tnot-a-session")

    def test_empty_categories_roundtrip(self):
        record = SessionRecord(
            user_id=0, user_type="t", session_id=0, start_us=0.0,
            end_us=1.0, files_referenced=0, bytes_accessed=0,
            file_bytes_referenced=0, categories=(),
        )
        assert SessionRecord.from_line(record.to_line()).categories == ()


class TestUsageLog:
    def make_log(self):
        log = UsageLog()
        log.record_op(op("open", size=0))
        log.record_op(op("read", size=100))
        log.record_op(op("write", size=50))
        log.record_op(op("close", size=0))
        log.record_session(session())
        return log

    def test_data_ops_filter(self):
        log = self.make_log()
        assert [o.op for o in log.data_ops()] == ["read", "write"]

    def test_ops_of(self):
        log = self.make_log()
        assert len(list(log.ops_of("open", "close"))) == 2

    def test_total_bytes(self):
        assert self.make_log().total_bytes == 150

    def test_total_response(self):
        assert self.make_log().total_response_us == pytest.approx(50.0)

    def test_sessions_of_user(self):
        log = self.make_log()
        log.record_session(session(user=5))
        assert len(log.sessions_of_user(0)) == 1
        assert len(log.sessions_of_user(5)) == 1

    def test_dump_load_roundtrip(self):
        log = self.make_log()
        restored = UsageLog.loads(log.dumps())
        assert restored.operations == log.operations
        assert restored.sessions == log.sessions

    def test_load_skips_blank_lines(self):
        log = UsageLog.loads("\n" + self.make_log().dumps() + "\n\n")
        assert len(log.operations) == 4

    def test_load_rejects_garbage(self):
        with pytest.raises(ValueError):
            UsageLog.loads("GARBAGE\tline\n")

    def test_extend(self):
        a = self.make_log()
        b = self.make_log()
        a.extend(b)
        assert len(a.operations) == 8
        assert len(a.sessions) == 2


class TestRobustRoundTrip:
    """Paths with separators/whitespace and empty logs must survive."""

    @pytest.mark.parametrize("path", [
        "/user00/with\ttab",
        "/user00/with\nnewline",
        "/user00/with\rcarriage",
        "/user00/back\\slash",
        "/user00/tab\tand\\mix\n",
        "/user00/trailing space ",
    ])
    def test_op_path_round_trip(self, path):
        record = OpRecord(
            user_id=1, user_type="heavy", session_id=0, op="read",
            path=path, category_key="REG:USER:RDONLY", size=10,
            start_us=0.0, response_us=1.0,
        )
        line = record.to_line()
        assert "\n" not in line and "\r" not in line
        assert OpRecord.from_line(line) == record

    def test_category_and_user_type_round_trip(self):
        record = OpRecord(
            user_id=1, user_type="type\twith tab", session_id=0, op="read",
            path="/f", category_key="weird\tkey", size=10,
            start_us=0.0, response_us=1.0,
        )
        assert OpRecord.from_line(record.to_line()) == record

    def test_session_categories_with_commas_round_trip(self):
        record = SessionRecord(
            user_id=0, user_type="h\tt", session_id=1, start_us=0.0,
            end_us=5.0, files_referenced=1, bytes_accessed=2,
            file_bytes_referenced=3,
            categories=("plain", "with,comma", "with\ttab"),
        )
        assert SessionRecord.from_line(record.to_line()) == record

    @pytest.mark.parametrize("path", [
        "/cr\ronly",
        "/crlf\r\npair",
        "/lone\\back",
        "/double\\\\back",
        "/back\\r-literal",      # backslash followed by the letter r
        "/back\\t-literal",      # backslash followed by the letter t
        "/back\\,comma",
        "/mix\r\\\t\n,end\\",
    ])
    def test_carriage_return_and_backslash_survive_a_text_file(
            self, tmp_path, path):
        # The real failure mode for raw \r is a text-mode file: universal
        # newline translation would mangle an unescaped carriage return
        # on read, and an unescaped backslash would collide with the
        # escape prefix.  Round-trip through an actual file, not just a
        # string, to pin both.
        log = UsageLog()
        log.record_op(OpRecord(
            user_id=0, user_type="heavy", session_id=0, op="open",
            path=path, category_key="REG:USER:RDONLY", size=0,
            start_us=0.0, response_us=1.0,
        ))
        log.record_session(SessionRecord(
            user_id=0, user_type="heavy", session_id=0, start_us=0.0,
            end_us=1.0, files_referenced=1, bytes_accessed=0,
            file_bytes_referenced=0, categories=(path,),
        ))
        target = tmp_path / "hostile.log"
        with open(target, "w", encoding="utf-8") as stream:
            log.dump(stream)
        with open(target, "r", encoding="utf-8") as stream:
            restored = UsageLog.load(stream)
        assert restored.operations == log.operations
        assert restored.sessions == log.sessions
        # exactly two physical lines: nothing unescaped split them
        assert len(target.read_text(encoding="utf-8").splitlines()) == 2

    def test_full_log_round_trip_with_hostile_paths(self):
        log = UsageLog()
        log.record_session(session())
        for path in ("/a\tb", "/c\nd", "/e\\f", "/g,h"):
            log.record_op(OpRecord(
                user_id=0, user_type="heavy", session_id=0, op="write",
                path=path, category_key="REG:USER:NEW", size=1,
                start_us=0.0, response_us=0.5,
            ))
        restored = UsageLog.loads(log.dumps())
        assert restored.operations == log.operations
        assert restored.sessions == log.sessions

    def test_empty_log_round_trip(self):
        restored = UsageLog.loads(UsageLog().dumps())
        assert restored.operations == []
        assert restored.sessions == []

    def test_unknown_escape_rejected(self):
        line = op().to_line().replace("/user00/f", "/user00\\qf")
        with pytest.raises(ValueError, match="unknown escape"):
            OpRecord.from_line(line)

    def test_dangling_escape_rejected(self):
        line = op().to_line().replace("/user00/f", "/user00/f\\")
        with pytest.raises(ValueError, match="dangling escape"):
            OpRecord.from_line(line)
