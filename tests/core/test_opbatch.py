"""Columnar op-batch container, bridges, and batch-aware sinks."""

import io

import numpy as np
import pytest

from repro.core import (
    OP_KIND_CODES,
    OP_KIND_NAMES,
    OpBatch,
    OpRecord,
    SessionRecord,
    StringTable,
    UsageLog,
)
from repro.core.opbatch import KIND_READ, KIND_THINK, KIND_WRITE
from repro.core.oplog import _escape, _unescape
from repro.distributions import BatchSampler, RandomStreams, Uniform
from repro.fleet.merge import ShardAccumulator, WorkloadTally
from repro.sim import RunningStats


def make_records():
    return [
        OpRecord(1, "heavy", 0, "open", "/u/f1", "user:rdonly", 0, 1.0, 2.0),
        OpRecord(1, "heavy", 0, "read", "/u/f1", "user:rdonly", 4096, 3.0, 4.0),
        OpRecord(1, "heavy", 0, "write", "/u/f1", "user:rdonly", 512, 7.0, 1.5),
        OpRecord(1, "heavy", 0, "close", "/u/f1", "user:rdonly", 0, 8.5, 0.5),
        OpRecord(2, "light", 1, "stat", "/sys/a", "", 0, 0.0, 1.0),
        OpRecord(2, "light", 1, "listdir", "/sys/a", "sys:dir", 9000, 1.0, 2.0),
    ]


class TestStringTable:
    def test_intern_round_trip_and_none(self):
        table = StringTable()
        assert table.intern(None) == -1
        a = table.intern("/x")
        b = table.intern("/y")
        assert table.intern("/x") == a  # idempotent
        assert (table.lookup(a), table.lookup(b)) == ("/x", "/y")
        assert table.lookup(-1) is None
        assert len(table) == 2


class TestOpBatchBridges:
    def test_records_round_trip(self):
        records = make_records()
        batch = OpBatch.from_records(records)
        assert len(batch) == len(records)
        assert batch.to_records() == records

    def test_kind_codes_cover_all_names(self):
        assert len(OP_KIND_NAMES) == len(OP_KIND_CODES)
        for name, code in OP_KIND_CODES.items():
            assert OP_KIND_NAMES[code] == name

    def test_select_mask_and_indices(self):
        batch = OpBatch.from_records(make_records())
        reads = batch.select(batch.kinds == KIND_READ)
        assert [r.op for r in reads.to_records()] == ["read"]
        first_two = batch.select(np.array([0, 1]))
        assert first_two.to_records() == make_records()[:2]

    def test_select_slice_shares_tables(self):
        batch = OpBatch.from_records(make_records())
        head = batch.select(slice(0, 3))
        assert head.paths is batch.paths
        assert head.to_records() == make_records()[:3]

    def test_iter_session_ops_interleaves_think(self):
        batch = OpBatch.from_records(make_records()[:2])
        batch.think_us = np.array([5, 9], dtype=np.int64)
        ops = list(batch.iter_session_ops())
        assert [op.kind for op in ops] == ["open", "think", "read", "think"]
        assert [op.size for op in ops if op.kind == "think"] == [5, 9]


class TestBatchSamplerVectorConsumption:
    """take/peek_buffer/consume must serve the exact scalar sequence."""

    def _pair(self):
        dist = Uniform(0.0, 1.0)
        streams = RandomStreams(5)
        return (
            BatchSampler(dist, streams.get("a"), block=16),
            BatchSampler(dist, RandomStreams(5).get("a"), block=16),
        )

    def test_take_matches_scalar_draws(self):
        vec, scalar = self._pair()
        expected = [scalar.draw() for _ in range(50)]
        got = list(vec.take(20)) + [vec.draw()] + list(vec.take(29))
        assert got == expected

    def test_take_spanning_refills(self):
        vec, scalar = self._pair()
        expected = [scalar.draw() for _ in range(40)]
        assert list(vec.take(40)) == expected  # 2.5 blocks in one call

    def test_peek_consume_matches_scalar_draws(self):
        vec, scalar = self._pair()
        expected = [scalar.draw() for _ in range(20)]
        got = []
        while len(got) < 20:
            view = vec.peek_buffer()
            use = min(len(view), 20 - len(got), 7)
            got.extend(view[:use])
            vec.consume(use)
        assert got == expected

    def test_consume_past_buffer_rejected(self):
        vec, _ = self._pair()
        vec.peek_buffer()
        with pytest.raises(Exception):
            vec.consume(17)


class TestTallyRecordBatch:
    def test_matches_per_record_folding(self):
        records = make_records()
        scalar = WorkloadTally()
        for record in records:
            scalar.record_op(record)
        columnar = WorkloadTally()
        columnar.record_batch(OpBatch.from_records(records))
        assert scalar == columnar

    def test_zero_byte_data_op_still_creates_category_key(self):
        record = OpRecord(0, "t", 0, "read", "/f", "cat", 0, 0.0, 0.0)
        scalar = WorkloadTally()
        scalar.record_op(record)
        columnar = WorkloadTally()
        columnar.record_batch(OpBatch.from_records([record]))
        assert scalar == columnar
        assert columnar.bytes_by_category == {"cat": 0}

    def test_empty_batch_is_a_no_op(self):
        tally = WorkloadTally()
        tally.record_batch(OpBatch.from_records([]))
        assert tally == WorkloadTally()


class TestMergeAll:
    def _tally(self, kind: str, n: int) -> WorkloadTally:
        tally = WorkloadTally()
        for i in range(n):
            tally.record_op(
                OpRecord(0, "t", 0, kind, "/f", "c", 10, 0.0, 0.0))
        return tally

    def test_merge_all_equals_fold_of_merge(self):
        parts = [self._tally("read", 3), self._tally("write", 2),
                 self._tally("read", 1)]
        folded = parts[0].merge(parts[1]).merge(parts[2])
        assert WorkloadTally.merge_all(parts) == folded

    def test_merge_is_pure(self):
        a, b = self._tally("read", 2), self._tally("write", 1)
        before_a, before_b = a.merge(WorkloadTally()), b.merge(WorkloadTally())
        a.merge(b)
        WorkloadTally.merge_all([a, b])
        assert a == before_a and b == before_b


class TestShardAccumulatorBatch:
    def test_batch_and_scalar_tallies_match(self):
        records = make_records()
        scalar = ShardAccumulator(collect_ops=True)
        for record in records:
            scalar.record_op(record)
        columnar = ShardAccumulator(collect_ops=True)
        columnar.record_batch(OpBatch.from_records(records))
        assert scalar.tally == columnar.tally
        assert scalar.log.operations == columnar.log.operations
        assert scalar.response_us.count == columnar.response_us.count
        assert scalar.response_us.mean == pytest.approx(
            columnar.response_us.mean)
        assert scalar.response_us.std == pytest.approx(
            columnar.response_us.std)


class TestRunningStatsAddArray:
    def test_matches_scalar_adds(self):
        values = np.array([3.0, 1.0, 4.0, 1.5, 9.0, 2.6])
        scalar = RunningStats()
        scalar.add_many(values)
        vec = RunningStats()
        vec.add_array(values[:2])
        vec.add_array(values[2:])
        assert vec.count == scalar.count
        assert vec.minimum == scalar.minimum
        assert vec.maximum == scalar.maximum
        assert vec.mean == pytest.approx(scalar.mean)
        assert vec.sample_std == pytest.approx(scalar.sample_std)

    def test_empty_array_is_noop(self):
        stats = RunningStats()
        stats.add_array(np.array([]))
        assert stats.count == 0


class TestUsageLogFastPaths:
    def test_escape_fast_path_is_identity_object(self):
        clean = "/plain/path-with_no.specials"
        assert _escape(clean) is clean  # no copy when nothing to escape
        assert _escape(clean, comma=True) is clean

    def test_escape_still_escapes(self):
        assert _escape("a\tb\nc\\d") == "a\\tb\\nc\\\\d"
        assert _escape("x,y", comma=True) == "x\\,y"
        assert _unescape(_escape("a\tb\nc\\d")) == "a\tb\nc\\d"

    def test_dump_chunking_boundary(self, monkeypatch):
        monkeypatch.setattr(UsageLog, "_DUMP_CHUNK_LINES", 3)
        log = UsageLog()
        for record in make_records():
            log.record_op(record)
        log.record_session(SessionRecord(1, "heavy", 0, 0.0, 9.0, 1, 4608,
                                         4096, ("user:rdonly",)))
        buffer = io.StringIO()
        log.dump(buffer)
        assert UsageLog.loads(buffer.getvalue()).operations == log.operations

    def test_record_batch_appends(self):
        log = UsageLog()
        log.record_batch(OpBatch.from_records(make_records()))
        assert log.operations == make_records()


class TestRecordBatchDefault:
    """A sink without record_batch still works through the bridge."""

    def test_minimal_sink_still_satisfies_protocol(self):
        from repro.core import OpSink

        class TwoMethodSink:
            def record_op(self, record):
                pass

            def record_session(self, record):
                pass

        assert isinstance(TwoMethodSink(), OpSink)

    def test_fallback_loops_record_op(self):
        class MinimalSink:
            def __init__(self):
                self.ops = []

            def record_op(self, record):
                self.ops.append(record)

            def record_session(self, record):
                pass

        from repro.core import paper_workload_spec, WorkloadGenerator

        spec = paper_workload_spec(n_users=2, total_files=120, seed=3)
        sink = MinimalSink()
        WorkloadGenerator(spec).run_simulated(
            backend="fast-columnar", log=sink)
        reference = WorkloadGenerator(spec).run_simulated(backend="fast")
        assert sink.ops == reference.log.operations

    def test_think_codes_never_reach_sinks(self):
        from repro.core import paper_workload_spec, WorkloadGenerator

        spec = paper_workload_spec(n_users=1, total_files=80, seed=4)
        result = WorkloadGenerator(spec).run_simulated(
            backend="fast-columnar")
        kinds = {op.op for op in result.log.operations}
        assert "think" not in kinds
        assert KIND_THINK not in {OP_KIND_CODES[k] for k in kinds}
        assert kinds & {"read", "write"}
        assert KIND_READ != KIND_WRITE
