"""Crash salvage, checkpoint/resume, and verification of stream artifacts.

The recovery contract has three legs:

* **salvage** — an aborted (footer-less) artifact yields exactly its
  CRC-verified full chunks, whether via the checkpoint sidecar or a
  sequential scan, and never a byte of a torn tail;
* **resume** — continuing a salvaged artifact with the remainder of the
  original event stream reproduces the uninterrupted file bit for bit
  (chunk boundaries are a pure function of global row count);
* **verify** — ``verify_stream`` walks every chunk CRC and reports
  corruption and truncation per chunk, loudly.
"""

import json
import os

import pytest

from repro.core import (
    CHECKPOINT_SUFFIX,
    StreamFileSink,
    StreamFormatError,
    StreamReader,
    UsageLog,
    WorkloadGenerator,
    paper_workload_spec,
    resume_stream_sink,
    salvage_stream,
    verify_stream,
)
from repro.core.streamfile import ROW_BYTES, StreamWriter

BUDGET = ROW_BYTES * 32  # 32-row chunks: plenty of flushes at test scale


class _EventRecorder:
    """Capture the exact sink-call sequence of a generation run."""

    def __init__(self):
        self.events = []  # ("batch", OpBatch) | ("session", SessionRecord)
        self.rows = 0

    def record_batch(self, batch):
        self.events.append(("batch", batch))
        self.rows += len(batch)

    def record_session(self, record):
        self.events.append(("session", record))


def _generate_events(seed=23):
    spec = paper_workload_spec(n_users=4, total_files=150, seed=seed)
    recorder = _EventRecorder()
    WorkloadGenerator(spec).run_simulated(
        sessions_per_user=2, backend="fast-columnar", log=recorder)
    return recorder


def _feed(sink, events, *, skip_rows=0, skip_sessions=0, stop_after=None):
    """Replay recorded events into a sink, optionally skipping a prefix
    (the resume path) or stopping after N op rows (the crash path)."""
    fed = 0
    for kind, payload in events:
        if kind == "session":
            if skip_sessions > 0:
                skip_sessions -= 1
                continue
            sink.record_session(payload)
            continue
        batch = payload
        if skip_rows > 0:
            take = min(skip_rows, len(batch))
            skip_rows -= take
            batch = batch.select(slice(take, len(batch)))
            if len(batch) == 0:
                continue
        if stop_after is not None:
            room = stop_after - fed
            if room <= 0:
                return fed
            if len(batch) > room:
                sink.record_batch(batch.select(slice(0, room)))
                return stop_after
        sink.record_batch(batch)
        fed += len(batch)
    return fed


@pytest.fixture(scope="module")
def events():
    return _generate_events()


@pytest.fixture()
def clean_artifact(tmp_path, events):
    path = str(tmp_path / "clean.opstream")
    with StreamFileSink(path, memory_budget_bytes=BUDGET) as sink:
        _feed(sink, events.events)
    return path


def _crashed_artifact(tmp_path, events, stop_after, name="crashed"):
    """Write a checkpointing artifact, 'crash' after N rows, abort."""
    path = str(tmp_path / f"{name}.opstream")
    sink = StreamFileSink(path, memory_budget_bytes=BUDGET, checkpoint=True)
    _feed(sink, events.events, stop_after=stop_after)
    sink.abort()  # no footer: exactly what a dead process leaves
    return path


class TestAbort:
    def test_abort_leaves_no_footer(self, tmp_path, events):
        path = _crashed_artifact(tmp_path, events, stop_after=100)
        with pytest.raises(StreamFormatError, match="truncated|footer"):
            StreamReader(path)

    def test_abort_after_close_is_noop(self, tmp_path, events):
        path = str(tmp_path / "a.opstream")
        sink = StreamFileSink(path, memory_budget_bytes=BUDGET)
        _feed(sink, events.events)
        sink.close()
        sink.abort()
        with StreamReader(path) as reader:
            assert reader.total_rows == events.rows

    def test_close_unlinks_checkpoint_sidecar(self, tmp_path, events):
        path = str(tmp_path / "a.opstream")
        sink = StreamFileSink(path, memory_budget_bytes=BUDGET,
                              checkpoint=True)
        _feed(sink, events.events)
        assert os.path.exists(path + CHECKPOINT_SUFFIX)
        sink.close()
        assert not os.path.exists(path + CHECKPOINT_SUFFIX)

    def test_abort_keeps_sidecar_for_salvage(self, tmp_path, events):
        path = _crashed_artifact(tmp_path, events, stop_after=100)
        assert os.path.exists(path + CHECKPOINT_SUFFIX)


class TestSalvage:
    def test_salvage_keeps_only_full_verified_chunks(self, tmp_path, events):
        path = _crashed_artifact(tmp_path, events, stop_after=100)
        salvaged = salvage_stream(path)
        assert not salvaged.complete
        assert salvaged.rows > 0
        rows_per_chunk = salvaged.rows_per_chunk
        assert all(e["rows"] == rows_per_chunk for e in salvaged.index)
        assert salvaged.rows <= 100

    def test_salvage_without_sidecar_scans_identically(self, tmp_path,
                                                       events):
        path = _crashed_artifact(tmp_path, events, stop_after=150)
        via_sidecar = salvage_stream(path)
        os.unlink(path + CHECKPOINT_SUFFIX)
        via_scan = salvage_stream(path)
        assert via_scan.rows == via_sidecar.rows
        assert via_scan.index == via_sidecar.index
        assert via_scan.data_end == via_sidecar.data_end

    def test_salvage_ignores_lying_sidecar(self, tmp_path, events):
        path = _crashed_artifact(tmp_path, events, stop_after=150)
        sidecar = path + CHECKPOINT_SUFFIX
        state = json.loads(open(sidecar, encoding="utf-8").read())
        state["rows"] += 32  # claims a chunk the file never got
        state["chunks"] += 1
        state["index"].append(dict(state["index"][-1]))
        with open(sidecar, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(state))
        salvaged = salvage_stream(path)  # falls back to the real bytes
        os.unlink(sidecar)
        assert salvaged.rows == salvage_stream(path).rows

    def test_salvage_replay_reports_boundary_user(self, tmp_path, events):
        path = _crashed_artifact(tmp_path, events, stop_after=200)
        salvaged = salvage_stream(path)
        log = UsageLog()
        summary = salvaged.replay(log)
        assert summary.rows == salvaged.rows == len(log.operations)
        assert summary.last_user == max(op.user_id for op in log.operations)
        boundary_rows = sum(1 for op in log.operations
                            if op.user_id == summary.last_user)
        assert summary.last_user_rows == boundary_rows

    def test_complete_artifact_salvages_complete(self, clean_artifact):
        salvaged = salvage_stream(clean_artifact)
        assert salvaged.complete


class TestResume:
    @pytest.mark.parametrize("stop_after", [40, 100, 333])
    def test_resumed_file_is_bit_for_bit(self, tmp_path, events,
                                         clean_artifact, stop_after):
        path = _crashed_artifact(tmp_path, events, stop_after,
                                 name=f"c{stop_after}")
        sink, salvaged = resume_stream_sink(
            path, memory_budget_bytes=BUDGET)
        assert sink is not None and salvaged is not None
        # Continue with the remainder of the identical event stream.
        _feed(sink, events.events, skip_rows=salvaged.rows,
              skip_sessions=salvaged.sessions)
        sink.close()
        clean = open(clean_artifact, "rb").read()
        assert open(path, "rb").read() == clean
        assert not os.path.exists(path + CHECKPOINT_SUFFIX)

    def test_resume_nothing_salvageable_starts_fresh(self, tmp_path, events,
                                                     clean_artifact):
        # Crash before the first flush: zero full chunks on disk.
        path = _crashed_artifact(tmp_path, events, stop_after=5, name="tiny")
        sink, salvaged = resume_stream_sink(path, memory_budget_bytes=BUDGET)
        assert salvaged is None  # fresh start
        _feed(sink, events.events)
        sink.close()
        assert open(path, "rb").read() == open(clean_artifact, "rb").read()

    def test_resume_complete_artifact_returns_no_sink(self, clean_artifact):
        sink, salvaged = resume_stream_sink(
            clean_artifact, memory_budget_bytes=BUDGET)
        assert sink is None
        assert salvaged is not None and salvaged.complete

    def test_resume_budget_mismatch_starts_fresh(self, tmp_path, events,
                                                 clean_artifact):
        # A different budget means different chunk boundaries: reusing
        # salvaged chunks would break bit-identity, so start over.
        path = _crashed_artifact(tmp_path, events, stop_after=100)
        sink, salvaged = resume_stream_sink(
            path, memory_budget_bytes=BUDGET * 2)
        assert salvaged is None
        sink.abort()

    def test_writer_resume_rejects_complete(self, clean_artifact):
        salvaged = salvage_stream(clean_artifact)
        with pytest.raises(StreamFormatError, match="complete"):
            StreamWriter.resume(salvaged)

    def test_writer_resume_rejects_metadata_mismatch(self, tmp_path, events):
        path = str(tmp_path / "m.opstream")
        sink = StreamFileSink(path, memory_budget_bytes=BUDGET,
                              metadata={"run": 1}, checkpoint=True)
        _feed(sink, events.events, stop_after=100)
        sink.abort()
        salvaged = salvage_stream(path)
        with pytest.raises(StreamFormatError, match="metadata"):
            StreamWriter.resume(salvaged, metadata={"run": 2})


class TestVerify:
    def test_clean_artifact_verifies(self, clean_artifact, events):
        report = verify_stream(clean_artifact)
        assert report.ok and report.complete
        assert report.chunks_ok == report.chunks > 0
        assert report.rows == events.rows
        assert report.errors == []
        kv = report.as_kv()
        assert kv["verdict"] == "ok"
        assert kv["chunks ok"] == f"{report.chunks}/{report.chunks}"

    def test_bitflip_in_chunk_is_localized(self, tmp_path, clean_artifact):
        data = bytearray(open(clean_artifact, "rb").read())
        data[len(data) // 2] ^= 0xFF
        path = str(tmp_path / "flipped.opstream")
        open(path, "wb").write(bytes(data))
        report = verify_stream(path)
        assert not report.ok
        assert report.chunks_ok == report.chunks - 1
        assert any("chunk" in e for e in report.errors)
        assert report.as_kv()["verdict"] == "CORRUPT"

    def test_truncation_reported(self, tmp_path, clean_artifact, events):
        data = open(clean_artifact, "rb").read()
        path = str(tmp_path / "cut.opstream")
        open(path, "wb").write(data[: int(len(data) * 0.6)])
        report = verify_stream(path)
        assert not report.ok and not report.complete
        assert report.rows < events.rows
        assert report.errors

    def test_aborted_artifact_not_ok_but_chunks_verify(self, tmp_path,
                                                       events):
        path = _crashed_artifact(tmp_path, events, stop_after=150)
        report = verify_stream(path)
        assert not report.ok and not report.complete
        assert report.chunks_ok == report.chunks > 0
