"""Pooled-kernel state isolation and fused-builder byte identity.

The fused per-user kernel pools one :class:`SessionGenerator` per user
type and re-targets it with
:meth:`~repro.core.synthesis.SessionGenerator.rebind_user` instead of
constructing a fresh generator per user.  The contract is *no state
leakage*: a rebound kernel must serve draw-for-draw exactly what a
freshly constructed generator serves, no matter which users (or how
many sessions of them) it drained before.  The hypothesis tests here
pin that property over random populations, session counts and access
patterns; the golden matrix re-pins the fused plan builder's byte
identity (scalar ``fast`` vs ``fast-columnar``) across every registered
scenario with arrivals on and off and under ``time_limit_us``
truncation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PhaseModel, WorkloadGenerator, paper_workload_spec
from repro.core.arrivals import DEFAULT_ARRIVALS
from repro.scenarios import get_scenario, scenario_names
from repro.vfs import MemoryFileSystem


def _staged(spec, access_pattern="sequential"):
    """A generator plus its manifest layout and planned population."""
    generator = WorkloadGenerator(spec)
    layout = generator.create_file_system(
        MemoryFileSystem(), materialize_users=set(),
        materialize_shared=False,
    )
    assignment, selected = generator.plan_users()
    return generator, layout, assignment, selected


def _drain_users(generator, layout, assignment, selected, access_pattern,
                 sessions, reuse_kernels, phases=False, columnar=False):
    """Op streams per user, drained through pooled or fresh kernels."""
    streams = {}
    for kernel in generator.iter_synthesized_users(
        layout, selected, assignment,
        access_pattern=access_pattern,
        phase_model_factory=PhaseModel if phases else None,
        reuse_kernels=reuse_kernels,
    ):
        if columnar:
            batch, _bounds = kernel.generate_user_batch(range(sessions))
            ops = list(batch.iter_session_ops())
        else:
            ops = [op for s in range(sessions)
                   for op in kernel.generate_session(s)]
        streams[kernel.user_id] = ops
    return streams


population = dict(
    seed=st.integers(min_value=0, max_value=2**20),
    n_users=st.integers(min_value=2, max_value=5),
    sessions=st.integers(min_value=1, max_value=2),
    access_pattern=st.sampled_from(["sequential", "random"]),
    heavy_fraction=st.sampled_from([0.5, 1.0]),
)


class TestPooledStateIsolation:
    """rebind_user ≡ fresh construction, for every drained stream."""

    @given(**population)
    @settings(max_examples=15, deadline=None)
    def test_scalar_streams_equal_fresh(self, seed, n_users, sessions,
                                        access_pattern, heavy_fraction):
        # heavy_fraction < 1 gives two user types, so the pooled path
        # exercises one kernel per type with interleaved rebinds.
        spec = paper_workload_spec(n_users=n_users, total_files=120,
                                   seed=seed,
                                   heavy_fraction=heavy_fraction)
        pooled = _drain_users(*_staged(spec), access_pattern, sessions,
                              reuse_kernels=True)
        fresh = _drain_users(*_staged(spec), access_pattern, sessions,
                             reuse_kernels=False)
        assert pooled == fresh

    @given(**population)
    @settings(max_examples=15, deadline=None)
    def test_fused_batches_equal_fresh(self, seed, n_users, sessions,
                                       access_pattern, heavy_fraction):
        spec = paper_workload_spec(n_users=n_users, total_files=120,
                                   seed=seed,
                                   heavy_fraction=heavy_fraction)
        pooled = _drain_users(*_staged(spec), access_pattern, sessions,
                              reuse_kernels=True, columnar=True)
        fresh = _drain_users(*_staged(spec), access_pattern, sessions,
                             reuse_kernels=False, columnar=True)
        assert pooled == fresh

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=10, deadline=None)
    def test_phase_models_rebind_per_user(self, seed):
        """Each rebind gets its own PhaseModel, never a drained chain."""
        spec = paper_workload_spec(n_users=3, total_files=120, seed=seed)
        pooled = _drain_users(*_staged(spec), "sequential", 2,
                              reuse_kernels=True, phases=True)
        fresh = _drain_users(*_staged(spec), "sequential", 2,
                             reuse_kernels=False, phases=True)
        assert pooled == fresh

    def test_rebind_resets_plan_counter_and_identity(self):
        spec = paper_workload_spec(n_users=2, total_files=120, seed=9)
        generator, layout, assignment, selected = _staged(spec)
        kernels = list(generator.iter_synthesized_users(
            layout, selected, assignment, reuse_kernels=False))
        pooled = kernels[0]
        list(pooled.generate_session(0))  # advance every pooled stream
        pooled.rebind_user(1)
        assert pooled.user_id == 1
        assert pooled._plan_counter == 0
        assert (list(pooled.generate_session(0))
                == list(kernels[1].generate_session(0)))

    def test_user_batch_bounds_slice_sessions(self):
        """bounds[i] rows of the fused batch are session i's batch."""
        spec = paper_workload_spec(n_users=1, total_files=120, seed=21)
        generator, layout, assignment, selected = _staged(spec)
        fused_kernel, per_session_kernel = (
            _staged(spec)[0].synthesize_users(layout, selected)[0]
            for _ in range(2)
        )
        batch, bounds = fused_kernel.generate_user_batch(range(3))
        assert bounds[0] == 0 and bounds[-1] == len(batch)
        fused_ops = list(batch.iter_session_ops())
        split = 0
        for session_id in range(3):
            single = per_session_kernel.generate_session_batch(session_id)
            n = bounds[session_id + 1] - bounds[session_id]
            assert n == len(single)
            span = len(list(single.iter_session_ops()))
            assert fused_ops[split:split + span] == list(
                single.iter_session_ops())
            split += span


class TestFusedBuilderGoldenMatrix:
    """fast ≡ fast-columnar records for every scenario × arrivals ×
    truncation — the fused plan builder's byte-identity pin."""

    @pytest.mark.parametrize("arrivals", [False, True])
    @pytest.mark.parametrize("name", scenario_names())
    def test_records_identical(self, name, arrivals):
        scenario = get_scenario(name)
        spec = scenario.build(4, 17)
        model = ((scenario.arrival_model or DEFAULT_ARRIVALS)
                 if arrivals else None)
        results = {}
        for backend in ("fast", "fast-columnar"):
            results[backend] = WorkloadGenerator(spec).run_simulated(
                sessions_per_user=2,
                backend=backend,
                access_pattern=scenario.access_pattern,
                phase_model_factory=(PhaseModel if scenario.use_phase_model
                                     else None),
                arrivals=model,
            )
        assert (results["fast"].log.operations
                == results["fast-columnar"].log.operations)
        assert (results["fast"].log.sessions
                == results["fast-columnar"].log.sessions)

    @pytest.mark.parametrize("name", scenario_names())
    def test_truncation_identical(self, name):
        scenario = get_scenario(name)
        spec = scenario.build(4, 17)

        def run(backend, limit=None):
            return WorkloadGenerator(spec).run_simulated(
                sessions_per_user=2,
                backend=backend,
                access_pattern=scenario.access_pattern,
                time_limit_us=limit,
            )

        limit = run("fast").simulated_duration_us / 3
        scalar = run("fast", limit)
        columnar = run("fast-columnar", limit)
        assert scalar.log.operations == columnar.log.operations
        assert scalar.log.sessions == columnar.log.sessions
        assert (scalar.simulated_duration_us
                == columnar.simulated_duration_us)
