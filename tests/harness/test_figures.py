"""Tests for the per-table/per-figure harness (small parameters).

These verify the *shapes* the paper reports, scaled down so the suite
stays fast; the benchmarks run the full-size versions.
"""

import numpy as np
import pytest

from repro.harness import (
    ablation_cdf_table_points,
    ablation_server_cache,
    ablation_write_policy,
    compare_file_systems,
    figure_5_1,
    figure_5_2,
    figure_5_3,
    figure_5_6,
    figure_5_7,
    figure_5_11,
    figure_5_12,
    format_table,
    response_per_byte_vs_users,
    table_5_1,
    table_5_2,
    table_5_3,
    table_5_4,
)


class TestTables:
    def test_table_5_1_matches_paper_within_sampling(self):
        result = table_5_1(total_files=3000, seed=1)
        assert len(result.rows) == 9
        for row in result.rows:
            _, paper_size, measured_size, paper_pct, measured_pct = row
            assert measured_size == pytest.approx(paper_size, rel=0.25)
            assert measured_pct == pytest.approx(paper_pct, abs=1.0)

    def test_table_5_2_recovers_input_shape(self):
        result = table_5_2(sessions=150, seed=1)
        by_key = {row[0]: row for row in result.rows}
        # The category accessed by 100% of users must stay dominant.
        assert by_key["REG:USER:RDONLY"][6] > 85.0
        # NOTES RDONLY has the lowest accesses/byte in the paper; the
        # measured value must be below the measured TEMP value.
        assert (by_key["REG:NOTES:RDONLY"][2]
                < by_key["REG:USER:TEMP"][2] + 1.0)

    def test_table_5_3_response_grows_with_users(self):
        result = table_5_3(max_users=4, sessions_total=12,
                           total_files=200, seed=1)
        means = [row[3] for row in result.rows]
        assert means[-1] > means[0]
        # Access sizes stay near the exponential(1024) input.
        sizes = [row[1] for row in result.rows]
        assert all(500 < s < 1300 for s in sizes)

    def test_table_5_4_think_times(self):
        result = table_5_4(sessions=10, seed=1)
        measured = {row[0]: row[2] for row in result.rows}
        assert measured["extremely heavy I/O"] == 0.0
        assert measured["heavy I/O"] == pytest.approx(5000, rel=0.15)
        assert measured["light I/O"] == pytest.approx(20000, rel=0.15)

    def test_formatted_output(self):
        out = table_5_4(sessions=2, seed=0).formatted()
        assert "Table 5.4" in out
        assert "heavy I/O" in out


class TestDistributionFigures:
    def test_figure_5_1_panels_are_densities(self):
        fig = figure_5_1(n_points=201)
        xs = np.array(fig.xs)
        for name, ys in fig.series.items():
            ys = np.array(ys)
            assert np.all(ys >= 0), name
            # Mass over the plotted window is below 1 and substantial.
            area = np.trapezoid(ys, xs)
            assert 0.5 < area <= 1.001, name

    def test_figure_5_1_first_panel_peak_at_origin(self):
        fig = figure_5_1()
        ys = fig.series["exp(22.1,x)"]
        assert ys[0] == pytest.approx(1 / 22.1)
        assert ys[0] == max(ys)

    def test_figure_5_2_offset_panel_zero_before_onset(self):
        fig = figure_5_2(n_points=201)
        xs = np.array(fig.xs)
        ys = np.array(fig.series["g(1.5,25.4,x-12)"])
        assert np.all(ys[xs < 12.0] == 0.0)
        assert ys[xs > 20.0].max() > 0.0


class TestHistogramFigures:
    def test_figure_5_3_counts_sessions(self):
        fig = figure_5_3(sessions=80, seed=2, total_files=200)
        before = np.array(fig.series["before smoothing"])
        after = np.array(fig.series["after smoothing"])
        assert before.sum() > 0
        # Smoothing preserves mass up to edge effects.
        assert after.sum() == pytest.approx(before.sum(), rel=0.1)
        # And reduces roughness.
        assert np.var(np.diff(after)) <= np.var(np.diff(before))


class TestResponseFigures:
    def test_figure_5_6_near_linear_growth(self):
        fig = figure_5_6(max_users=4, sessions_total=16,
                         total_files=200, seed=3)
        ys = fig.ys
        # Monotone-ish growth, substantially super-flat.
        assert ys[-1] > ys[0] * 1.6
        assert all(b > a * 0.85 for a, b in zip(ys, ys[1:]))

    def test_figure_5_7_milder_than_5_6(self):
        heavy = figure_5_7(max_users=4, sessions_total=16,
                           total_files=200, seed=3)
        xheavy = figure_5_6(max_users=4, sessions_total=16,
                            total_files=200, seed=3)
        heavy_growth = heavy.ys[-1] / heavy.ys[0]
        xheavy_growth = xheavy.ys[-1] / xheavy.ys[0]
        assert heavy_growth < xheavy_growth

    def test_figure_5_11_flat(self):
        fig = figure_5_11(max_users=4, sessions_total=16,
                          total_files=200, seed=3)
        ys = fig.ys
        assert max(ys) / min(ys) < 1.4

    def test_heavy_and_light_have_similar_averages(self):
        """The paper's 'interesting observation' (section 5.2)."""
        _, heavy = response_per_byte_vs_users(
            1.0, max_users=3, sessions_total=12, total_files=200, seed=3
        )
        _, light = response_per_byte_vs_users(
            0.0, max_users=3, sessions_total=12, total_files=200, seed=3
        )
        assert np.mean(heavy) == pytest.approx(np.mean(light), rel=0.5)

    def test_figure_5_12_decreasing_per_byte_cost(self):
        fig = figure_5_12(access_sizes=(128, 512, 2048),
                          sessions_total=10, total_files=200, seed=4)
        ys = fig.ys
        assert ys[0] > ys[1] > ys[2]
        # The paper's factor from 128B to 2048B is roughly 3-5x.
        assert ys[0] / ys[2] > 2.0

    def test_figure_formatted(self):
        fig = figure_5_12(access_sizes=(256, 1024), sessions_total=4,
                          total_files=150, seed=4)
        out = fig.formatted()
        assert "Figure 5.12" in out
        assert "256" in out


class TestComparisonAndAblations:
    def test_comparison_prefers_non_nfs(self):
        comparison = compare_file_systems(
            n_users=2, sessions_total=8, total_files=150, seed=5
        )
        assert {c.backend for c in comparison.candidates} == {
            "nfs", "local", "afs"
        }
        nfs = next(c for c in comparison.candidates if c.backend == "nfs")
        local = next(c for c in comparison.candidates if c.backend == "local")
        assert local.response_mean_us < nfs.response_mean_us
        assert comparison.best_backend in ("local", "afs")
        assert "comparison" in comparison.formatted()

    def test_write_policy_ablation(self):
        result = ablation_write_policy(n_users=2, sessions_total=6,
                                       total_files=150, seed=5)
        by_policy = {row[0]: row for row in result.rows}
        # Write-through pays disk on every write: slower writes, more disk.
        assert (by_policy["write-through"][3]
                > by_policy["write-behind"][3])
        assert (by_policy["write-through"][5]
                > by_policy["write-behind"][5])

    def test_cache_ablation(self):
        result = ablation_server_cache(n_users=2, sessions_total=6,
                                       total_files=150, seed=5,
                                       cache_sizes=(0, 1024))
        no_cache, big_cache = result.rows
        assert no_cache[1] == 0.0            # hit ratio without a cache
        assert big_cache[1] > 0.5
        assert no_cache[2] > big_cache[2]    # reads slower without cache

    def test_cdf_points_ablation_monotone(self):
        result = ablation_cdf_table_points(points=(17, 257), n_samples=5000)
        coarse, fine = result.rows
        assert fine[1] < coarse[1]           # KS improves
        assert fine[3] > coarse[3]           # memory grows


class TestReportFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) <= {"-", " "}
        assert len({len(l) for l in lines[1:]}) <= 2
