"""Tests for the mypy ratchet gate (driven by canned reports, not mypy)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.mypy_gate import (
    count_errors,
    evaluate,
    load_baseline,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

CANNED_REPORT = """\
src/repro/core/usim.py:42: error: Incompatible return value type  [return-value]
src/repro/core/usim.py:99: note: See https://example for context
src/repro/fleet/merge.py:7:13: error: Argument 1 has incompatible type  [arg-type]
Found 2 errors in 2 files (checked 40 source files)
"""


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(payload)
    return str(path)


def _baseline(tmp_path, error_count):
    return _write(tmp_path, "baseline.json", json.dumps(
        {"error_count": error_count, "targets": ["src/repro/core"]}
    ))


def test_count_errors_skips_notes_and_summary():
    assert count_errors(CANNED_REPORT) == 2
    assert count_errors("Success: no issues found in 40 source files\n") == 0


@pytest.mark.parametrize("measured,baseline,code", [
    (2, 2, 0),    # at the pin
    (1, 2, 0),    # improvement
    (3, 2, 1),    # regression
    (5, None, 0), # bootstrap: unpinned baseline always passes
])
def test_evaluate_ratchet(measured, baseline, code):
    got, verdict = evaluate(measured, baseline)
    assert got == code
    assert "mypy-gate" in verdict


def test_main_passes_at_baseline(tmp_path, capsys):
    report = _write(tmp_path, "report.txt", CANNED_REPORT)
    rc = main(["--baseline", _baseline(tmp_path, 2), "--report", report])
    assert rc == 0
    assert "at baseline" in capsys.readouterr().out


def test_main_fails_on_regression(tmp_path, capsys):
    report = _write(tmp_path, "report.txt", CANNED_REPORT)
    rc = main(["--baseline", _baseline(tmp_path, 1), "--report", report])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().out


def test_main_bootstrap_null_baseline_passes(tmp_path, capsys):
    report = _write(tmp_path, "report.txt", CANNED_REPORT)
    rc = main(["--baseline", _baseline(tmp_path, None), "--report", report])
    assert rc == 0
    assert "bootstrap" in capsys.readouterr().out


def test_update_baseline_pins_measured_count(tmp_path, capsys):
    report = _write(tmp_path, "report.txt", CANNED_REPORT)
    baseline = _baseline(tmp_path, None)
    rc = main(["--baseline", baseline, "--report", report,
               "--update-baseline"])
    assert rc == 0
    assert json.loads(Path(baseline).read_text())["error_count"] == 2
    # and the ratchet now holds at the pinned count
    assert main(["--baseline", baseline, "--report", report]) == 0


def test_malformed_baseline_exits_two(tmp_path, capsys):
    bad = _write(tmp_path, "baseline.json", '{"targets": []}')
    assert main(["--baseline", bad]) == 2
    assert "error_count" in capsys.readouterr().err


def test_missing_report_exits_two(tmp_path, capsys):
    rc = main(["--baseline", _baseline(tmp_path, 0),
               "--report", str(tmp_path / "nope.txt")])
    assert rc == 2


def test_shipped_baseline_is_loadable():
    data = load_baseline(str(REPO_ROOT / "MYPY_BASELINE.json"))
    assert data["error_count"] is None or data["error_count"] >= 0
    assert data["targets"] == ["src/repro/core", "src/repro/fleet"]
