"""Minimal stream-name registry fixture for detlint tests."""

STREAM_NAMES = frozenset({"write-mix", "think"})

STREAM_PREFIXES = ("user-", "shard-", "count:")
