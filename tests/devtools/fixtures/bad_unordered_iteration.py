"""BAD: set iteration order leaks into a serialized artifact."""


def dump_users(user_ids, out):
    for uid in set(user_ids):
        out.write(f"{uid}\n")


def merge_keys(parts):
    seen = {k for part in parts for k in part}
    return list(seen)
