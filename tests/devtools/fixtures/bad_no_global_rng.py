"""BAD: draws from module-global RNG state instead of named streams."""

import random

import numpy as np


def jitter(n):
    rng = np.random.default_rng()
    return [random.random() + float(x) for x in rng.random(n)]


def pick(items):
    from numpy.random import default_rng

    return default_rng().choice(items)
