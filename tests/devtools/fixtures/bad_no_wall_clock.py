"""BAD (when staged under repro/core/): reads wall clocks in generation."""

import time
from datetime import datetime


def stamp_ops(ops):
    started = time.monotonic()
    for op in ops:
        op.start_us = time.time() * 1e6
    return datetime.now(), time.perf_counter() - started
