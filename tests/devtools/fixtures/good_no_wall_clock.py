"""GOOD: generation-path time comes from the simulated clock only."""


def stamp_ops(ops, engine):
    for op in ops:
        op.start_us = engine.now
    return engine.now
