"""BAD: supervision-path errors vanish without a trace."""


def retry(task, attempts):
    for _ in range(attempts):
        try:
            return task()
        except Exception:
            pass
    try:
        return task()
    except:
        pass
