"""BAD: naive float accumulation in a shard-merge path."""


def merge_means(parts):
    total = 0.0
    for part in parts:
        total += part.mean
    return total / len(parts) + sum(p.var for p in parts)
