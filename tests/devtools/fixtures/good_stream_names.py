"""GOOD: every stream name / family prefix exists in the registry."""


def build(streams, user_id, key):
    base = streams.fork(f"user-{user_id}")
    mix = base.get("write-mix")
    seed = streams.spawn_seed(f"shard-{user_id}")
    tail = base.get(f"count:{key}")
    return mix, seed, tail
