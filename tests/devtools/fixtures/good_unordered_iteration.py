"""GOOD: sets are sorted before feeding an ordered artifact."""


def dump_users(user_ids, out):
    for uid in sorted(set(user_ids)):
        out.write(f"{uid}\n")


def merge_keys(parts):
    seen = {k for part in parts for k in part}
    return sorted(seen)
