"""GOOD: module-level, picklable worker targets."""

import multiprocessing as mp


def run_shard(shard):
    return shard * 2


def launch(shards):
    worker = mp.Process(target=run_shard, args=(shards[0],))
    worker.start()
    with mp.Pool(2) as pool:
        return pool.map(run_shard, shards)
