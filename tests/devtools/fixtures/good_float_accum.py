"""GOOD: exact integer accumulation + Welford merge for statistics."""


def merge_stats(parts, stats_cls):
    merged = stats_cls()
    rows = 0
    for part in parts:
        merged = merged.merge(part.stats)
        rows += int(part.rows)
    return merged, rows
