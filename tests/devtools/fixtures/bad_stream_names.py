"""BAD: misspelled / unregistered stream names (silently wrong seeds)."""


def build(streams, user_id, key):
    base = streams.fork(f"user-{user_id}")
    mix = base.get("writemix")
    seed = streams.spawn_seed(f"worker-{user_id}")
    tail = base.get(f"{key}:count")
    return mix, seed, tail
