"""GOOD: all randomness flows through named RandomStreams streams."""

from repro.distributions import RandomStreams


def jitter(streams: RandomStreams, n):
    rng = streams.get("think")
    return rng.random(n)
