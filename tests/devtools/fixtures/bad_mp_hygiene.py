"""BAD: process/pool targets that cannot survive pickling."""

import multiprocessing as mp


def launch(shards):
    def run_shard(shard):
        return shard * 2

    worker = mp.Process(target=run_shard, args=(shards[0],))
    worker.start()
    with mp.Pool(2) as pool:
        return pool.map(lambda s: s * 2, shards)
