"""GOOD: failures are reported, re-raised or narrowly handled."""


def retry(task, attempts, report):
    last = None
    for attempt in range(attempts):
        try:
            return task()
        except ValueError as exc:
            last = exc
            report(attempt, exc)
    raise last
