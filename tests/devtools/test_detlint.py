"""Tests for repro.devtools.detlint — the determinism/concurrency linter.

Each rule gets a bad/good fixture pair under ``tests/devtools/fixtures``.
Path-scoped rules (no-wall-clock, no-global-rng's allowlist, sink-module
scoping) are exercised by *staging* the fixture into a ``repro/<dir>/``
tree under tmp_path, because policies match on the part of the path after
the last ``repro`` directory.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.devtools.detlint import (
    collect_pragmas,
    lint_paths,
    load_registry,
    main,
    module_relpath,
)
from repro.devtools.detlint.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def stage(tmp_path: Path, mapping: dict[str, str]) -> Path:
    """Copy fixtures into a fake tree: {fixture_name: staged_relpath}."""
    root = tmp_path / "tree"
    for fixture, rel in mapping.items():
        dest = root / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / fixture, dest)
    return root


def run_rule(paths, rule: str, registry_path=None):
    findings, _n = lint_paths(
        [str(p) for p in paths], rule_ids=[rule], registry_path=registry_path
    )
    return findings


# -- no-global-rng -------------------------------------------------------------


def test_no_global_rng_flags_module_level_draws():
    findings = run_rule([FIXTURES / "bad_no_global_rng.py"], "no-global-rng")
    assert len(findings) == 3
    assert {f.rule for f in findings} == {"no-global-rng"}
    messages = " | ".join(f.message for f in findings)
    assert "np.random.default_rng" in messages
    assert "random.random" in messages
    assert "numpy.random" in messages  # the `from numpy.random import` form


def test_no_global_rng_clean_on_streams_code():
    assert run_rule([FIXTURES / "good_no_global_rng.py"], "no-global-rng") == []


def test_no_global_rng_exempts_rng_module(tmp_path):
    root = stage(tmp_path, {"bad_no_global_rng.py": "repro/distributions/rng.py"})
    assert run_rule([root], "no-global-rng") == []


# -- no-wall-clock -------------------------------------------------------------


def test_no_wall_clock_flags_clocks_in_core(tmp_path):
    root = stage(tmp_path, {"bad_no_wall_clock.py": "repro/core/stamp.py"})
    findings = run_rule([root], "no-wall-clock")
    assert len(findings) == 4
    messages = " | ".join(f.message for f in findings)
    for call in ("time.monotonic", "time.time", "datetime.now",
                 "time.perf_counter"):
        assert call in messages


def test_no_wall_clock_allows_clocks_in_obs(tmp_path):
    root = stage(tmp_path, {"bad_no_wall_clock.py": "repro/obs/stamp.py"})
    assert run_rule([root], "no-wall-clock") == []


def test_no_wall_clock_ignores_files_outside_banned_dirs():
    # Unstaged fixture: relpath is the bare filename, no banned dir matches.
    assert run_rule([FIXTURES / "bad_no_wall_clock.py"], "no-wall-clock") == []


def test_no_wall_clock_clean_on_sim_clock_code(tmp_path):
    root = stage(tmp_path, {"good_no_wall_clock.py": "repro/core/stamp.py"})
    assert run_rule([root], "no-wall-clock") == []


# -- stream-name-registry ------------------------------------------------------


def _staged_with_registry(tmp_path, fixture):
    return stage(tmp_path, {
        fixture: "repro/core/build.py",
        "registry_min.py": "repro/distributions/streamnames.py",
    })


def test_registry_catches_misnamed_stream(tmp_path):
    """The tentpole guarantee: a typo'd stream name is caught statically."""
    root = _staged_with_registry(tmp_path, "bad_stream_names.py")
    findings = run_rule([root], "stream-name-registry")
    assert len(findings) == 3
    messages = " | ".join(f.message for f in findings)
    assert "'writemix'" in messages            # misspelling of write-mix
    assert "'worker-'" in messages             # unregistered family prefix
    assert "no static prefix" in messages      # f-string starting dynamic


def test_registry_clean_on_registered_names(tmp_path):
    root = _staged_with_registry(tmp_path, "good_stream_names.py")
    assert run_rule([root], "stream-name-registry") == []


def test_registry_explicit_path_flag(tmp_path):
    root = stage(tmp_path, {"bad_stream_names.py": "repro/core/build.py"})
    findings = run_rule([root], "stream-name-registry",
                        registry_path=str(FIXTURES / "registry_min.py"))
    assert len(findings) == 3


def test_registry_missing_is_itself_a_finding(tmp_path):
    root = stage(tmp_path, {"bad_stream_names.py": "repro/core/build.py"})
    findings = run_rule([root], "stream-name-registry")
    assert findings
    assert all("no registry found" in f.message for f in findings)


def test_load_registry_parses_fixture_and_real_module():
    names, prefixes = load_registry(str(FIXTURES / "registry_min.py"))
    assert names == frozenset({"write-mix", "think"})
    assert prefixes == ("user-", "shard-", "count:")
    real_names, real_prefixes = load_registry(
        str(REPO_SRC / "repro" / "distributions" / "streamnames.py")
    )
    assert {"select", "think", "write-mix", "fsc"} <= real_names
    assert "user-" in real_prefixes and "shard-" in real_prefixes


def test_load_registry_rejects_incomplete_module(tmp_path):
    stub = tmp_path / "reg.py"
    stub.write_text("STREAM_NAMES = frozenset({'a'})\n")
    with pytest.raises(ValueError):
        load_registry(str(stub))


# -- unordered-iteration -------------------------------------------------------


def test_unordered_iteration_flags_sets_feeding_sinks():
    findings = run_rule([FIXTURES / "bad_unordered_iteration.py"],
                        "unordered-iteration")
    assert len(findings) == 2
    assert {"'dump_users'", "'merge_keys'"} == {
        f.message.split(" in ")[1].split(" feeds")[0] for f in findings
    }


def test_unordered_iteration_clean_when_sorted():
    assert run_rule([FIXTURES / "good_unordered_iteration.py"],
                    "unordered-iteration") == []


def test_unordered_iteration_scopes_whole_sink_modules(tmp_path):
    # In a sink module every function is in scope, marker name or not.
    source = (
        "def helper(xs, out):\n"
        "    for x in set(xs):\n"
        "        out.append(x)\n"
    )
    root = tmp_path / "tree"
    dest = root / "repro" / "fleet" / "merge.py"
    dest.parent.mkdir(parents=True)
    dest.write_text(source)
    findings = run_rule([root], "unordered-iteration")
    assert len(findings) == 1


# -- mp-hygiene ----------------------------------------------------------------


def test_mp_hygiene_flags_unpicklable_targets():
    findings = run_rule([FIXTURES / "bad_mp_hygiene.py"], "mp-hygiene")
    assert len(findings) == 2
    messages = " | ".join(f.message for f in findings)
    assert "nested function 'run_shard'" in messages
    assert "a lambda" in messages


def test_mp_hygiene_clean_on_module_level_targets():
    assert run_rule([FIXTURES / "good_mp_hygiene.py"], "mp-hygiene") == []


# -- float-accum ---------------------------------------------------------------


def test_float_accum_flags_naive_merge_sums():
    findings = run_rule([FIXTURES / "bad_float_accum.py"], "float-accum")
    assert len(findings) == 2
    messages = " | ".join(f.message for f in findings)
    assert "sum()" in messages
    assert "'+='" in messages


def test_float_accum_exempts_integral_accumulation():
    assert run_rule([FIXTURES / "good_float_accum.py"], "float-accum") == []


# -- swallowed-exceptions ------------------------------------------------------


def test_swallowed_exceptions_flags_silent_handlers():
    findings = run_rule([FIXTURES / "bad_swallowed_exceptions.py"],
                        "swallowed-exceptions")
    assert len(findings) == 2
    messages = " | ".join(f.message for f in findings)
    assert "bare 'except:'" in messages
    assert "'except Exception'" in messages


def test_swallowed_exceptions_clean_on_narrow_handlers():
    assert run_rule([FIXTURES / "good_swallowed_exceptions.py"],
                    "swallowed-exceptions") == []


# -- pragmas -------------------------------------------------------------------


def _lint_source(tmp_path, source, rule=None):
    path = tmp_path / "mod.py"
    path.write_text(source)
    findings, _n = lint_paths(
        [str(path)], rule_ids=[rule] if rule else None
    )
    return findings


def test_inline_pragma_with_reason_suppresses(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import random\n"
        "x = random.random()  "
        "# detlint: ignore[no-global-rng] — fixture wants raw draws\n",
        rule="no-global-rng",
    )
    assert findings == []


def test_standalone_pragma_governs_next_code_line(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import random\n"
        "# detlint: ignore[no-global-rng] — wrapped justification that\n"
        "# continues on a second comment line before the code\n"
        "x = random.random()\n",
        rule="no-global-rng",
    )
    assert findings == []


def test_pragma_without_reason_is_rejected_and_does_not_suppress(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import random\n"
        "x = random.random()  # detlint: ignore[no-global-rng]\n",
    )
    rules = sorted(f.rule for f in findings)
    assert "bad-pragma" in rules
    assert "no-global-rng" in rules  # original finding survives


def test_pragma_with_unknown_rule_is_rejected(tmp_path):
    findings = _lint_source(
        tmp_path, "x = 1  # detlint: ignore[no-such-rule] — whatever\n"
    )
    assert [f.rule for f in findings] == ["bad-pragma"]
    assert "unknown rule" in findings[0].message


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import random\n"
        "x = random.random()  # detlint: ignore[mp-hygiene] — wrong rule\n",
        rule="no-global-rng",
    )
    assert [f.rule for f in findings] == ["no-global-rng"]


def test_collect_pragmas_parses_rules_and_reason():
    pragmas, bad = collect_pragmas(
        "a = 1  # detlint: ignore[no-global-rng, no-wall-clock] — why not\n"
    )
    assert bad == []
    assert pragmas[0].rules == ("no-global-rng", "no-wall-clock")
    assert pragmas[0].reason == "why not"
    assert pragmas[0].line == 1


# -- CLI, report format, exit codes --------------------------------------------


def test_main_clean_tree_exits_zero(tmp_path, capsys):
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n")
    assert main([str(path)]) == 0
    assert "1 file(s) checked, clean" in capsys.readouterr().out


def test_main_findings_exit_one_human_format(tmp_path, capsys):
    rc = main([str(FIXTURES / "bad_mp_hygiene.py")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[mp-hygiene]" in out
    # path:line:col renders 1-based columns
    assert "bad_mp_hygiene.py:" in out


def test_main_json_report_schema(tmp_path, capsys):
    rc = main(["--json", str(FIXTURES / "bad_float_accum.py")])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["format"] == "repro.detlint-report"
    assert payload["version"] == 1
    assert payload["rules"] == list(ALL_RULES)
    assert payload["checked_files"] == 1
    assert payload["ok"] is False
    assert payload["counts"]["float-accum"] == 2
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "rule", "message"}


def test_main_json_ok_on_clean_input(tmp_path, capsys):
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n")
    assert main(["--json", str(path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True and payload["findings"] == []


def test_main_missing_path_exits_two(capsys):
    assert main([str(FIXTURES / "does_not_exist.py")]) == 2
    assert "error" in capsys.readouterr().err


def test_main_unknown_rule_exits_two(tmp_path, capsys):
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n")
    assert main(["--rules", "bogus", str(path)]) == 2


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULES:
        assert rule_id in out


def test_parse_error_is_reported_not_raised(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    findings, n_files = lint_paths([str(path)])
    assert n_files == 1
    assert [f.rule for f in findings] == ["parse-error"]


def test_module_relpath_strips_to_last_repro_component():
    assert module_relpath("/x/src/repro/core/usim.py") == "core/usim.py"
    assert module_relpath("/x/repro/y/repro/obs/metrics.py") == "obs/metrics.py"
    assert module_relpath("/tmp/tree/repro/fleet/merge.py") == "fleet/merge.py"
    assert module_relpath("/tmp/loose.py", root="/tmp") == "loose.py"


# -- the meta-test: the shipped tree is clean ----------------------------------


def test_shipped_tree_is_detlint_clean():
    """`python -m repro.devtools.detlint src` must exit 0 on this repo."""
    findings, n_files = lint_paths([str(REPO_SRC)])
    assert n_files > 50
    assert findings == [], "\n".join(f.render() for f in findings)
