"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.backend == "nfs"
        assert args.users == 2

    def test_figures_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig9.9"])

    def test_fleet_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])

    def test_fleet_run_defaults(self):
        args = build_parser().parse_args(["fleet", "run"])
        assert args.scenario == "paper-campus"
        assert args.shards == 1
        assert args.workers is None
        assert args.arrivals is False
        assert args.profile is None
        assert args.window_us is None

    def test_profile_choices_are_the_registry(self):
        from repro.core import profile_names

        args = build_parser().parse_args(
            ["fleet", "run", "--profile", "nightly"])
        assert args.profile == "nightly"
        assert "nightly" in profile_names()
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet", "run", "--profile", "no-such"])


class TestCommands:
    def test_simulate(self, capsys):
        code = main(["simulate", "--users", "1", "--sessions", "1",
                     "--files", "80", "--backend", "local"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Run summary" in out
        assert "mean response" in out

    def test_simulate_fast_backend(self, capsys):
        code = main(["simulate", "--users", "1", "--sessions", "1",
                     "--files", "80", "--backend", "fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Run summary" in out
        assert "fast" in out

    def test_real_and_mkfs(self, tmp_path, capsys):
        code = main(["mkfs", str(tmp_path / "fsroot"), "--files", "60",
                     "--users", "1"])
        assert code == 0
        assert "files created" in capsys.readouterr().out

        code = main(["real", str(tmp_path / "sandbox"), "--users", "1",
                     "--sessions", "1", "--files", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend" in out

    def test_figures_table_5_4(self, capsys):
        code = main(["figures", "table5.4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 5.4" in out

    def test_figures_fig_5_1(self, capsys):
        code = main(["figures", "fig5.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 5.1" in out

    def test_compare(self, capsys):
        code = main(["compare", "--users", "2", "--sessions", "2",
                     "--files", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "comparison" in out
        assert "nfs" in out

    def test_fleet_scenarios(self, capsys):
        code = main(["fleet", "scenarios"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mixed-campus" in out
        assert "database-random" in out

    def test_fleet_run(self, capsys):
        code = main(["fleet", "run", "--scenario", "mixed-campus",
                     "--users", "4", "--shards", "2", "--workers", "1",
                     "--seed", "7", "--files", "80"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Aggregate workload statistics (shard-invariant)" in out
        assert "Timing (topology-dependent)" in out

    def test_fleet_run_fast_backend_matches_des_aggregate(self, capsys):
        des = main(["fleet", "run", "--scenario", "mixed-campus",
                    "--users", "4", "--shards", "2", "--workers", "1",
                    "--seed", "7", "--files", "80"])
        des_out = capsys.readouterr().out
        fast = main(["fleet", "run", "--scenario", "mixed-campus",
                     "--users", "4", "--shards", "2", "--workers", "1",
                     "--seed", "7", "--files", "80", "--backend", "fast"])
        fast_out = capsys.readouterr().out
        assert des == fast == 0

        def aggregate_block(text):
            lines = text.splitlines()
            start = next(i for i, line in enumerate(lines)
                         if "Aggregate workload statistics" in line)
            end = next(i for i, line in enumerate(lines)
                       if "Per-shard" in line)
            return lines[start:end]

        assert aggregate_block(des_out) == aggregate_block(fast_out)

    def test_simulate_with_arrivals(self, capsys):
        code = main(["simulate", "--users", "1", "--sessions", "1",
                     "--files", "80", "--backend", "fast-columnar",
                     "--arrivals"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Run summary" in out

    def test_fleet_run_profile_reports_offered_load(self, capsys):
        code = main(["fleet", "run", "--scenario", "batch-heavy",
                     "--users", "4", "--shards", "2", "--workers", "1",
                     "--seed", "7", "--files", "80",
                     "--backend", "fast-columnar", "--profile", "nightly"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Offered load" in out
        assert "window start (h)" in out

    def test_fleet_run_arrivals_shard_invariant_output(self, capsys):
        argv = ["fleet", "run", "--scenario", "mixed-campus", "--users", "4",
                "--workers", "1", "--seed", "7", "--files", "80",
                "--backend", "fast", "--arrivals"]
        assert main(argv + ["--shards", "1"]) == 0
        one = capsys.readouterr().out
        assert main(argv + ["--shards", "4"]) == 0
        four = capsys.readouterr().out

        def block(text, title, stop):
            lines = text.splitlines()
            start = next(i for i, line in enumerate(lines) if title in line)
            end = next(i for i, line in enumerate(lines) if stop in line)
            return lines[start:end]

        for title, stop in (("Aggregate workload statistics", "Offered load"),
                            ("Offered load", "Per-shard")):
            assert block(one, title, stop) == block(four, title, stop)

    def test_fleet_run_writes_oplog(self, tmp_path, capsys):
        target = tmp_path / "fleet.log"
        code = main(["fleet", "run", "--scenario", "dev-team",
                     "--users", "2", "--shards", "2", "--workers", "1",
                     "--files", "60", "--oplog", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "written to" in out
        from repro.core import UsageLog

        log = UsageLog.load(target.read_text().splitlines())
        assert len(log.sessions) == 2
        assert len(log.operations) > 0


class TestTraceCommands:
    @pytest.fixture(scope="class")
    def trace_path(self):
        import pathlib

        path = (pathlib.Path(__file__).resolve().parents[1]
                / "examples" / "example_trace.csv")
        assert path.exists()
        return str(path)

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_formats(self, capsys):
        assert main(["trace", "formats"]) == 0
        out = capsys.readouterr().out
        assert "strace" in out and "nfsdump" in out and "csv" in out

    def test_trace_import(self, tmp_path, capsys, trace_path):
        target = tmp_path / "imported.ulog"
        code = main(["trace", "import", trace_path, "-o", str(target)])
        err = capsys.readouterr().err
        assert code == 0
        assert "Trace import" in err
        from repro.core import UsageLog

        log = UsageLog.load(target.read_text().splitlines())
        assert len(log.sessions) == 8
        assert len(log.operations) > 1000

    def test_trace_import_missing_file(self, capsys):
        assert main(["trace", "import", "/no/such/trace.csv"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_characterize(self, tmp_path, capsys, trace_path):
        target = tmp_path / "imported.ulog"
        main(["trace", "import", trace_path, "-o", str(target)])
        capsys.readouterr()
        code = main(["characterize", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Characterization" in out
        assert "REG:USER:RD-WRT" in out

    def test_characterize_json(self, tmp_path, capsys, trace_path):
        target = tmp_path / "imported.ulog"
        main(["trace", "import", trace_path, "-o", str(target)])
        capsys.readouterr()
        code = main(["characterize", str(target), "--json"])
        out = capsys.readouterr().out
        assert code == 0
        import json

        rows = json.loads(out)
        assert any(r["category"] == "REG:USER:TEMP" for r in rows)

    def test_characterize_missing_file(self, capsys):
        assert main(["characterize", "/no/such.ulog"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_calibrate_then_validate_closed_loop(self, tmp_path, capsys,
                                                 trace_path):
        spec_path = tmp_path / "cal.spec.json"
        code = main(["trace", "calibrate", trace_path,
                     "-o", str(spec_path), "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Calibrated spec" in out
        assert spec_path.exists()

        report_path = tmp_path / "report.json"
        code = main(["trace", "validate", str(spec_path),
                     "--against", trace_path, "--json", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        import json

        report = json.loads(report_path.read_text())
        assert report["passed"] is True
        assert set(report["measures"]) == {
            "access_size", "file_size", "files_referenced",
            "access_per_byte", "think_time",
        }

    def test_validate_fails_loudly_on_bad_spec(self, tmp_path, capsys,
                                               trace_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["trace", "validate", str(bad),
                     "--against", trace_path]) == 2
        assert "cannot load spec" in capsys.readouterr().err

    def test_validate_mismatch_exits_nonzero(self, tmp_path, capsys,
                                             trace_path):
        from repro.core import dump_spec
        from repro.scenarios import build_scenario_spec

        spec_path = tmp_path / "wrong.spec.json"
        with open(spec_path, "w") as stream:
            dump_spec(build_scenario_spec("batch-heavy", 4, 5,
                                          total_files=70), stream)
        code = main(["trace", "validate", str(spec_path),
                     "--against", trace_path])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out


class TestStreamCommands:
    """`simulate --out-stream` and the `stream` verb family."""

    def simulate_artifact(self, tmp_path, **extra):
        path = tmp_path / "run.opstream"
        code = main(["simulate", "--users", "2", "--sessions", "1",
                     "--files", "80", "--backend", "fast-columnar",
                     "--seed", "9", "--out-stream", str(path)])
        assert code == 0
        return path

    def test_stream_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream"])

    def test_parser_accepts_stream_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--out-stream", "a.opstream",
             "--stream-budget-bytes", "4096"])
        assert args.out_stream == "a.opstream"
        assert args.stream_budget_bytes == 4096
        args = build_parser().parse_args(
            ["fleet", "run", "--out-stream", "b.opstream"])
        assert args.out_stream == "b.opstream"
        args = build_parser().parse_args(
            ["stream", "replay", "x.opstream", "--users", "1,2",
             "--window-us", "0:100"])
        assert args.streamfile == "x.opstream"

    def test_simulate_then_info(self, tmp_path, capsys):
        path = self.simulate_artifact(tmp_path)
        out = capsys.readouterr().out
        assert "op stream" in out and str(path) in out
        code = main(["stream", "info", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Op-stream artifact" in out
        assert "op rows" in out
        assert "meta.tool" in out

    def test_replay_round_trip(self, tmp_path, capsys):
        path = self.simulate_artifact(tmp_path)
        capsys.readouterr()
        oplog = tmp_path / "replay.log"
        code = main(["stream", "replay", str(path),
                     "--oplog", str(oplog)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Replayed" in out
        assert "sessions replayed" in out
        from repro.core import UsageLog

        log = UsageLog.load(oplog.read_text().splitlines())
        assert len(log.sessions) == 2
        assert len(log.operations) > 0

    def test_replay_sliced_by_user(self, tmp_path, capsys):
        path = self.simulate_artifact(tmp_path)
        capsys.readouterr()
        code = main(["stream", "replay", str(path), "--users", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(sliced)" in out

    def test_merge_single_input_is_identity(self, tmp_path, capsys):
        path = self.simulate_artifact(tmp_path)
        merged = tmp_path / "merged.opstream"
        code = main(["stream", "merge", str(path), "-o", str(merged)])
        out = capsys.readouterr().out
        assert code == 0
        assert "merged" in out
        assert merged.read_bytes() == path.read_bytes()

    def test_info_missing_file_fails_loudly(self, tmp_path, capsys):
        code = main(["stream", "info", str(tmp_path / "nope.opstream")])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_fleet_out_stream_shard_invariant(self, tmp_path, capsys):
        blobs = []
        for shards in ("1", "2"):
            path = tmp_path / f"s{shards}.opstream"
            code = main(["fleet", "run", "--scenario", "dev-team",
                         "--users", "2", "--shards", shards,
                         "--workers", "1", "--files", "60",
                         "--backend", "fast-columnar",
                         "--out-stream", str(path)])
            assert code == 0
            blobs.append(path.read_bytes())
        out = capsys.readouterr().out
        assert "op-stream artifact" in out
        assert blobs[0] == blobs[1]

    def test_fleet_out_stream_rejects_sharded_des(self, capsys):
        code = main(["fleet", "run", "--scenario", "dev-team",
                     "--users", "2", "--shards", "2", "--files", "60",
                     "--out-stream", "never-written.opstream"])
        assert code != 0


class TestObservabilityCli:
    """`--version`, `--metrics-out`, and `--progress`."""

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_parser_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--metrics-out", "m.json", "--progress"])
        assert args.metrics_out == "m.json"
        assert args.progress is True
        args = build_parser().parse_args(["fleet", "run"])
        assert args.metrics_out is None
        assert args.progress is False
        args = build_parser().parse_args(
            ["fleet", "run", "--metrics-out", "f.json", "--progress"])
        assert args.metrics_out == "f.json"
        assert args.progress is True

    def test_simulate_writes_manifest(self, tmp_path, capsys):
        import json

        manifest_path = tmp_path / "run.manifest.json"
        code = main(["simulate", "--users", "2", "--sessions", "1",
                     "--files", "80", "--backend", "fast-columnar",
                     "--seed", "9", "--metrics-out", str(manifest_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "run manifest written to" in out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format"] == "repro.run-manifest"
        assert manifest["run"]["seed"] == 9
        assert manifest["run"]["backend"] == "fast-columnar"
        assert manifest["run"]["n_users"] == 2
        assert manifest["metrics"]["counters"]["users"] == 2
        assert manifest["metrics"]["counters"]["ops"] > 0
        assert "execute" in manifest["metrics"]["stages"]

    def test_simulate_progress_renders_to_stderr(self, capsys):
        code = main(["simulate", "--users", "2", "--sessions", "1",
                     "--files", "80", "--backend", "fast-columnar",
                     "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "users" in captured.err
        assert captured.err.endswith("\n")

    def test_fleet_run_writes_manifest(self, tmp_path, capsys):
        import json

        manifest_path = tmp_path / "fleet.manifest.json"
        code = main(["fleet", "run", "--scenario", "dev-team",
                     "--users", "2", "--shards", "2", "--workers", "1",
                     "--files", "60", "--backend", "fast-columnar",
                     "--metrics-out", str(manifest_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "run manifest written to" in out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format"] == "repro.run-manifest"
        assert manifest["run"]["scenario"] == "dev-team"
        assert manifest["run"]["shards"] == 2
        assert manifest["metrics"]["counters"]["users"] == 2

    def test_metrics_do_not_change_simulate_output(self, tmp_path, capsys):
        argv = ["simulate", "--users", "2", "--sessions", "1",
                "--files", "80", "--backend", "fast-columnar", "--seed", "9"]
        assert main(argv) == 0
        bare = capsys.readouterr().out
        manifest_path = tmp_path / "m.json"
        assert main(argv + ["--metrics-out", str(manifest_path)]) == 0
        observed = capsys.readouterr().out
        assert observed == (
            bare + f"\nrun manifest written to {manifest_path}\n")


class TestFaultToleranceCli:
    """`fleet run` chaos flags, `--resume`, and `stream verify`."""

    FLEET = ["fleet", "run", "--scenario", "dev-team", "--users", "2",
             "--shards", "2", "--workers", "2", "--files", "60",
             "--backend", "fast-columnar", "--stream-budget-bytes", "4096"]

    def test_parser_accepts_fault_flags(self):
        args = build_parser().parse_args(
            ["fleet", "run", "--inject-fault", "kill:shard=0,row=9",
             "--inject-fault", "bitflip:shard=1", "--max-retries", "5",
             "--shard-timeout-s", "1.5", "--allow-partial",
             "--keep-run-dir", "--resume", "some.run"])
        assert args.inject_faults == ["kill:shard=0,row=9",
                                      "bitflip:shard=1"]
        assert args.max_retries == 5
        assert args.shard_timeout_s == 1.5
        assert args.allow_partial and args.keep_run_dir
        assert args.resume == "some.run"

    def test_bad_fault_spec_exits_2(self, capsys):
        code = main(self.FLEET + ["--inject-fault", "explode:shard=0"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_kill_fault_recovers_byte_identical(self, tmp_path, capsys):
        clean = tmp_path / "clean.opstream"
        assert main(self.FLEET + ["--out-stream", str(clean)]) == 0
        chaos = tmp_path / "chaos.opstream"
        code = main(self.FLEET + ["--out-stream", str(chaos),
                                  "--inject-fault", "kill:shard=0,row=9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Recovery" in out and "retries" in out
        assert chaos.read_bytes() == clean.read_bytes()

    def test_quarantine_exits_3_then_resume_completes(self, tmp_path,
                                                      capsys):
        clean = tmp_path / "clean.opstream"
        assert main(self.FLEET + ["--out-stream", str(clean)]) == 0
        victim = tmp_path / "victim.opstream"
        # No --keep-run-dir: a failed run keeps its checkpoints by
        # default so --resume has something to pick up.
        code = main(self.FLEET + [
            "--out-stream", str(victim), "--max-retries", "0",
            "--inject-fault", "kill:shard=0,row=9"])
        captured = capsys.readouterr()
        assert code == 3
        assert "quarantined" in captured.err
        assert "PARTIAL" in captured.out
        assert "--resume" in captured.out
        run_dir = str(victim) + ".run"
        code = main(["fleet", "run", "--resume", run_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "chunks reused" in out
        assert victim.read_bytes() == clean.read_bytes()

    def test_resume_missing_dir_exits_2(self, tmp_path, capsys):
        code = main(["fleet", "run", "--resume",
                     str(tmp_path / "never.run")])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_stream_verify_ok_and_corrupt(self, tmp_path, capsys):
        path = tmp_path / "a.opstream"
        assert main(self.FLEET + ["--out-stream", str(path)]) == 0
        capsys.readouterr()
        assert main(["stream", "verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out and "ok" in out
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert main(["stream", "verify", str(path)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out

    def test_stream_verify_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["stream", "verify", str(tmp_path / "no.opstream")])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
