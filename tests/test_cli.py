"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.backend == "nfs"
        assert args.users == 2

    def test_figures_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig9.9"])

    def test_fleet_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])

    def test_fleet_run_defaults(self):
        args = build_parser().parse_args(["fleet", "run"])
        assert args.scenario == "paper-campus"
        assert args.shards == 1
        assert args.workers is None


class TestCommands:
    def test_simulate(self, capsys):
        code = main(["simulate", "--users", "1", "--sessions", "1",
                     "--files", "80", "--backend", "local"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Run summary" in out
        assert "mean response" in out

    def test_real_and_mkfs(self, tmp_path, capsys):
        code = main(["mkfs", str(tmp_path / "fsroot"), "--files", "60",
                     "--users", "1"])
        assert code == 0
        assert "files created" in capsys.readouterr().out

        code = main(["real", str(tmp_path / "sandbox"), "--users", "1",
                     "--sessions", "1", "--files", "60"])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend" in out

    def test_figures_table_5_4(self, capsys):
        code = main(["figures", "table5.4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 5.4" in out

    def test_figures_fig_5_1(self, capsys):
        code = main(["figures", "fig5.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 5.1" in out

    def test_compare(self, capsys):
        code = main(["compare", "--users", "2", "--sessions", "2",
                     "--files", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "comparison" in out
        assert "nfs" in out

    def test_fleet_scenarios(self, capsys):
        code = main(["fleet", "scenarios"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mixed-campus" in out
        assert "database-random" in out

    def test_fleet_run(self, capsys):
        code = main(["fleet", "run", "--scenario", "mixed-campus",
                     "--users", "4", "--shards", "2", "--workers", "1",
                     "--seed", "7", "--files", "80"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Aggregate workload statistics (shard-invariant)" in out
        assert "Timing (topology-dependent)" in out

    def test_fleet_run_writes_oplog(self, tmp_path, capsys):
        target = tmp_path / "fleet.log"
        code = main(["fleet", "run", "--scenario", "dev-team",
                     "--users", "2", "--shards", "2", "--workers", "1",
                     "--files", "60", "--oplog", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "written to" in out
        from repro.core import UsageLog

        log = UsageLog.load(target.read_text().splitlines())
        assert len(log.sessions) == 2
        assert len(log.operations) > 0
