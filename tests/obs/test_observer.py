"""Unit tests for the observer hooks and the instrumented sink."""

import pytest

from repro.core import WorkloadGenerator, paper_workload_spec
from repro.core.opbatch import OpBatch
from repro.core.oplog import OpRecord, SessionRecord, UsageLog
from repro.obs import NULL_OBSERVER, RunObserver
from repro.obs.observer import NullObserver, Observer, ObservingSink

SPEC = paper_workload_spec(n_users=3, total_files=150, seed=11)


def make_records(n=4):
    return [
        OpRecord(user_id=1, user_type="researcher", session_id=0,
                 op="read" if i % 2 else "open", path=f"/f{i}",
                 category_key="research-small", size=100 * i,
                 start_us=float(i), response_us=float(10 + i))
        for i in range(n)
    ]


class ScalarOnlySink:
    """OpSink with no ``record_batch`` — forces the bridge path."""

    def __init__(self):
        self.ops = []
        self.sessions = []

    def record_op(self, record):
        self.ops.append(record)

    def record_session(self, record):
        self.sessions.append(record)


class RecordingProgress:
    def __init__(self):
        self.samples = []

    def update(self, users, ops):
        self.samples.append((users, ops))


class TestNullObserver:
    def test_shared_singleton_and_protocol(self):
        assert NULL_OBSERVER.enabled is False
        assert isinstance(NULL_OBSERVER, NullObserver)
        assert isinstance(NULL_OBSERVER, Observer)

    def test_stage_reuses_one_context(self):
        ctx = NULL_OBSERVER.stage("plan")
        assert NULL_OBSERVER.stage("execute") is ctx
        with ctx as entered:
            assert entered is ctx

    def test_iterable_and_sink_pass_through_unchanged(self):
        items = [1, 2, 3]
        assert NULL_OBSERVER.timed_iter("synthesize", items) is items
        sink = UsageLog()
        assert NULL_OBSERVER.wrap_sink(sink) is sink

    def test_ticks_are_noops(self):
        NULL_OBSERVER.tick_users()
        NULL_OBSERVER.tick_ops(100)


class TestRunObserver:
    def test_stage_span_accumulates(self):
        obs = RunObserver()
        for _ in range(3):
            with obs.stage("plan"):
                pass
        times = obs.stages["plan"]
        assert times.calls == 3
        assert times.wall_s >= 0.0
        assert times.cpu_s >= 0.0

    def test_stage_times_get_or_create(self):
        obs = RunObserver()
        assert obs.stage_times("x") is obs.stage_times("x")

    def test_timed_iter_yields_everything_and_counts_rows(self):
        obs = RunObserver()
        assert list(obs.timed_iter("synthesize", iter("abc"))) == ["a", "b",
                                                                   "c"]
        times = obs.stages["synthesize"]
        assert times.rows == 3
        # Each item plus the final StopIteration probe is one timed call.
        assert times.calls == 4

    def test_timed_iter_tick_users_feeds_progress(self):
        progress = RecordingProgress()
        obs = RunObserver(progress=progress)
        list(obs.timed_iter("synthesize", range(3), tick_users=True))
        assert obs.metrics.counter("users").value == 3
        assert progress.samples[-1] == (3, 0)

    def test_tick_ops_updates_counter_and_progress(self):
        progress = RecordingProgress()
        obs = RunObserver(progress=progress)
        obs.tick_ops(7)
        obs.tick_ops(5)
        assert obs.metrics.counter("ops").value == 12
        assert progress.samples == [(0, 7), (0, 12)]

    def test_snapshot_includes_sorted_stages(self):
        obs = RunObserver()
        with obs.stage("execute"):
            pass
        with obs.stage("plan"):
            pass
        snap = obs.snapshot()
        assert list(snap["stages"]) == ["execute", "plan"]
        assert snap["stages"]["plan"]["calls"] == 1
        assert set(snap) >= {"counters", "gauges", "stats", "histograms",
                             "stages"}


class TestObservingSink:
    def test_scalar_path_counts_and_forwards(self):
        obs = RunObserver()
        inner = ScalarOnlySink()
        sink = obs.wrap_sink(inner)
        assert isinstance(sink, ObservingSink)
        records = make_records(4)
        for record in records:
            sink.record_op(record)
        sink.record_session(SessionRecord(
            user_id=1, user_type="researcher", session_id=0,
            start_us=0.0, end_us=1.0, files_referenced=2,
            bytes_accessed=600, file_bytes_referenced=600,
            categories=("research-small",)))
        assert inner.ops == records
        assert len(inner.sessions) == 1
        assert obs.metrics.counter("ops").value == 4
        assert obs.metrics.counter("sessions").value == 1
        assert (obs.metrics.counter("bytes_moved").value
                == sum(r.size for r in records))
        stat = obs.metrics.stat("response_us")
        assert stat.count == 4
        assert stat.minimum == 10.0

    def test_batch_path_forwards_to_batch_aware_inner(self):
        obs = RunObserver()
        inner = UsageLog()
        sink = obs.wrap_sink(inner)
        batch = OpBatch.from_records(make_records(5))
        sink.record_batch(batch)
        # Forwarding and the op/row ticks are live; the array accounting
        # (bytes, stat, histogram) is deferred until flush.
        assert inner.operations == batch.to_records()
        assert obs.metrics.counter("ops").value == 5
        assert obs.stages["sink"].rows == 5
        sink.flush()
        assert (obs.metrics.counter("bytes_moved").value
                == int(batch.sizes.sum()))
        assert obs.stages["sink"].bytes == int(batch.sizes.sum())

    def test_batch_path_bridges_for_scalar_only_inner(self):
        obs = RunObserver()
        inner = ScalarOnlySink()
        sink = obs.wrap_sink(inner)
        batch = OpBatch.from_records(make_records(3))
        sink.record_batch(batch)
        # The bridge must hand the inner sink exactly what the executor's
        # own to_records fallback would have handed it.
        assert inner.ops == batch.to_records()
        assert obs.metrics.counter("ops").value == 3
        sink.flush()
        assert obs.metrics.stat("response_us").count == 3

    def test_snapshot_flushes_deferred_batch_accounting(self):
        obs = RunObserver()
        sink = obs.wrap_sink(UsageLog())
        batch = OpBatch.from_records(make_records(4))
        sink.record_batch(batch)
        snap = obs.snapshot()
        assert snap["stats"]["response_us"]["count"] == 4
        assert (snap["counters"]["bytes_moved"]
                == int(batch.sizes.sum()))
        # flush is idempotent: a second snapshot counts nothing twice.
        assert obs.snapshot()["stats"]["response_us"]["count"] == 4


class TestEndToEndCounters:
    @pytest.mark.parametrize("backend", ["fast", "fast-columnar"])
    def test_counters_match_log(self, backend):
        obs = RunObserver()
        result = WorkloadGenerator(SPEC).run_simulated(
            sessions_per_user=2, backend=backend, observer=obs)
        assert obs.metrics.counter("ops").value == len(result.log.operations)
        assert (obs.metrics.counter("sessions").value
                == len(result.log.sessions))
        assert obs.metrics.counter("users").value == SPEC.n_users
        assert obs.metrics.stat("response_us").count == len(
            result.log.operations)
        assert {"plan", "synthesize", "execute"} <= set(obs.stages)

    def test_result_log_is_not_the_wrapper(self):
        obs = RunObserver()
        result = WorkloadGenerator(SPEC).run_simulated(
            sessions_per_user=1, backend="fast-columnar", observer=obs)
        assert isinstance(result.log, UsageLog)

    def test_scalar_and_columnar_byte_counters_agree(self):
        snaps = []
        for backend in ("fast", "fast-columnar"):
            obs = RunObserver()
            WorkloadGenerator(SPEC).run_simulated(
                sessions_per_user=2, backend=backend, observer=obs)
            snaps.append(obs.snapshot())
        a, b = snaps
        assert a["counters"] == b["counters"]
