"""Unit tests for the run manifest and the snapshot exporters."""

import json
import re

import repro
from repro.core import paper_workload_spec
from repro.obs import (
    RunObserver,
    build_manifest,
    snapshot_jsonl,
    snapshot_prometheus,
    write_manifest,
)
from repro.obs.manifest import peak_rss_kib, spec_fingerprint


def sample_snapshot():
    obs = RunObserver()
    obs.metrics.counter("ops").inc(10)
    obs.metrics.gauge("shard.wall_s").set(1.5)
    obs.metrics.stat("response_us").add_many([10.0, 20.0, 30.0])
    hist = obs.metrics.histogram("response_us", 0.0, 100.0, 4)
    hist.add_many([10.0, 30.0, -1.0, 250.0])
    with obs.stage("execute"):
        pass
    return obs.snapshot()


class TestSpecFingerprint:
    def test_stable_across_equal_specs(self):
        a = paper_workload_spec(n_users=3, total_files=100, seed=1)
        b = paper_workload_spec(n_users=3, total_files=100, seed=1)
        assert spec_fingerprint(a) == spec_fingerprint(b)
        assert re.fullmatch(r"[0-9a-f]{64}", spec_fingerprint(a))

    def test_differs_across_specs(self):
        a = paper_workload_spec(n_users=3, total_files=100, seed=1)
        b = paper_workload_spec(n_users=4, total_files=100, seed=1)
        assert spec_fingerprint(a) != spec_fingerprint(b)


class TestBuildManifest:
    def test_fields(self):
        spec = paper_workload_spec(n_users=3, total_files=100, seed=7)
        manifest = build_manifest(
            sample_snapshot(), seed=7, backend="fast-columnar",
            scenario="paper", spec=spec, n_users=3, wall_s=1.25,
            simulated_us=1000, extra={"shards": 4},
        )
        assert manifest["format"] == "repro.run-manifest"
        assert manifest["version"] == 1
        assert manifest["repro_version"] == repro.__version__
        assert re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z",
                            manifest["created_utc"])
        run = manifest["run"]
        assert run["seed"] == 7
        assert run["backend"] == "fast-columnar"
        assert run["spec_sha256"] == spec_fingerprint(spec)
        assert run["n_users"] == 3
        assert run["wall_s"] == 1.25
        assert run["simulated_us"] == 1000
        assert run["shards"] == 4
        assert manifest["metrics"]["counters"]["ops"] == 10
        assert isinstance(manifest["cpu_count"], int)

    def test_peak_rss_positive_on_posix(self):
        peak = peak_rss_kib()
        assert peak is None or peak > 0

    def test_minimal_call(self):
        manifest = build_manifest({})
        assert manifest["run"]["seed"] is None
        assert manifest["run"]["spec_sha256"] is None

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = build_manifest(sample_snapshot(), seed=1)
        write_manifest(path, manifest)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == manifest


class TestJsonlExport:
    def test_every_line_parses_and_is_typed(self):
        lines = snapshot_jsonl(sample_snapshot()).splitlines()
        parsed = [json.loads(line) for line in lines]
        types = {obj["type"] for obj in parsed}
        assert types == {"counter", "gauge", "stat", "histogram", "stage"}
        by_name = {(obj["type"], obj["name"]): obj for obj in parsed}
        assert by_name[("counter", "ops")]["value"] == 10
        assert by_name[("stat", "response_us")]["count"] == 3
        assert by_name[("stage", "execute")]["calls"] == 1

    def test_empty_snapshot_is_empty(self):
        assert snapshot_jsonl({}) == ""


class TestPrometheusExport:
    def test_counter_gauge_summary_lines(self):
        text = snapshot_prometheus(sample_snapshot())
        assert "# TYPE repro_ops_total counter" in text
        assert "repro_ops_total 10" in text
        # Dots in metric names are sanitised for Prometheus.
        assert "repro_shard_wall_s 1.5" in text
        assert "repro_response_us_count 3" in text
        assert "repro_response_us_sum 60.0" in text
        assert "repro_stage_execute_calls 1" in text

    def test_histogram_buckets_are_cumulative(self):
        text = snapshot_prometheus(sample_snapshot())
        buckets = re.findall(
            r'repro_response_us_hist_bucket\{le="([^"]+)"\} (\d+)', text)
        assert buckets[-1][0] == "+Inf"
        counts = [int(c) for _, c in buckets]
        assert counts == sorted(counts)
        # 4 samples total: one underflow folded into the first bucket's
        # cumulative count, one overflow into +Inf.
        assert counts[-1] == 4
        assert "repro_response_us_hist_count 4" in text

    def test_custom_prefix(self):
        text = snapshot_prometheus({"counters": {"ops": 1}}, prefix="x_")
        assert "x_ops_total 1" in text
