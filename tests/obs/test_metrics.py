"""Unit tests for the metrics registry and snapshot merging."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, merge_snapshots
from repro.sim import RunningStats


class TestPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("ops") is reg.counter("ops")
        assert reg.gauge("rss") is reg.gauge("rss")
        assert reg.stat("resp") is reg.stat("resp")
        assert (reg.histogram("h", 0, 10, 5)
                is reg.histogram("h", 0, 10, 5))

    def test_histogram_layout_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", 0, 10, 5)
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("h", 0, 20, 5)

    def test_snapshot_is_json_serialisable(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(7)
        reg.gauge("rss").set(12.5)
        reg.stat("resp").add(3.0)
        reg.stat("never")  # empty stat: infinite extrema must serialise
        reg.histogram("h", 0, 10, 5).add(2.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["ops"] == 7
        assert snap["gauges"]["rss"] == 12.5
        assert snap["stats"]["resp"]["count"] == 1
        assert snap["stats"]["never"]["min"] is None
        assert sum(snap["histograms"]["h"]["counts"]) == 1

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.counter("alpha")
        assert list(reg.snapshot()["counters"]) == ["alpha", "zeta"]


class TestMergeSnapshots:
    def _snap(self, ops, rss, values, hist_values=()):
        reg = MetricsRegistry()
        reg.counter("ops").inc(ops)
        reg.gauge("rss").set(rss)
        reg.stat("resp").add_many(values)
        hist = reg.histogram("h", 0.0, 10.0, 5)
        hist.add_many(hist_values)
        return reg.snapshot()

    def test_counters_sum_gauges_max(self):
        merged = merge_snapshots([
            self._snap(3, 100.0, [1.0]),
            self._snap(4, 50.0, [2.0]),
        ])
        assert merged["counters"]["ops"] == 7
        assert merged["gauges"]["rss"] == 100.0

    def test_stats_merge_is_parallel_welford_exact(self):
        a_vals, b_vals = [1.0, 2.0, 4.0], [10.0, 20.0]
        merged = merge_snapshots([
            self._snap(0, 0, a_vals),
            self._snap(0, 0, b_vals),
        ])
        direct = RunningStats()
        a, b = RunningStats(), RunningStats()
        a.add_many(a_vals)
        b.add_many(b_vals)
        direct = a.merge(b)
        state = merged["stats"]["resp"]
        assert state["count"] == direct.count
        assert state["mean"] == direct.mean
        assert state["m2"] == direct._m2
        assert state["min"] == direct.minimum
        assert state["max"] == direct.maximum

    def test_histograms_add_count_for_count(self):
        merged = merge_snapshots([
            self._snap(0, 0, [], hist_values=[0.5, -1.0]),
            self._snap(0, 0, [], hist_values=[0.5, 11.0]),
        ])
        hist = merged["histograms"]["h"]
        assert hist["counts"][0] == 2
        assert hist["underflow"] == 1
        assert hist["overflow"] == 1

    def test_histogram_layout_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("h", 0.0, 10.0, 5)
        b = MetricsRegistry()
        b.histogram("h", 0.0, 10.0, 10)
        with pytest.raises(ValueError, match="bin layouts differ"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_stages_sum_per_name(self):
        parts = [
            {"stages": {"execute": {"wall_s": 1.0, "cpu_s": 0.5,
                                    "calls": 1, "rows": 10, "bytes": 100}}},
            {"stages": {"execute": {"wall_s": 2.0, "cpu_s": 1.0,
                                    "calls": 2, "rows": 5, "bytes": 50},
                        "spill": {"wall_s": 0.25, "cpu_s": 0.25,
                                  "calls": 1, "rows": 7, "bytes": 7}}},
        ]
        merged = merge_snapshots(parts)
        assert merged["stages"]["execute"]["wall_s"] == 3.0
        assert merged["stages"]["execute"]["rows"] == 15
        assert merged["stages"]["spill"]["calls"] == 1

    def test_empty_parts(self):
        merged = merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "stats": {},
                          "histograms": {}, "stages": {}}

    def test_merged_snapshot_is_json_serialisable(self):
        merged = merge_snapshots([
            self._snap(1, 1.0, [1.0], [1.0]),
            self._snap(2, 2.0, [], []),
        ])
        assert json.loads(json.dumps(merged))["counters"]["ops"] == 3
