"""Golden byte-identity with instrumentation on.

The observability layer's core guarantee: attaching an observer to a run
must not change a single byte of what the run produces.  The observer
only reads — no RNG stream is consumed, no record or column is written —
so the op stream, session summaries, simulated clock, on-disk stream
artifacts, and fleet tallies must all be identical with metrics enabled
on every backend.
"""

import json

import pytest

from repro.core import WorkloadGenerator, paper_workload_spec
from repro.fleet import FleetConfig, run_fleet
from repro.obs import RunObserver

SPEC = paper_workload_spec(n_users=3, total_files=150, seed=11)
BACKENDS = ("nfs", "fast", "fast-columnar")


class TestRunByteIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_observer_does_not_perturb_run(self, backend):
        bare = WorkloadGenerator(SPEC).run_simulated(
            sessions_per_user=2, backend=backend)
        observed = WorkloadGenerator(SPEC).run_simulated(
            sessions_per_user=2, backend=backend, observer=RunObserver())
        assert bare.log.operations == observed.log.operations
        assert bare.log.sessions == observed.log.sessions
        assert (bare.simulated_duration_us
                == observed.simulated_duration_us)
        assert len(bare.log.operations) > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_observer_with_progress_hook_does_not_perturb_run(self, backend):
        samples = []

        class Hook:
            def update(self, users, ops):
                samples.append((users, ops))

        bare = WorkloadGenerator(SPEC).run_simulated(
            sessions_per_user=1, backend=backend)
        observed = WorkloadGenerator(SPEC).run_simulated(
            sessions_per_user=1, backend=backend,
            observer=RunObserver(progress=Hook()))
        assert bare.log.operations == observed.log.operations
        assert samples, "progress hook never fired"


class TestStreamArtifactByteIdentity:
    def test_fleet_artifact_identical_with_metrics_on(self, tmp_path):
        blobs = {}
        for mode in ("bare", "metrics"):
            stream = tmp_path / f"{mode}.opstream"
            manifest = tmp_path / f"{mode}.manifest.json"
            run_fleet(FleetConfig(
                scenario="mixed-campus", users=8, shards=2, workers=1,
                seed=5, backend="fast-columnar", out_stream=str(stream),
                metrics_out=(str(manifest) if mode == "metrics" else None),
            ))
            blobs[mode] = stream.read_bytes()
        assert blobs["bare"] == blobs["metrics"]
        assert len(blobs["bare"]) > 0


class TestFleetMetrics:
    def test_manifest_counters_match_tally(self, tmp_path):
        manifest_path = tmp_path / "run.manifest.json"
        result = run_fleet(FleetConfig(
            scenario="mixed-campus", users=8, shards=2, workers=1, seed=5,
            backend="fast-columnar", metrics_out=str(manifest_path),
        ))
        assert result.metrics is not None
        assert result.metrics_out == str(manifest_path)
        counters = result.metrics["counters"]
        assert counters["ops"] == result.tally.operations
        assert counters["sessions"] == result.tally.sessions
        assert counters["users"] == 8
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format"] == "repro.run-manifest"
        assert manifest["metrics"]["counters"] == counters
        assert manifest["run"]["seed"] == 5
        assert manifest["run"]["backend"] == "fast-columnar"
        assert manifest["run"]["scenario"] == "mixed-campus"
        assert manifest["run"]["shards"] == 2

    def test_merged_shard_counters_shard_invariant(self):
        snapshots = []
        for shards in (1, 3):
            result = run_fleet(FleetConfig(
                scenario="mixed-campus", users=9, shards=shards, workers=1,
                seed=5, backend="fast-columnar", metrics_out="/dev/null",
            ))
            snapshots.append(result.metrics)
        assert snapshots[0]["counters"] == snapshots[1]["counters"]
        assert (snapshots[0]["stats"]["response_us"]["count"]
                == snapshots[1]["stats"]["response_us"]["count"])
        assert (snapshots[0]["histograms"]["response_us"]["counts"]
                == snapshots[1]["histograms"]["response_us"]["counts"])

    def test_tally_identical_with_and_without_metrics(self):
        bare = run_fleet(FleetConfig(
            scenario="batch-heavy", users=6, shards=2, workers=1, seed=9,
            backend="fast-columnar",
        ))
        observed = run_fleet(FleetConfig(
            scenario="batch-heavy", users=6, shards=2, workers=1, seed=9,
            backend="fast-columnar", metrics_out="/dev/null",
        ))
        assert bare.tally == observed.tally
        assert bare.aggregate_kv() == observed.aggregate_kv()
