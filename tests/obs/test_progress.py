"""Unit tests for progress formatting, the meter, and the queue sender."""

import io

from repro.obs import ProgressMeter, QueueProgressSender
from repro.obs.progress import _eta, _si, format_progress_line


class TestFormatting:
    def test_si_units(self):
        assert _si(950) == "950"
        assert _si(8_210) == "8.21k"
        assert _si(59_400_000) == "59.4M"
        assert _si(2_000_000_000) == "2G"

    def test_eta_units(self):
        assert _eta(42) == "42s"
        assert _eta(190) == "3m10s"
        assert _eta(7500) == "2h05m"

    def test_line_with_total_mid_run_has_eta(self):
        line = format_progress_line("fleet", 50, 100, 5000, 10.0)
        assert line.startswith("fleet: 50/100 users (50%)")
        assert "5k ops" in line
        assert "5.0 users/s" in line
        assert "eta 10s" in line

    def test_line_at_completion_drops_eta(self):
        line = format_progress_line("run", 100, 100, 1000, 10.0)
        assert "(100%)" in line
        assert "eta" not in line

    def test_line_without_total(self):
        line = format_progress_line("run", 7, None, 70, 1.0)
        assert line.startswith("run: 7 users")
        assert "eta" not in line

    def test_zero_elapsed_does_not_divide_by_zero(self):
        assert "users/s" in format_progress_line("run", 1, 10, 1, 0.0)


class TestProgressMeter:
    def _meter(self, **kwargs):
        stream = io.StringIO()
        kwargs.setdefault("interval_s", 0.0)
        return ProgressMeter(stream=stream, **kwargs), stream

    def test_update_paints_one_refreshing_line(self):
        meter, stream = self._meter(total_users=10, label="sim")
        meter.update(3, 300)
        out = stream.getvalue()
        assert out.startswith("\r\x1b[K")
        assert "sim: 3/10 users" in out

    def test_shards_aggregate(self):
        meter, stream = self._meter(total_users=20)
        meter.update_shard(0, 5, 100)
        meter.update_shard(1, 7, 200)
        assert "12/20 users" in stream.getvalue()
        assert "300 ops" in stream.getvalue()

    def test_finish_ends_with_newline(self):
        meter, stream = self._meter(total_users=4)
        meter.update(4, 40)
        meter.finish()
        assert stream.getvalue().endswith("\n")

    def test_finish_without_paints_still_clean(self):
        stream = io.StringIO()
        meter = ProgressMeter(total_users=4, stream=stream, interval_s=0.0)
        meter.finish()
        assert stream.getvalue().endswith("\n")

    def test_throttling_skips_repaints(self):
        meter, stream = self._meter(total_users=10)
        meter.update(1, 10)
        meter.interval_s = 3600.0  # throttle everything after the first paint
        meter.update(2, 20)
        assert stream.getvalue().count("\r") == 1

    def test_closed_stream_goes_quiet(self):
        stream = io.StringIO()
        meter = ProgressMeter(total_users=4, stream=stream, interval_s=0.0)
        stream.close()
        meter.update(1, 1)
        meter.finish()


class FakeQueue:
    def __init__(self, full=False):
        self.items = []
        self.full = full

    def put_nowait(self, item):
        if self.full:
            raise RuntimeError("queue full")
        self.items.append(item)


class TestQueueProgressSender:
    def test_update_sends_shard_sample(self):
        queue = FakeQueue()
        sender = QueueProgressSender(3, queue, min_interval_s=0.0)
        sender.update(5, 500)
        assert queue.items == [(3, 5, 500, False)]

    def test_throttle_drops_rapid_updates(self):
        queue = FakeQueue()
        sender = QueueProgressSender(0, queue, min_interval_s=3600.0)
        sender.update(1, 10)
        sender.update(2, 20)
        assert len(queue.items) == 1

    def test_finish_bypasses_throttle_and_marks_done(self):
        queue = FakeQueue()
        sender = QueueProgressSender(1, queue, min_interval_s=3600.0)
        sender.update(1, 10)
        sender.finish(9, 900)
        assert queue.items[-1] == (1, 9, 900, True)

    def test_full_queue_drops_silently(self):
        sender = QueueProgressSender(0, FakeQueue(full=True),
                                     min_interval_s=0.0)
        sender.update(1, 10)
        sender.finish(1, 10)
