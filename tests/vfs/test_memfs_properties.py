"""Property-based tests on memfs invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vfs import MemoryFileSystem, OpenFlags, Whence

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=8,
)


@given(chunks=st.lists(st.binary(min_size=0, max_size=256), max_size=20))
@settings(max_examples=60)
def test_sequential_write_then_read_roundtrip(chunks):
    """Reading back a sequentially written file returns exactly the bytes."""
    fs = MemoryFileSystem()
    fd = fs.creat("/f")
    for chunk in chunks:
        fs.write(fd, chunk)
    fs.close(fd)
    expected = b"".join(chunks)
    fd = fs.open("/f", OpenFlags.RDONLY)
    out = b""
    while True:
        piece = fs.read(fd, 64)
        if not piece:
            break
        out += piece
    fs.close(fd)
    assert out == expected
    assert fs.stat("/f").size == len(expected)


@given(file_names=st.lists(names, min_size=1, max_size=12, unique=True))
@settings(max_examples=60)
def test_bytes_used_matches_sum_of_sizes(file_names):
    """Capacity accounting equals the sum of live file sizes."""
    fs = MemoryFileSystem()
    total = 0
    for i, name in enumerate(file_names):
        payload = bytes([i % 251]) * (i * 7 % 97)
        fd = fs.creat(f"/{name}")
        fs.write(fd, payload)
        fs.close(fd)
        total += len(payload)
    assert fs.bytes_used == total
    for name in file_names:
        fs.unlink(f"/{name}")
    assert fs.bytes_used == 0


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.binary(min_size=0, max_size=64),
        ),
        max_size=15,
    )
)
@settings(max_examples=60)
def test_random_positioned_writes_match_shadow_model(ops):
    """memfs write/lseek semantics agree with a bytearray shadow model."""
    fs = MemoryFileSystem()
    fd = fs.creat("/f")
    shadow = bytearray()
    for offset, data in ops:
        fs.lseek(fd, offset, Whence.SET)
        fs.write(fd, data)
        end = offset + len(data)
        if end > len(shadow):
            shadow.extend(b"\x00" * (end - len(shadow)))
        shadow[offset:end] = data
    fs.close(fd)
    fd = fs.open("/f", OpenFlags.RDONLY)
    content = fs.read(fd, len(shadow) + 64)
    fs.close(fd)
    assert content == bytes(shadow)


@given(dir_names=st.lists(names, min_size=1, max_size=8, unique=True))
@settings(max_examples=40)
def test_mkdir_rmdir_restores_inode_count(dir_names):
    """Creating then removing directories returns to the initial state."""
    fs = MemoryFileSystem()
    base_inodes = fs.inode_count
    base_nlink = fs.stat("/").nlink
    for name in dir_names:
        fs.mkdir(f"/{name}")
    assert fs.stat("/").nlink == base_nlink + len(dir_names)
    for name in dir_names:
        fs.rmdir(f"/{name}")
    assert fs.inode_count == base_inodes
    assert fs.stat("/").nlink == base_nlink


@given(
    seed_names=st.lists(names, min_size=2, max_size=6, unique=True),
)
@settings(max_examples=40)
def test_listdir_always_sorted_and_complete(seed_names):
    fs = MemoryFileSystem()
    for name in seed_names:
        fd = fs.creat(f"/{name}")
        fs.close(fd)
    listing = fs.listdir("/")
    assert listing == sorted(seed_names)
