"""Unit tests for the in-memory file system."""

import pytest

from repro.vfs import (
    BadDescriptorError,
    DirectoryNotEmptyError,
    FileExistsFsError,
    FileKind,
    InvalidArgumentError,
    IsADirectoryFsError,
    MemoryFileSystem,
    NoSpaceError,
    NoSuchFileError,
    NotADirectoryFsError,
    OpenFlags,
    ReadOnlyDescriptorError,
    TooManyOpenFilesError,
    Whence,
)


@pytest.fixture
def fs():
    return MemoryFileSystem()


def write_file(fs, path, data: bytes):
    fd = fs.creat(path)
    fs.write(fd, data)
    fs.close(fd)


class TestOpenClose:
    def test_create_and_reopen(self, fs):
        fd = fs.open("/hello", OpenFlags.WRONLY | OpenFlags.CREAT)
        fs.close(fd)
        fd2 = fs.open("/hello", OpenFlags.RDONLY)
        fs.close(fd2)

    def test_open_missing_enoent(self, fs):
        with pytest.raises(NoSuchFileError):
            fs.open("/missing", OpenFlags.RDONLY)

    def test_excl_create_conflict(self, fs):
        write_file(fs, "/f", b"x")
        with pytest.raises(FileExistsFsError):
            fs.open("/f", OpenFlags.WRONLY | OpenFlags.CREAT | OpenFlags.EXCL)

    def test_close_twice_ebadf(self, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        with pytest.raises(BadDescriptorError):
            fs.close(fd)

    def test_descriptor_table_limit(self):
        fs = MemoryFileSystem(max_open_files=2)
        fs.creat("/a")
        fs.creat("/b")
        with pytest.raises(TooManyOpenFilesError):
            fs.creat("/c")

    def test_open_directory_for_write_eisdir(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryFsError):
            fs.open("/d", OpenFlags.WRONLY)

    def test_open_directory_readonly_allowed(self, fs):
        fs.mkdir("/d")
        fd = fs.open("/d", OpenFlags.RDONLY)
        fs.close(fd)

    def test_trunc_resets_content(self, fs):
        write_file(fs, "/f", b"old content")
        fd = fs.open("/f", OpenFlags.WRONLY | OpenFlags.TRUNC)
        fs.close(fd)
        assert fs.stat("/f").size == 0


class TestReadWrite:
    def test_roundtrip(self, fs):
        write_file(fs, "/f", b"hello world")
        fd = fs.open("/f", OpenFlags.RDONLY)
        assert fs.read(fd, 5) == b"hello"
        assert fs.read(fd, 100) == b" world"
        assert fs.read(fd, 10) == b""
        fs.close(fd)

    def test_write_returns_count(self, fs):
        fd = fs.creat("/f")
        assert fs.write(fd, b"abcde") == 5
        fs.close(fd)

    def test_read_from_writeonly_ebadf(self, fs):
        fd = fs.creat("/f")
        with pytest.raises(BadDescriptorError):
            fs.read(fd, 1)
        fs.close(fd)

    def test_write_to_readonly_rejected(self, fs):
        write_file(fs, "/f", b"x")
        fd = fs.open("/f", OpenFlags.RDONLY)
        with pytest.raises(ReadOnlyDescriptorError):
            fs.write(fd, b"y")
        fs.close(fd)

    def test_negative_read_einval(self, fs):
        write_file(fs, "/f", b"x")
        fd = fs.open("/f", OpenFlags.RDONLY)
        with pytest.raises(InvalidArgumentError):
            fs.read(fd, -1)
        fs.close(fd)

    def test_sparse_write_zero_fills(self, fs):
        fd = fs.creat("/f")
        fs.lseek(fd, 4, Whence.SET)
        fs.write(fd, b"ab")
        fs.close(fd)
        fd = fs.open("/f", OpenFlags.RDONLY)
        assert fs.read(fd, 10) == b"\x00\x00\x00\x00ab"
        fs.close(fd)

    def test_append_mode_writes_at_eof(self, fs):
        write_file(fs, "/f", b"start")
        fd = fs.open("/f", OpenFlags.WRONLY | OpenFlags.APPEND)
        fs.lseek(fd, 0, Whence.SET)
        fs.write(fd, b"+end")
        fs.close(fd)
        fd = fs.open("/f", OpenFlags.RDONLY)
        assert fs.read(fd, 100) == b"start+end"
        fs.close(fd)

    def test_independent_descriptor_offsets(self, fs):
        write_file(fs, "/f", b"abcdef")
        fd1 = fs.open("/f", OpenFlags.RDONLY)
        fd2 = fs.open("/f", OpenFlags.RDONLY)
        assert fs.read(fd1, 3) == b"abc"
        assert fs.read(fd2, 3) == b"abc"
        fs.close(fd1)
        fs.close(fd2)

    def test_overwrite_middle(self, fs):
        write_file(fs, "/f", b"aaaaaa")
        fd = fs.open("/f", OpenFlags.RDWR)
        fs.lseek(fd, 2, Whence.SET)
        fs.write(fd, b"XX")
        fs.lseek(fd, 0, Whence.SET)
        assert fs.read(fd, 6) == b"aaXXaa"
        fs.close(fd)


class TestLseek:
    def test_whence_set_cur_end(self, fs):
        write_file(fs, "/f", b"0123456789")
        fd = fs.open("/f", OpenFlags.RDONLY)
        assert fs.lseek(fd, 4, Whence.SET) == 4
        assert fs.lseek(fd, 2, Whence.CUR) == 6
        assert fs.lseek(fd, -1, Whence.END) == 9
        assert fs.read(fd, 1) == b"9"
        fs.close(fd)

    def test_seek_beyond_eof_allowed(self, fs):
        write_file(fs, "/f", b"ab")
        fd = fs.open("/f", OpenFlags.RDONLY)
        assert fs.lseek(fd, 100, Whence.SET) == 100
        assert fs.read(fd, 10) == b""
        fs.close(fd)

    def test_negative_offset_einval(self, fs):
        write_file(fs, "/f", b"ab")
        fd = fs.open("/f", OpenFlags.RDONLY)
        with pytest.raises(InvalidArgumentError):
            fs.lseek(fd, -10, Whence.SET)
        fs.close(fd)


class TestDirectories:
    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/d")
        write_file(fs, "/d/x", b"1")
        write_file(fs, "/d/y", b"2")
        assert fs.listdir("/d") == ["x", "y"]

    def test_mkdir_existing_eexist(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileExistsFsError):
            fs.mkdir("/d")

    def test_mkdir_missing_parent_enoent(self, fs):
        with pytest.raises(NoSuchFileError):
            fs.mkdir("/no/such/parent")

    def test_makedirs_creates_chain(self, fs):
        fs.makedirs("/a/b/c")
        assert fs.stat("/a/b/c").is_dir

    def test_makedirs_idempotent(self, fs):
        fs.makedirs("/a/b")
        fs.makedirs("/a/b")
        assert fs.stat("/a/b").is_dir

    def test_makedirs_through_file_enotdir(self, fs):
        write_file(fs, "/a", b"x")
        with pytest.raises(NotADirectoryFsError):
            fs.makedirs("/a/b")

    def test_rmdir_empty(self, fs):
        fs.mkdir("/d")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_rmdir_nonempty_enotempty(self, fs):
        fs.mkdir("/d")
        write_file(fs, "/d/f", b"x")
        with pytest.raises(DirectoryNotEmptyError):
            fs.rmdir("/d")

    def test_rmdir_file_enotdir(self, fs):
        write_file(fs, "/f", b"x")
        with pytest.raises(NotADirectoryFsError):
            fs.rmdir("/f")

    def test_listdir_file_enotdir(self, fs):
        write_file(fs, "/f", b"x")
        with pytest.raises(NotADirectoryFsError):
            fs.listdir("/f")

    def test_nlink_accounting(self, fs):
        assert fs.stat("/").nlink == 2
        fs.mkdir("/d")
        assert fs.stat("/").nlink == 3
        assert fs.stat("/d").nlink == 2
        fs.rmdir("/d")
        assert fs.stat("/").nlink == 2

    def test_path_through_file_enotdir(self, fs):
        write_file(fs, "/f", b"x")
        with pytest.raises(NotADirectoryFsError):
            fs.stat("/f/child")


class TestUnlinkAndLinks:
    def test_unlink_removes(self, fs):
        write_file(fs, "/f", b"x")
        fs.unlink("/f")
        assert not fs.exists("/f")

    def test_unlink_missing_enoent(self, fs):
        with pytest.raises(NoSuchFileError):
            fs.unlink("/missing")

    def test_unlink_directory_eisdir(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryFsError):
            fs.unlink("/d")

    def test_hard_link_shares_data(self, fs):
        write_file(fs, "/a", b"shared")
        fs.link("/a", "/b")
        assert fs.stat("/a").inode == fs.stat("/b").inode
        assert fs.stat("/a").nlink == 2
        fs.unlink("/a")
        fd = fs.open("/b", OpenFlags.RDONLY)
        assert fs.read(fd, 10) == b"shared"
        fs.close(fd)

    def test_link_existing_target_eexist(self, fs):
        write_file(fs, "/a", b"1")
        write_file(fs, "/b", b"2")
        with pytest.raises(FileExistsFsError):
            fs.link("/a", "/b")

    def test_data_freed_after_last_unlink(self, fs):
        write_file(fs, "/a", b"12345678")
        used = fs.bytes_used
        fs.link("/a", "/b")
        fs.unlink("/a")
        assert fs.bytes_used == used
        fs.unlink("/b")
        assert fs.bytes_used == used - 8


class TestRename:
    def test_simple_rename(self, fs):
        write_file(fs, "/a", b"data")
        fs.rename("/a", "/b")
        assert not fs.exists("/a")
        assert fs.stat("/b").size == 4

    def test_rename_replaces_file(self, fs):
        write_file(fs, "/a", b"new")
        write_file(fs, "/b", b"old-longer")
        fs.rename("/a", "/b")
        fd = fs.open("/b", OpenFlags.RDONLY)
        assert fs.read(fd, 100) == b"new"
        fs.close(fd)

    def test_rename_dir_into_dir(self, fs):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        write_file(fs, "/src/f", b"x")
        fs.rename("/src", "/dst/moved")
        assert fs.stat("/dst/moved/f").size == 1

    def test_rename_missing_enoent(self, fs):
        with pytest.raises(NoSuchFileError):
            fs.rename("/nope", "/x")

    def test_rename_file_over_dir_eisdir(self, fs):
        write_file(fs, "/f", b"x")
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryFsError):
            fs.rename("/f", "/d")

    def test_rename_dir_over_nonempty_dir(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        write_file(fs, "/b/f", b"x")
        with pytest.raises(DirectoryNotEmptyError):
            fs.rename("/a", "/b")

    def test_rename_onto_itself_noop(self, fs):
        write_file(fs, "/f", b"keep")
        fs.rename("/f", "/f")
        assert fs.stat("/f").size == 4


class TestTruncateAndCapacity:
    def test_truncate_shrink_and_grow(self, fs):
        write_file(fs, "/f", b"123456")
        fs.truncate("/f", 3)
        assert fs.stat("/f").size == 3
        fs.truncate("/f", 5)
        fd = fs.open("/f", OpenFlags.RDONLY)
        assert fs.read(fd, 10) == b"123\x00\x00"
        fs.close(fd)

    def test_truncate_negative_einval(self, fs):
        write_file(fs, "/f", b"x")
        with pytest.raises(InvalidArgumentError):
            fs.truncate("/f", -1)

    def test_capacity_enospc(self):
        fs = MemoryFileSystem(capacity_bytes=10)
        fd = fs.creat("/f")
        fs.write(fd, b"0123456789")
        with pytest.raises(NoSpaceError):
            fs.write(fd, b"overflow")
        fs.close(fd)

    def test_capacity_freed_by_unlink(self):
        fs = MemoryFileSystem(capacity_bytes=10)
        write_file(fs, "/a", b"0123456789")
        fs.unlink("/a")
        write_file(fs, "/b", b"0123456789")
        assert fs.bytes_used == 10

    def test_bytes_used_tracks_overwrites(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"aaaa")
        fs.lseek(fd, 0, Whence.SET)
        fs.write(fd, b"bb")
        fs.close(fd)
        assert fs.bytes_used == 4


class TestIntrospection:
    def test_stat_kinds(self, fs):
        fs.mkdir("/d")
        write_file(fs, "/f", b"x")
        assert fs.stat("/d").kind is FileKind.DIRECTORY
        assert fs.stat("/f").kind is FileKind.REGULAR
        assert fs.stat("/d").is_dir

    def test_fstat_matches_stat(self, fs):
        write_file(fs, "/f", b"abc")
        fd = fs.open("/f", OpenFlags.RDONLY)
        assert fs.fstat(fd).inode == fs.stat("/f").inode
        fs.close(fd)

    def test_walk(self, fs):
        fs.makedirs("/a/b")
        write_file(fs, "/a/f1", b"1")
        write_file(fs, "/a/b/f2", b"2")
        walked = list(fs.walk("/"))
        assert walked[0][0] == "/"
        paths = [entry[0] for entry in walked]
        assert "/a" in paths and "/a/b" in paths

    def test_inode_count(self, fs):
        base = fs.inode_count
        fs.mkdir("/d")
        write_file(fs, "/d/f", b"x")
        assert fs.inode_count == base + 2
        fs.unlink("/d/f")
        fs.rmdir("/d")
        assert fs.inode_count == base

    def test_open_descriptor_count(self, fs):
        assert fs.open_descriptor_count == 0
        fd = fs.creat("/f")
        assert fs.open_descriptor_count == 1
        fs.close(fd)
        assert fs.open_descriptor_count == 0

    def test_mtime_advances_on_write(self, fs):
        write_file(fs, "/f", b"x")
        before = fs.stat("/f").mtime
        fd = fs.open("/f", OpenFlags.WRONLY)
        fs.write(fd, b"y")
        fs.close(fd)
        assert fs.stat("/f").mtime > before
