"""Unit tests for virtual path handling."""

import pytest

from repro.vfs import (
    InvalidArgumentError,
    join,
    normalize,
    parent_and_name,
    split_components,
)


class TestSplitComponents:
    def test_simple(self):
        assert split_components("/a/b/c") == ["a", "b", "c"]

    def test_root(self):
        assert split_components("/") == []

    def test_collapses_duplicate_separators(self):
        assert split_components("//a///b") == ["a", "b"]

    def test_drops_dot(self):
        assert split_components("/a/./b/.") == ["a", "b"]

    def test_dotdot_pops(self):
        assert split_components("/a/b/../c") == ["a", "c"]

    def test_dotdot_at_root_is_root(self):
        assert split_components("/../..") == []

    def test_rejects_relative(self):
        with pytest.raises(InvalidArgumentError):
            split_components("a/b")

    def test_rejects_empty(self):
        with pytest.raises(InvalidArgumentError):
            split_components("")


class TestNormalize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/", "/"),
            ("/a//b/./c/..", "/a/b"),
            ("/a/b/", "/a/b"),
            ("///", "/"),
            ("/x/../y", "/y"),
        ],
    )
    def test_cases(self, raw, expected):
        assert normalize(raw) == expected


class TestParentAndName:
    def test_simple(self):
        assert parent_and_name("/a/b/c") == ("/a/b", "c")

    def test_top_level(self):
        assert parent_and_name("/file") == ("/", "file")

    def test_root_rejected(self):
        with pytest.raises(InvalidArgumentError):
            parent_and_name("/")


class TestJoin:
    def test_basic(self):
        assert join("/a", "b", "c") == "/a/b/c"

    def test_normalises(self):
        assert join("/a/", "b/", "../c") == "/a/c"

    def test_root_base(self):
        assert join("/", "x") == "/x"
