"""Unit tests for the real-directory backend (sandboxed os.* calls)."""

import os

import pytest

from repro.vfs import (
    FileExistsFsError,
    FileKind,
    LocalFileSystem,
    NoSuchFileError,
    OpenFlags,
    Whence,
)


@pytest.fixture
def fs(tmp_path):
    return LocalFileSystem(str(tmp_path / "sandbox"))


class TestLocalFileSystem:
    def test_roundtrip(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"hello")
        fs.close(fd)
        fd = fs.open("/f", OpenFlags.RDONLY)
        assert fs.read(fd, 10) == b"hello"
        fs.close(fd)

    def test_files_live_under_root(self, fs, tmp_path):
        fd = fs.creat("/sub-proof")
        fs.close(fd)
        assert os.path.exists(tmp_path / "sandbox" / "sub-proof")

    def test_dotdot_cannot_escape_sandbox(self, fs, tmp_path):
        fd = fs.creat("/../../escape")
        fs.close(fd)
        # The file must land inside the sandbox, not beside it.
        assert os.path.exists(tmp_path / "sandbox" / "escape")
        assert not os.path.exists(tmp_path / "escape")

    def test_enoent_translated(self, fs):
        with pytest.raises(NoSuchFileError):
            fs.open("/missing", OpenFlags.RDONLY)

    def test_eexist_translated(self, fs):
        fd = fs.creat("/f")
        fs.close(fd)
        with pytest.raises(FileExistsFsError):
            fs.open("/f", OpenFlags.CREAT | OpenFlags.EXCL | OpenFlags.WRONLY)

    def test_mkdir_listdir_rmdir(self, fs):
        fs.mkdir("/d")
        fd = fs.creat("/d/x")
        fs.close(fd)
        assert fs.listdir("/d") == ["x"]
        fs.unlink("/d/x")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_makedirs(self, fs):
        fs.makedirs("/a/b/c")
        assert fs.stat("/a/b/c").kind is FileKind.DIRECTORY

    def test_lseek_and_stat(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"0123456789")
        assert fs.lseek(fd, -4, Whence.END) == 6
        fs.close(fd)
        assert fs.stat("/f").size == 10

    def test_fstat(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"xyz")
        assert fs.fstat(fd).size == 3
        fs.close(fd)

    def test_rename(self, fs):
        fd = fs.creat("/old")
        fs.close(fd)
        fs.rename("/old", "/new")
        assert fs.exists("/new")
        assert not fs.exists("/old")

    def test_truncate(self, fs):
        fd = fs.creat("/f")
        fs.write(fd, b"abcdef")
        fs.close(fd)
        fs.truncate("/f", 2)
        assert fs.stat("/f").size == 2

    def test_same_workload_as_memfs(self, fs):
        """The two backends must accept an identical call sequence."""
        from repro.vfs import MemoryFileSystem

        for backend in (fs, MemoryFileSystem()):
            backend.makedirs("/u/dir")
            fd = backend.creat("/u/dir/f")
            backend.write(fd, b"payload")
            backend.close(fd)
            fd = backend.open("/u/dir/f", OpenFlags.RDONLY)
            assert backend.read(fd, 100) == b"payload"
            backend.close(fd)
            assert backend.listdir("/u/dir") == ["f"]
