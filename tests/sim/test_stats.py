"""Unit tests for statistics accumulators."""

import numpy as np
import pytest

from repro.sim import Delay, Engine, Histogram, RunningStats, smooth_counts
from repro.sim.stats import TimeWeightedValue


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.count == 0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5, 2, size=1000)
        stats = RunningStats()
        stats.add_many(data)
        assert stats.mean == pytest.approx(np.mean(data))
        assert stats.variance == pytest.approx(np.var(data))
        assert stats.sample_variance == pytest.approx(np.var(data, ddof=1))
        assert stats.minimum == np.min(data)
        assert stats.maximum == np.max(data)

    def test_single_value(self):
        stats = RunningStats()
        stats.add(3.0)
        assert stats.mean == 3.0
        assert stats.variance == 0.0

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(1)
        a_data, b_data = rng.normal(size=500), rng.normal(3, 2, size=700)
        a, b = RunningStats(), RunningStats()
        a.add_many(a_data)
        b.add_many(b_data)
        merged = a.merge(b)
        combined = np.concatenate([a_data, b_data])
        assert merged.count == 1200
        assert merged.mean == pytest.approx(np.mean(combined))
        assert merged.variance == pytest.approx(np.var(combined))

    def test_merge_with_empty(self):
        a = RunningStats()
        b = RunningStats()
        b.add_many([1.0, 2.0])
        assert a.merge(b).mean == 1.5
        assert b.merge(a).count == 2

    def test_summary_keys(self):
        stats = RunningStats()
        stats.add(1.0)
        assert set(stats.summary()) == {"count", "mean", "std", "min", "max"}


class TestTimeWeightedValue:
    def test_time_average(self):
        engine = Engine()
        signal = TimeWeightedValue(engine)

        def proc():
            signal.record(2.0)
            yield Delay(10.0)
            signal.record(4.0)
            yield Delay(10.0)
            signal.record(0.0)

        engine.spawn(proc())
        engine.run()
        # (2*10 + 4*10) / 20
        assert signal.time_average() == pytest.approx(3.0)

    def test_zero_time(self):
        engine = Engine()
        signal = TimeWeightedValue(engine)
        assert signal.time_average() == 0.0


class TestSmoothing:
    def test_window_one_is_identity(self):
        counts = [1.0, 5.0, 2.0]
        np.testing.assert_array_equal(smooth_counts(counts, window=1), counts)

    def test_window_three_averages(self):
        out = smooth_counts([0.0, 3.0, 0.0], window=3)
        np.testing.assert_allclose(out, [1.0, 1.0, 1.0])

    def test_mass_preserved_for_flat_signal(self):
        counts = np.full(10, 4.0)
        out = smooth_counts(counts, window=5, passes=3)
        np.testing.assert_allclose(out, counts)

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            smooth_counts([1.0, 2.0], window=2)

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(2)
        noisy = rng.poisson(10, size=50).astype(float)
        smooth = smooth_counts(noisy, window=5)
        assert np.var(smooth) < np.var(noisy)


class TestHistogram:
    def test_basic_binning(self):
        hist = Histogram(0.0, 10.0, 10)
        hist.add_many([0.5, 1.5, 1.6, 9.99])
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1
        assert hist.total == 4

    def test_top_edge_in_last_bin(self):
        hist = Histogram(0.0, 10.0, 10)
        hist.add(10.0)
        assert hist.counts[9] == 1
        assert hist.overflow == 0

    def test_under_and_overflow(self):
        hist = Histogram(0.0, 1.0, 2)
        hist.add(-0.1)
        hist.add(1.1)
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 0

    def test_centers_and_edges(self):
        hist = Histogram(0.0, 4.0, 4)
        np.testing.assert_allclose(hist.centers, [0.5, 1.5, 2.5, 3.5])
        assert len(hist.edges) == 5

    def test_smoothed_wraps_smooth_counts(self):
        hist = Histogram(0.0, 3.0, 3)
        hist.add_many([1.5, 1.5, 1.5])
        np.testing.assert_allclose(hist.smoothed(window=3), [1.0, 1.0, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 5)
