"""Unit tests for statistics accumulators."""

import numpy as np
import pytest

from repro.sim import Delay, Engine, Histogram, RunningStats, smooth_counts
from repro.sim.stats import TimeWeightedValue


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.count == 0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5, 2, size=1000)
        stats = RunningStats()
        stats.add_many(data)
        assert stats.mean == pytest.approx(np.mean(data))
        assert stats.variance == pytest.approx(np.var(data))
        assert stats.sample_variance == pytest.approx(np.var(data, ddof=1))
        assert stats.minimum == np.min(data)
        assert stats.maximum == np.max(data)

    def test_single_value(self):
        stats = RunningStats()
        stats.add(3.0)
        assert stats.mean == 3.0
        assert stats.variance == 0.0

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(1)
        a_data, b_data = rng.normal(size=500), rng.normal(3, 2, size=700)
        a, b = RunningStats(), RunningStats()
        a.add_many(a_data)
        b.add_many(b_data)
        merged = a.merge(b)
        combined = np.concatenate([a_data, b_data])
        assert merged.count == 1200
        assert merged.mean == pytest.approx(np.mean(combined))
        assert merged.variance == pytest.approx(np.var(combined))

    def test_merge_with_empty(self):
        a = RunningStats()
        b = RunningStats()
        b.add_many([1.0, 2.0])
        assert a.merge(b).mean == 1.5
        assert b.merge(a).count == 2

    def test_summary_keys(self):
        stats = RunningStats()
        stats.add(1.0)
        assert set(stats.summary()) == {"count", "mean", "std", "min", "max"}

    def test_merge_two_empties_stays_empty(self):
        merged = RunningStats().merge(RunningStats())
        assert merged.count == 0
        assert merged.mean == 0.0
        assert merged.variance == 0.0

    def test_merge_does_not_mutate_inputs(self):
        a, b = RunningStats(), RunningStats()
        a.add_many([1.0, 2.0])
        b.add_many([10.0, 20.0, 30.0])
        a.merge(b)
        assert a.count == 2 and b.count == 3
        assert a.mean == pytest.approx(1.5)
        assert b.mean == pytest.approx(20.0)

    def test_merge_all_empty_iterable(self):
        merged = RunningStats.merge_all([])
        assert merged.count == 0
        assert merged.summary()["min"] == 0.0

    def test_merge_all_with_empty_parts_interleaved(self):
        parts = [RunningStats() for _ in range(5)]
        parts[1].add_many([1.0, 3.0])
        parts[3].add_many([5.0])
        merged = RunningStats.merge_all(parts)
        assert merged.count == 3
        assert merged.mean == pytest.approx(3.0)
        assert merged.minimum == 1.0
        assert merged.maximum == 5.0

    def test_merge_all_only_empty_parts(self):
        merged = RunningStats.merge_all([RunningStats(), RunningStats()])
        assert merged.count == 0

    def test_state_round_trip(self):
        stats = RunningStats()
        stats.add_many([1.0, 2.0, 4.0])
        rebuilt = RunningStats.from_state(stats.as_state())
        assert rebuilt.count == stats.count
        assert rebuilt.mean == stats.mean
        assert rebuilt.variance == stats.variance
        assert rebuilt.minimum == stats.minimum
        assert rebuilt.maximum == stats.maximum

    def test_state_of_empty_serialises_none_extrema(self):
        state = RunningStats().as_state()
        assert state["min"] is None and state["max"] is None
        rebuilt = RunningStats.from_state(state)
        assert rebuilt.count == 0
        # A rebuilt empty must merge exactly like a fresh empty.
        other = RunningStats()
        other.add(7.0)
        assert rebuilt.merge(other).mean == 7.0

    def test_state_merge_matches_in_memory_merge(self):
        rng = np.random.default_rng(3)
        a, b = RunningStats(), RunningStats()
        a.add_many(rng.normal(size=100))
        b.add_many(rng.normal(2, 3, size=50))
        direct = a.merge(b)
        via_state = RunningStats.from_state(a.as_state()).merge(
            RunningStats.from_state(b.as_state()))
        assert via_state.count == direct.count
        assert via_state.mean == direct.mean
        assert via_state.variance == direct.variance


class TestTimeWeightedValue:
    def test_time_average(self):
        engine = Engine()
        signal = TimeWeightedValue(engine)

        def proc():
            signal.record(2.0)
            yield Delay(10.0)
            signal.record(4.0)
            yield Delay(10.0)
            signal.record(0.0)

        engine.spawn(proc())
        engine.run()
        # (2*10 + 4*10) / 20
        assert signal.time_average() == pytest.approx(3.0)

    def test_zero_time(self):
        engine = Engine()
        signal = TimeWeightedValue(engine)
        assert signal.time_average() == 0.0


class TestSmoothing:
    def test_window_one_is_identity(self):
        counts = [1.0, 5.0, 2.0]
        np.testing.assert_array_equal(smooth_counts(counts, window=1), counts)

    def test_window_three_averages(self):
        out = smooth_counts([0.0, 3.0, 0.0], window=3)
        np.testing.assert_allclose(out, [1.0, 1.0, 1.0])

    def test_mass_preserved_for_flat_signal(self):
        counts = np.full(10, 4.0)
        out = smooth_counts(counts, window=5, passes=3)
        np.testing.assert_allclose(out, counts)

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            smooth_counts([1.0, 2.0], window=2)

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(2)
        noisy = rng.poisson(10, size=50).astype(float)
        smooth = smooth_counts(noisy, window=5)
        assert np.var(smooth) < np.var(noisy)


class TestHistogram:
    def test_basic_binning(self):
        hist = Histogram(0.0, 10.0, 10)
        hist.add_many([0.5, 1.5, 1.6, 9.99])
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1
        assert hist.total == 4

    def test_top_edge_in_last_bin(self):
        hist = Histogram(0.0, 10.0, 10)
        hist.add(10.0)
        assert hist.counts[9] == 1
        assert hist.overflow == 0

    def test_under_and_overflow(self):
        hist = Histogram(0.0, 1.0, 2)
        hist.add(-0.1)
        hist.add(1.1)
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 0

    def test_centers_and_edges(self):
        hist = Histogram(0.0, 4.0, 4)
        np.testing.assert_allclose(hist.centers, [0.5, 1.5, 2.5, 3.5])
        assert len(hist.edges) == 5

    def test_smoothed_wraps_smooth_counts(self):
        hist = Histogram(0.0, 3.0, 3)
        hist.add_many([1.5, 1.5, 1.5])
        np.testing.assert_allclose(hist.smoothed(window=3), [1.0, 1.0, 1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 5)

    def test_add_array_matches_scalar_adds(self):
        rng = np.random.default_rng(4)
        # Mix of underflow, in-range, the exact top edge, and overflow.
        values = np.concatenate([
            rng.uniform(-5.0, 15.0, size=500),
            np.array([0.0, 10.0, -0.0001, 10.0001]),
        ])
        vectored = Histogram(0.0, 10.0, 7)
        vectored.add_array(values)
        scalar = Histogram(0.0, 10.0, 7)
        scalar.add_many(values)
        np.testing.assert_array_equal(vectored.counts, scalar.counts)
        assert vectored.underflow == scalar.underflow
        assert vectored.overflow == scalar.overflow

    def test_add_array_empty_is_noop(self):
        hist = Histogram(0.0, 1.0, 2)
        hist.add_array(np.array([]))
        assert hist.total == 0 and hist.underflow == 0 and hist.overflow == 0
