"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    Acquire,
    Delay,
    Engine,
    Join,
    Release,
    Resource,
    SimulationError,
)


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 9.0

    def test_ties_break_fifo(self):
        engine = Engine()
        order = []
        for tag in "abc":
            engine.schedule(1.0, lambda t=tag: order.append(t))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, lambda: fired.append(1))
        engine.run(until=5.0)
        assert fired == []
        assert engine.now == 5.0
        engine.run()
        assert fired == [1]

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def later():
            seen.append(engine.now)
            engine.schedule(2.0, lambda: seen.append(engine.now))

        engine.schedule(1.0, later)
        engine.run()
        assert seen == [1.0, 3.0]


class TestProcesses:
    def test_delay_advances_time(self):
        engine = Engine()

        def proc():
            yield Delay(4.0)
            return engine.now

        handle = engine.spawn(proc())
        engine.run()
        assert handle.done
        assert handle.result == 4.0

    def test_spawn_requires_generator(self):
        engine = Engine()

        def not_a_generator():
            return 42

        with pytest.raises(SimulationError):
            engine.spawn(not_a_generator)  # missing ()

    def test_multiple_processes_interleave(self):
        engine = Engine()
        trace = []

        def worker(name, step):
            for _ in range(3):
                yield Delay(step)
                trace.append((engine.now, name))

        engine.spawn(worker("fast", 1.0))
        engine.spawn(worker("slow", 2.0))
        engine.run()
        # At the t=2.0 tie, slow's wakeup was scheduled earlier (at t=0)
        # than fast's second one (at t=1), so FIFO puts slow first.
        assert trace == [
            (1.0, "fast"),
            (2.0, "slow"),
            (2.0, "fast"),
            (3.0, "fast"),
            (4.0, "slow"),
            (6.0, "slow"),
        ]

    def test_join_waits_for_result(self):
        engine = Engine()

        def child():
            yield Delay(5.0)
            return "payload"

        def parent():
            handle = engine.spawn(child(), name="child")
            value = yield Join(handle)
            return (engine.now, value)

        handle = engine.spawn(parent(), name="parent")
        engine.run()
        assert handle.result == (5.0, "payload")

    def test_join_on_finished_process(self):
        engine = Engine()

        def child():
            return "done"
            yield  # pragma: no cover - makes this a generator

        def parent(child_handle):
            value = yield Join(child_handle)
            return value

        child_handle = engine.spawn(child())
        engine.run()
        parent_handle = engine.spawn(parent(child_handle))
        engine.run()
        assert parent_handle.result == "done"

    def test_yield_from_subprocess(self):
        engine = Engine()

        def inner():
            yield Delay(3.0)
            return 7

        def outer():
            value = yield from inner()
            yield Delay(1.0)
            return value * 2

        handle = engine.spawn(outer())
        engine.run()
        assert handle.result == 14
        assert engine.now == 4.0

    def test_unknown_command_raises(self):
        engine = Engine()

        def bad():
            yield "not-a-command"

        engine.spawn(bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_process_exception_propagates(self):
        engine = Engine()

        def failing():
            yield Delay(1.0)
            raise ValueError("boom")

        handle = engine.spawn(failing())
        with pytest.raises(ValueError, match="boom"):
            engine.run()
        assert handle.done
        assert isinstance(handle.error, ValueError)

    def test_run_until_processes_finish(self):
        engine = Engine()

        def proc():
            yield Delay(2.0)
            return True

        handles = [engine.spawn(proc()) for _ in range(3)]
        engine.run_until_processes_finish(handles)
        assert all(h.done for h in handles)

    def test_deadlock_detection(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def holder():
            yield Acquire(resource)
            # never releases; second process starves
            return None

        def starved():
            yield Acquire(resource)
            return None

        engine.spawn(holder())
        victim = engine.spawn(starved())
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run_until_processes_finish([victim])

    def test_active_process_count(self):
        engine = Engine()

        def proc():
            yield Delay(1.0)

        engine.spawn(proc())
        engine.spawn(proc())
        assert engine.active_processes == 2
        engine.run()
        assert engine.active_processes == 0


class TestResources:
    def test_fifo_mutual_exclusion(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        trace = []

        def worker(name):
            yield Acquire(resource)
            trace.append((f"{name}-in", engine.now))
            yield Delay(10.0)
            trace.append((f"{name}-out", engine.now))
            yield Release(resource)

        engine.spawn(worker("a"))
        engine.spawn(worker("b"))
        engine.run()
        assert trace == [
            ("a-in", 0.0),
            ("a-out", 10.0),
            ("b-in", 10.0),
            ("b-out", 20.0),
        ]

    def test_capacity_two_runs_in_parallel(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        finish_times = []

        def worker():
            yield Acquire(resource)
            yield Delay(10.0)
            yield Release(resource)
            finish_times.append(engine.now)

        for _ in range(4):
            engine.spawn(worker())
        engine.run()
        assert finish_times == [10.0, 10.0, 20.0, 20.0]

    def test_release_idle_raises(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def bad():
            yield Release(resource)

        engine.spawn(bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_utilization_statistics(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def worker():
            yield Acquire(resource)
            yield Delay(5.0)
            yield Release(resource)
            yield Delay(5.0)

        engine.spawn(worker())
        engine.run()
        assert resource.utilization() == pytest.approx(0.5)
        assert resource.total_acquisitions == 1

    def test_queue_length_statistics(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)

        def worker():
            yield Acquire(resource)
            yield Delay(10.0)
            yield Release(resource)

        for _ in range(2):
            engine.spawn(worker())
        engine.run()
        # Second worker queued from t=0 to t=10 of a 20-unit run.
        assert resource.mean_queue_length() == pytest.approx(0.5)

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), capacity=0)
