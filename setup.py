"""Setup shim.

This environment has setuptools but no ``wheel`` package and no network, so
``pip install -e .`` cannot build a PEP 660 editable wheel.  ``python
setup.py develop`` (or ``pip install -e . --no-build-isolation`` on systems
with wheel available) installs the package equivalently.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
