"""Caches for the simulated file systems.

* :class:`BlockCache` — the server's buffer cache (LRU over fixed-size
  blocks).  A read that hits skips the disk entirely; this is the main
  reason one user's steady-state response times are network-bound.
* :class:`WholeFileCache` — AFS-style client cache: entire files keyed by
  path, validated by version stamps, evicted LRU by byte budget.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["BlockCache", "WholeFileCache"]


class BlockCache:
    """LRU cache of ``(path, block_number)`` keys.

    Only presence is tracked — the authoritative bytes live in the server's
    backing store; the cache determines whether the disk must be touched.
    """

    def __init__(self, capacity_blocks: int):
        if capacity_blocks < 0:
            raise ValueError(f"negative capacity {capacity_blocks}")
        self.capacity_blocks = capacity_blocks
        self._entries: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, path: str, block: int) -> bool:
        """True (and refresh recency) when the block is resident."""
        key = (path, block)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, path: str, block: int) -> None:
        """Make a block resident, evicting the LRU entry when full."""
        if self.capacity_blocks == 0:
            return
        key = (path, block)
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.capacity_blocks:
            self._entries.popitem(last=False)
        self._entries[key] = None

    def invalidate_file(self, path: str) -> None:
        """Drop every block of ``path`` (unlink/truncate/rename)."""
        stale = [key for key in self._entries if key[0] == path]
        for key in stale:
            del self._entries[key]

    @property
    def resident_blocks(self) -> int:
        """Blocks currently cached."""
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that hit (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class WholeFileCache:
    """AFS-style cache of whole files with version validation."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        # path -> (version, size)
        self._entries: OrderedDict[str, tuple[float, int]] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, path: str, version: float) -> bool:
        """True when ``path`` is cached at exactly ``version``."""
        entry = self._entries.get(path)
        if entry is not None and entry[0] == version:
            self._entries.move_to_end(path)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, path: str, version: float, size: int) -> None:
        """Cache a file, evicting LRU entries to fit the byte budget."""
        if size > self.capacity_bytes:
            return  # larger than the whole cache: bypass
        self.evict(path)
        while self._bytes + size > self.capacity_bytes and self._entries:
            _, (_, old_size) = self._entries.popitem(last=False)
            self._bytes -= old_size
        self._entries[path] = (version, size)
        self._bytes += size

    def evict(self, path: str) -> None:
        """Remove ``path`` if cached."""
        entry = self._entries.pop(path, None)
        if entry is not None:
            self._bytes -= entry[1]

    def update_version(self, path: str, version: float, size: int) -> None:
        """Refresh the stamp after the client itself wrote the file back."""
        if path in self._entries:
            self._bytes -= self._entries[path][1]
            self._entries[path] = (version, size)
            self._bytes += size
        else:
            self.insert(path, version, size)

    @property
    def bytes_used(self) -> int:
        """Total cached file bytes."""
        return self._bytes

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups that validated (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
