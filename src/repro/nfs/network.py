"""Shared-medium network model.

The thesis's testbed put every client on one 10 Mbit Ethernet segment, so
the wire itself is a contended resource: while one message's payload is
being clocked out, everyone else waits.  Propagation and protocol latency,
by contrast, overlap freely and are modelled as plain delays.

``transfer`` is a simulation sub-process; callers compose it with
``yield from``.
"""

from __future__ import annotations

from ..sim import Acquire, Delay, Engine, Release, Resource
from .timing import NetworkParameters

__all__ = ["NetworkLink"]


class NetworkLink:
    """A half-duplex shared link (classic Ethernet segment)."""

    def __init__(self, engine: Engine, params: NetworkParameters,
                 name: str = "ethernet"):
        self.engine = engine
        self.params = params
        self._medium = Resource(engine, capacity=1, name=name)
        self.messages_sent = 0
        self.bytes_sent = 0

    def transfer(self, payload_bytes: int):
        """Simulate one message of ``payload_bytes`` crossing the link.

        The shared medium is held for the whole message time — protocol
        overhead (preamble, headers, interframe gaps, collisions-and-
        retries averaged into ``latency_us``) plus payload serialisation —
        because on a CSMA/CD segment nothing else can transmit meanwhile.
        This makes the wire the system's principal bottleneck, which is
        what produces the near-linear response growth of Figure 5.6.
        """
        if payload_bytes < 0:
            raise ValueError(f"negative payload {payload_bytes}")
        hold = (
            self.params.latency_us
            + payload_bytes / self.params.bandwidth_bytes_per_us
        )
        if hold > 0:
            yield Acquire(self._medium)
            yield Delay(hold)
            yield Release(self._medium)
        self.messages_sent += 1
        self.bytes_sent += payload_bytes

    def utilization(self) -> float:
        """Time-average busy fraction of the medium."""
        return self._medium.utilization()

    def mean_queue_length(self) -> float:
        """Time-average number of messages waiting for the medium."""
        return self._medium.mean_queue_length()
