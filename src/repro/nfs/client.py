"""Simulated SUN NFS client.

Implements the syscall surface by translating every call into RPCs over
the shared network to the :class:`~repro.nfs.server.FileServer`:

* ``open``   → GETATTR (+ CREATE / SETATTR as flags demand)
* ``read``   → one READ RPC per ``max_transfer_bytes`` page
* ``write``  → one synchronous WRITE RPC per page (NFSv2 write-through)
* ``close``  → purely local (NFS is stateless)
* directory calls → their RPC counterparts

Request messages carry the RPC header plus any write payload; replies
carry the header plus any read payload.  Both directions cross the shared
medium, which is where multi-user contention (Figures 5.6–5.11) comes
from.
"""

from __future__ import annotations

from ..sim import Engine
from ..vfs import InvalidArgumentError
from .client_base import SimulatedClientBase
from .network import NetworkLink
from .server import FileServer
from .timing import NfsTiming

__all__ = ["NfsClient"]


class NfsClient(SimulatedClientBase):
    """A workstation's NFS client, shared by all its simulated users."""

    def __init__(self, engine: Engine, server: FileServer,
                 network: NetworkLink, timing: NfsTiming | None = None,
                 name: str = "nfs-client"):
        super().__init__(engine, timing or server.timing, name=name)
        self.server = server
        self.network = network

    # -- RPC plumbing -----------------------------------------------------------

    def _rpc(self, procedure, request_payload: int = 0, reply_payload: int = 0):
        """Round trip: request over the wire, server work, reply back."""
        params = self.timing.network
        yield from self.network.transfer(
            params.rpc_request_bytes + request_payload
        )
        result = yield from procedure
        yield from self.network.transfer(params.rpc_reply_bytes + reply_payload)
        return result

    # -- timed primitives required by the base class ------------------------------

    def _remote_getattr(self, path: str):
        return (yield from self._rpc(self.server.getattr(path)))

    def _remote_create(self, path: str):
        return (yield from self._rpc(self.server.create(path)))

    def _remote_truncate(self, path: str, size: int):
        return (yield from self._rpc(self.server.truncate(path, size)))

    def _timed_read(self, path: str, offset: int, size: int):
        """Paged READ RPCs; the reply carries the data."""
        page = self.timing.client.max_transfer_bytes
        collected = b""
        remaining = size
        position = offset
        while remaining > 0:
            chunk_size = min(page, remaining)
            chunk = yield from self._rpc(
                self.server.read(path, position, chunk_size),
                reply_payload=chunk_size,
            )
            collected += chunk
            position += len(chunk)
            remaining -= chunk_size
            if len(chunk) < chunk_size:
                break  # EOF
        return collected

    def _timed_write(self, path: str, offset: int, data: bytes):
        """Paged synchronous WRITE RPCs; the request carries the data."""
        page = self.timing.client.max_transfer_bytes
        written = 0
        while written < len(data):
            chunk = data[written:written + page]
            count = yield from self._rpc(
                self.server.write(path, offset + written, chunk),
                request_payload=len(chunk),
            )
            written += count
        return written

    # -- directory / namespace calls ------------------------------------------------

    def unlink(self, path: str):
        """Timed ``unlink(2)`` → REMOVE RPC."""
        yield from self._syscall()
        yield from self._rpc(self.server.remove(path))

    def mkdir(self, path: str):
        """Timed ``mkdir(2)`` → MKDIR RPC."""
        yield from self._syscall()
        yield from self._rpc(self.server.mkdir(path))

    def rmdir(self, path: str):
        """Timed ``rmdir(2)`` → RMDIR RPC."""
        yield from self._syscall()
        yield from self._rpc(self.server.rmdir(path))

    def listdir(self, path: str):
        """Timed directory scan → READDIR RPC (entries in the reply)."""
        yield from self._syscall()
        entries = yield from self._rpc(self.server.readdir(path))
        # Approximate reply payload: 32 bytes per directory entry.
        yield from self.network.transfer(32 * len(entries))
        return entries

    def rename(self, old: str, new: str):
        """Timed ``rename(2)`` → RENAME RPC."""
        yield from self._syscall()
        yield from self._rpc(self.server.rename(old, new))

    def truncate(self, path: str, size: int):
        """Timed ``truncate(2)`` → SETATTR RPC."""
        if size < 0:
            raise InvalidArgumentError(f"negative truncate size {size}")
        yield from self._syscall()
        yield from self._remote_truncate(path, size)
