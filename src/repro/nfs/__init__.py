"""Simulated distributed-file-system substrate.

Substitutes for the thesis's physical SUN NFS testbed: a shared network,
a file server (CPU + buffer cache + disk) over an in-memory store, and
three client personalities — NFS (paged RPCs, write-through), local disk
(no network, delayed writes) and AFS-like (whole-file caching).
"""

from .afs import AfsLikeFileSystem
from .cache import BlockCache, WholeFileCache
from .client import NfsClient
from .client_base import ClientOpenFile, SimulatedClientBase
from .disk import Disk
from .localdisk import LocalDiskFileSystem
from .network import NetworkLink
from .server import FileServer
from .timing import (
    AFS_LIKE_TIMING,
    STRICT_NFSV2_TIMING,
    LOCAL_DISK_TIMING,
    SUN_NFS_TIMING,
    ClientParameters,
    DiskParameters,
    NetworkParameters,
    NfsTiming,
    ServerParameters,
)

__all__ = [
    "AfsLikeFileSystem",
    "BlockCache",
    "WholeFileCache",
    "NfsClient",
    "ClientOpenFile",
    "SimulatedClientBase",
    "Disk",
    "LocalDiskFileSystem",
    "NetworkLink",
    "FileServer",
    "AFS_LIKE_TIMING",
    "STRICT_NFSV2_TIMING",
    "LOCAL_DISK_TIMING",
    "SUN_NFS_TIMING",
    "ClientParameters",
    "DiskParameters",
    "NetworkParameters",
    "NfsTiming",
    "ServerParameters",
]
