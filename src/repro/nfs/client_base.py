"""Shared client-side machinery for the simulated file systems.

Every simulated client (NFS, local-disk, AFS-like) exposes the same
syscall-level surface as :class:`repro.vfs.FileSystemAPI`, except that each
call is a *simulation sub-process* (a generator composed with
``yield from``) so time passes while it executes.  The USIM measures
response time by reading the engine clock around each call, exactly as the
thesis measured "the difference of before and after calling a system
call" (section 5.1).

This base class owns what every client shares: the descriptor table, POSIX
flag semantics (EXCL, TRUNC, APPEND, access-mode checks), and client-CPU
syscall overhead.  Subclasses implement the timed primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Delay, Engine
from ..vfs import (
    BadDescriptorError,
    FileExistsFsError,
    InvalidArgumentError,
    NoSuchFileError,
    OpenFlags,
    ReadOnlyDescriptorError,
    Stat,
    Whence,
)
from .timing import NfsTiming

__all__ = ["SimulatedClientBase", "ClientOpenFile"]


@dataclass
class ClientOpenFile:
    """Client-side open file description."""

    fd: int
    path: str
    flags: OpenFlags
    offset: int = 0


class SimulatedClientBase:
    """Descriptor table + POSIX open semantics over timed primitives.

    Subclasses provide (all generators):

    * ``_remote_getattr(path) -> Stat``
    * ``_remote_create(path) -> Stat``
    * ``_remote_truncate(path, size)``
    * ``_timed_read(path, offset, size) -> bytes``
    * ``_timed_write(path, offset, data) -> int``
    * ``_on_open(path, stat)`` / ``_on_close(open_file)`` — cache hooks
      (default no-ops).
    """

    def __init__(self, engine: Engine, timing: NfsTiming, name: str = "client"):
        self.engine = engine
        self.timing = timing
        self.name = name
        self._next_fd = 3
        self._open_files: dict[int, ClientOpenFile] = {}
        self.syscall_count = 0

    # -- local overhead --------------------------------------------------------

    def _syscall(self):
        """Client-side kernel entry/exit cost, paid by every call."""
        self.syscall_count += 1
        overhead = self.timing.client.syscall_overhead_us
        if overhead > 0:
            yield Delay(overhead)

    def _descriptor(self, fd: int) -> ClientOpenFile:
        open_file = self._open_files.get(fd)
        if open_file is None:
            raise BadDescriptorError(f"descriptor {fd} is not open")
        return open_file

    # -- hooks ---------------------------------------------------------------

    def _on_open(self, path: str, stat: Stat):
        """Cache hook after a successful open (default: nothing)."""
        return
        yield  # pragma: no cover - generator form for subclasses

    def _on_close(self, open_file: ClientOpenFile):
        """Cache hook before releasing a descriptor (default: nothing)."""
        return
        yield  # pragma: no cover

    # -- syscall surface ---------------------------------------------------------

    def open(self, path: str, flags: OpenFlags):
        """Timed ``open(2)``: lookup / create / truncate as flags demand."""
        flags = OpenFlags(flags)
        yield from self._syscall()
        try:
            stat = yield from self._remote_getattr(path)
            exists = True
        except NoSuchFileError:
            stat = None
            exists = False

        if exists and flags & OpenFlags.CREAT and flags & OpenFlags.EXCL:
            raise FileExistsFsError("exclusive create of existing path",
                                    path=path)
        if not exists:
            if not flags & OpenFlags.CREAT:
                raise NoSuchFileError("no such file or directory", path=path)
            stat = yield from self._remote_create(path)
        elif flags & OpenFlags.TRUNC and flags.writable and stat.size > 0:
            yield from self._remote_truncate(path, 0)
            stat = yield from self._remote_getattr(path)

        assert stat is not None
        yield from self._on_open(path, stat)
        fd = self._next_fd
        self._next_fd += 1
        self._open_files[fd] = ClientOpenFile(fd=fd, path=path, flags=flags)
        return fd

    def creat(self, path: str):
        """Timed ``creat(2)``."""
        return (yield from self.open(
            path, OpenFlags.WRONLY | OpenFlags.CREAT | OpenFlags.TRUNC
        ))

    def close(self, fd: int):
        """Timed ``close(2)`` (AFS pays its write-back here)."""
        open_file = self._descriptor(fd)
        yield from self._syscall()
        yield from self._on_close(open_file)
        del self._open_files[fd]

    def read(self, fd: int, size: int):
        """Timed ``read(2)`` at the descriptor offset."""
        if size < 0:
            raise InvalidArgumentError(f"negative read size {size}")
        open_file = self._descriptor(fd)
        if not open_file.flags.readable:
            raise BadDescriptorError(f"descriptor {fd} is write-only")
        yield from self._syscall()
        data = yield from self._timed_read(open_file.path, open_file.offset,
                                           size)
        open_file.offset += len(data)
        return data

    def write(self, fd: int, data: bytes):
        """Timed ``write(2)`` at the descriptor offset (or EOF for APPEND)."""
        open_file = self._descriptor(fd)
        if not open_file.flags.writable:
            raise ReadOnlyDescriptorError(f"descriptor {fd} is read-only")
        yield from self._syscall()
        if open_file.flags & OpenFlags.APPEND:
            stat = yield from self._remote_getattr(open_file.path)
            open_file.offset = stat.size
        count = yield from self._timed_write(open_file.path, open_file.offset,
                                             data)
        open_file.offset += count
        return count

    def lseek(self, fd: int, offset: int, whence: Whence = Whence.SET):
        """Timed ``lseek(2)`` (local: no server interaction for SET/CUR)."""
        open_file = self._descriptor(fd)
        yield from self._syscall()
        if whence == Whence.SET:
            new_offset = offset
        elif whence == Whence.CUR:
            new_offset = open_file.offset + offset
        elif whence == Whence.END:
            stat = yield from self._remote_getattr(open_file.path)
            new_offset = stat.size + offset
        else:
            raise InvalidArgumentError(f"bad whence {whence!r}")
        if new_offset < 0:
            raise InvalidArgumentError(f"seek to negative offset {new_offset}")
        open_file.offset = new_offset
        return new_offset

    def stat(self, path: str):
        """Timed ``stat(2)``."""
        yield from self._syscall()
        return (yield from self._remote_getattr(path))

    def fstat(self, fd: int):
        """Timed ``fstat(2)``."""
        open_file = self._descriptor(fd)
        yield from self._syscall()
        return (yield from self._remote_getattr(open_file.path))

    def exists(self, path: str):
        """Timed existence probe."""
        try:
            yield from self.stat(path)
            return True
        except NoSuchFileError:
            return False

    @property
    def open_descriptor_count(self) -> int:
        """Live descriptors on this client."""
        return len(self._open_files)
