"""Timing parameter sets for the simulated file systems.

These parameters play the role of the thesis's physical testbed (a SUN
3/50 diskless-style client against a SUN 4/490 server over 10 Mbit
Ethernet running SUN NFS).  They were calibrated so the *shapes* of the
paper's results hold:

* one heavy-I/O user sees a per-call mean around 1.3 ms with a large
  standard deviation (Table 5.3) — network round trip plus occasional
  disk positioning events;
* zero-think-time users drive the shared resources to saturation, so
  response time grows near-linearly with the number of users (Figure 5.6);
* think times of 5 000 µs vs 20 000 µs leave the system far from
  saturation, so their response curves nearly coincide (Figures 5.7–5.11);
* per-byte cost falls steeply with access size because per-call overheads
  are fixed (Figure 5.12).

All times are microseconds, matching the paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "NetworkParameters",
    "DiskParameters",
    "ServerParameters",
    "ClientParameters",
    "NfsTiming",
    "SUN_NFS_TIMING",
    "LOCAL_DISK_TIMING",
    "AFS_LIKE_TIMING",
    "STRICT_NFSV2_TIMING",
]


@dataclass(frozen=True)
class NetworkParameters:
    """Shared-medium network model (10 Mbit Ethernet-style)."""

    latency_us: float = 150.0
    """Per-message protocol overhead (preamble, headers, interframe gaps,
    averaged collision retries).  Occupies the shared medium."""

    bandwidth_bytes_per_us: float = 1.25
    """Payload throughput while holding the shared medium (10 Mbit/s)."""

    rpc_request_bytes: int = 128
    """RPC header + arguments for a request carrying no bulk data."""

    rpc_reply_bytes: int = 112
    """RPC header for a reply carrying no bulk data."""


@dataclass(frozen=True)
class DiskParameters:
    """Server disk model with positional locality.

    An access that continues where the previous one left off (same file,
    next byte) skips the positioning delay — sequential file I/O therefore
    pays mostly transfer time, while switching files pays a seek.
    """

    positioning_us: float = 12_000.0
    """Average seek + rotational latency for a non-contiguous access."""

    transfer_bytes_per_us: float = 3.0
    """Media transfer rate."""

    block_bytes: int = 8_192
    """Cache/transfer block size (NFS block size)."""


@dataclass(frozen=True)
class ServerParameters:
    """File-server CPU cost model."""

    cpu_per_op_us: float = 150.0
    """Fixed request-processing cost per RPC."""

    cpu_per_byte_us: float = 0.02
    """Marginal per-byte cost (checksums, copies)."""

    cache_blocks: int = 1_024
    """Server buffer-cache capacity in blocks (1024 x 8 KiB = 8 MiB)."""

    write_policy: str = "write-behind"
    """``"write-behind"``: writes land in the buffer cache and are flushed
    to disk in batches once ``flush_threshold_bytes`` of dirty data
    accumulate (the flush stalls the triggering request — the occasional
    multi-millisecond events behind Table 5.3's large standard
    deviations).  ``"write-through"``: every WRITE RPC reaches the disk
    before the reply (strict NFSv2; kept for the ablation benchmarks —
    production servers of the era commonly ran asynchronous)."""

    flush_threshold_bytes: int = 65_536
    """Dirty-data high-water mark triggering a batched flush."""


@dataclass(frozen=True)
class ClientParameters:
    """Client-machine cost model (the workstation all users share)."""

    syscall_overhead_us: float = 50.0
    """Kernel entry/exit and argument copying per system call."""

    max_transfer_bytes: int = 8_192
    """Largest READ/WRITE RPC payload; larger calls split into pages."""

    whole_file_cache_bytes: int = 16 * 1024 * 1024
    """AFS-style local cache capacity (only used by the AFS-like client)."""


@dataclass(frozen=True)
class NfsTiming:
    """Complete timing parameter set for a simulated file system."""

    network: NetworkParameters = field(default_factory=NetworkParameters)
    disk: DiskParameters = field(default_factory=DiskParameters)
    server: ServerParameters = field(default_factory=ServerParameters)
    client: ClientParameters = field(default_factory=ClientParameters)


SUN_NFS_TIMING = NfsTiming()
"""Default calibration: remote NFS over shared Ethernet, write-behind."""

LOCAL_DISK_TIMING = NfsTiming(
    network=NetworkParameters(latency_us=0.0, bandwidth_bytes_per_us=1e9),
    server=ServerParameters(cpu_per_op_us=60.0, cpu_per_byte_us=0.01),
)
"""A local UNIX file system: no network hop, delayed (cached) writes."""

AFS_LIKE_TIMING = NfsTiming()
"""Andrew-style: bulk whole-file transfers, local cache absorbs I/O."""

STRICT_NFSV2_TIMING = NfsTiming(
    server=ServerParameters(write_policy="write-through"),
)
"""Strict NFSv2 synchronous writes — the write-policy ablation point."""
