"""Local-disk file system: the no-network comparison point for section 5.3.

The same CPU/cache/disk server model as NFS, but the "server" is the local
machine: no RPCs cross a wire, and writes are delayed (the UNIX buffer
cache absorbs them) rather than write-through.  Comparing this backend
against :class:`~repro.nfs.client.NfsClient` under identical workloads is
exactly the file-system comparison procedure the thesis walks through.
"""

from __future__ import annotations

from ..sim import Engine
from ..vfs import InvalidArgumentError, MemoryFileSystem
from .client_base import SimulatedClientBase
from .server import FileServer
from .timing import LOCAL_DISK_TIMING, NfsTiming

__all__ = ["LocalDiskFileSystem"]


class LocalDiskFileSystem(SimulatedClientBase):
    """Syscall surface over a local CPU + buffer cache + disk."""

    def __init__(self, engine: Engine, timing: NfsTiming | None = None,
                 store: MemoryFileSystem | None = None,
                 name: str = "local-disk"):
        timing = timing or LOCAL_DISK_TIMING
        super().__init__(engine, timing, name=name)
        self.server = FileServer(engine, timing, store=store,
                                 name=f"{name}-kernel")

    # -- timed primitives --------------------------------------------------------

    def _remote_getattr(self, path: str):
        return (yield from self.server.getattr(path))

    def _remote_create(self, path: str):
        return (yield from self.server.create(path))

    def _remote_truncate(self, path: str, size: int):
        return (yield from self.server.truncate(path, size))

    def _timed_read(self, path: str, offset: int, size: int):
        return (yield from self.server.read(path, offset, size))

    def _timed_write(self, path: str, offset: int, data: bytes):
        return (yield from self.server.write(path, offset, data))

    # -- namespace calls ------------------------------------------------------------

    def unlink(self, path: str):
        """Timed ``unlink(2)``."""
        yield from self._syscall()
        yield from self.server.remove(path)

    def mkdir(self, path: str):
        """Timed ``mkdir(2)``."""
        yield from self._syscall()
        yield from self.server.mkdir(path)

    def rmdir(self, path: str):
        """Timed ``rmdir(2)``."""
        yield from self._syscall()
        yield from self.server.rmdir(path)

    def listdir(self, path: str):
        """Timed directory scan."""
        yield from self._syscall()
        return (yield from self.server.readdir(path))

    def rename(self, old: str, new: str):
        """Timed ``rename(2)``."""
        yield from self._syscall()
        yield from self.server.rename(old, new)

    def truncate(self, path: str, size: int):
        """Timed ``truncate(2)``."""
        if size < 0:
            raise InvalidArgumentError(f"negative truncate size {size}")
        yield from self._syscall()
        yield from self.server.truncate(path, size)
