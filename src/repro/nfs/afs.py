"""AFS-like file system: whole-file caching with write-back on close.

Modelled on the Andrew File System semantics described by Howard et al.
(the comparison target in the thesis's related work): ``open`` fetches the
entire file into a local cache if the cached copy is stale, reads and
writes are then purely local, and ``close`` ships the whole file back when
it was modified.  Small random touches of big files are expensive; heavy
re-reading of a working set is nearly free — a usefully different
trade-off for the section 5.3 comparison procedure.
"""

from __future__ import annotations

from ..sim import Delay, Engine
from ..vfs import InvalidArgumentError, Stat
from .cache import WholeFileCache
from .client_base import ClientOpenFile, SimulatedClientBase
from .network import NetworkLink
from .server import FileServer
from .timing import AFS_LIKE_TIMING, NfsTiming

__all__ = ["AfsLikeFileSystem"]

_LOCAL_COPY_US_PER_BYTE = 0.002  # memcpy-speed local cache access


class AfsLikeFileSystem(SimulatedClientBase):
    """Whole-file-caching client over the shared network."""

    def __init__(self, engine: Engine, server: FileServer,
                 network: NetworkLink, timing: NfsTiming | None = None,
                 name: str = "afs-client"):
        timing = timing or AFS_LIKE_TIMING
        super().__init__(engine, timing, name=name)
        self.server = server
        self.network = network
        self.cache = WholeFileCache(timing.client.whole_file_cache_bytes)
        self._dirty: set[str] = set()
        self.whole_file_fetches = 0
        self.whole_file_stores = 0

    # -- RPC plumbing ---------------------------------------------------------

    def _rpc(self, procedure, request_payload: int = 0, reply_payload: int = 0):
        params = self.timing.network
        yield from self.network.transfer(
            params.rpc_request_bytes + request_payload
        )
        result = yield from procedure
        yield from self.network.transfer(params.rpc_reply_bytes + reply_payload)
        return result

    # -- whole-file transfer on open/close ----------------------------------------

    def _on_open(self, path: str, stat: Stat):
        """Validate the cache; fetch the whole file on a miss."""
        if self.cache.lookup(path, stat.mtime):
            return
        # Bulk fetch: one request, data streamed back in the reply.
        yield from self._rpc(
            self.server.read(path, 0, stat.size), reply_payload=stat.size
        )
        self.cache.insert(path, stat.mtime, stat.size)
        self.whole_file_fetches += 1

    def _on_close(self, open_file: ClientOpenFile):
        """Write-back: ship the whole file to the server when dirty."""
        path = open_file.path
        if path not in self._dirty:
            return
        self._dirty.discard(path)
        stat = self.server.stat_nowait(path)
        yield from self._rpc(
            self.server.write(path, 0, self.server.store.read_at(
                path, 0, stat.size)),
            request_payload=stat.size,
        )
        new_stat = self.server.stat_nowait(path)
        self.cache.update_version(path, new_stat.mtime, new_stat.size)
        self.whole_file_stores += 1

    # -- timed primitives ------------------------------------------------------------

    def _remote_getattr(self, path: str):
        return (yield from self._rpc(self.server.getattr(path)))

    def _remote_create(self, path: str):
        stat = yield from self._rpc(self.server.create(path))
        self.cache.insert(path, stat.mtime, 0)
        return stat

    def _remote_truncate(self, path: str, size: int):
        result = yield from self._rpc(self.server.truncate(path, size))
        stat = self.server.stat_nowait(path)
        self.cache.update_version(path, stat.mtime, stat.size)
        return result

    def _timed_read(self, path: str, offset: int, size: int):
        """Local cache read: memcpy-speed, no network."""
        data = self.server.store.read_at(path, offset, size)
        cost = _LOCAL_COPY_US_PER_BYTE * len(data)
        if cost > 0:
            yield Delay(cost)
        return data

    def _timed_write(self, path: str, offset: int, data: bytes):
        """Local cache write; the server sees it at close time.

        Data correctness is kept by writing through to the authoritative
        store immediately (the experiments have a single client machine),
        while the *cost* of shipping it is deferred to ``_on_close``.
        """
        count = self.server.store.write_at(path, offset, data)
        self._dirty.add(path)
        cost = _LOCAL_COPY_US_PER_BYTE * count
        if cost > 0:
            yield Delay(cost)
        return count

    # -- namespace calls ----------------------------------------------------------------

    def unlink(self, path: str):
        """Timed ``unlink(2)`` → REMOVE RPC plus local cache eviction."""
        yield from self._syscall()
        yield from self._rpc(self.server.remove(path))
        self.cache.evict(path)
        self._dirty.discard(path)

    def mkdir(self, path: str):
        """Timed ``mkdir(2)``."""
        yield from self._syscall()
        yield from self._rpc(self.server.mkdir(path))

    def rmdir(self, path: str):
        """Timed ``rmdir(2)``."""
        yield from self._syscall()
        yield from self._rpc(self.server.rmdir(path))

    def listdir(self, path: str):
        """Timed directory scan."""
        yield from self._syscall()
        entries = yield from self._rpc(self.server.readdir(path))
        yield from self.network.transfer(32 * len(entries))
        return entries

    def rename(self, old: str, new: str):
        """Timed ``rename(2)``."""
        yield from self._syscall()
        yield from self._rpc(self.server.rename(old, new))
        self.cache.evict(old)
        self.cache.evict(new)

    def truncate(self, path: str, size: int):
        """Timed ``truncate(2)``."""
        if size < 0:
            raise InvalidArgumentError(f"negative truncate size {size}")
        yield from self._syscall()
        yield from self._remote_truncate(path, size)
