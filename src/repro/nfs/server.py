"""Simulated file server.

Plays the SUN 4/490 of the thesis's testbed: a CPU cost model, a buffer
cache, and one disk, in front of an authoritative in-memory store
(:class:`repro.vfs.MemoryFileSystem`).  Each RPC handler is a simulation
sub-process: it pays CPU time on the server's (contended) processor, then
touches the disk for cache misses and — under write-through semantics —
for every write.

Handlers perform the store operation *between* resource holds, so a
failing operation (ENOENT and friends) propagates to the client without
leaking a held resource.
"""

from __future__ import annotations

from ..sim import Acquire, Delay, Engine, Release, Resource
from ..vfs import MemoryFileSystem, NoSuchFileError, Stat
from .cache import BlockCache
from .disk import Disk
from .timing import NfsTiming

__all__ = ["FileServer"]

_META_BYTES = 512  # directory/inode update written synchronously


class FileServer:
    """CPU + cache + disk in front of a ``MemoryFileSystem`` store."""

    def __init__(self, engine: Engine, timing: NfsTiming,
                 store: MemoryFileSystem | None = None, name: str = "server"):
        policy = timing.server.write_policy
        if policy not in ("write-through", "write-behind"):
            raise ValueError(f"unknown write policy {policy!r}")
        self.engine = engine
        self.timing = timing
        self.store = store if store is not None else MemoryFileSystem()
        self.cpu = Resource(engine, capacity=1, name=f"{name}-cpu")
        self.disk = Disk(engine, timing.disk, name=f"{name}-disk")
        self.cache = BlockCache(timing.server.cache_blocks)
        self.rpc_count = 0
        self._dirty_bytes = 0
        self._flush_offset = 0
        self.flush_count = 0

    # -- cost helpers ---------------------------------------------------------

    def _cpu(self, payload_bytes: int = 0):
        """Pay per-op plus per-byte CPU cost on the contended processor."""
        cost = (
            self.timing.server.cpu_per_op_us
            + self.timing.server.cpu_per_byte_us * payload_bytes
        )
        yield Acquire(self.cpu)
        if cost > 0:
            yield Delay(cost)
        yield Release(self.cpu)
        self.rpc_count += 1

    def _block_range(self, offset: int, size: int) -> range:
        block = self.timing.disk.block_bytes
        first = offset // block
        last = (offset + max(size, 1) - 1) // block
        return range(first, last + 1)

    def _read_blocks(self, path: str, offset: int, size: int):
        """Fetch any non-resident blocks of the byte range from disk."""
        block = self.timing.disk.block_bytes
        for block_no in self._block_range(offset, size):
            if not self.cache.lookup(path, block_no):
                yield from self.disk.access(path, block_no * block, block)
                self.cache.insert(path, block_no)

    def _commit(self, nbytes: int, path: str, offset: int):
        """Make ``nbytes`` of new data durable per the write policy.

        Write-through goes straight to disk at the data's location.
        Write-behind accumulates dirty bytes in the buffer cache and, at
        the high-water mark, stalls the triggering request for one batched
        sequential flush — the bursty multi-millisecond events behind the
        paper's large response-time standard deviations.
        """
        if self.timing.server.write_policy == "write-through":
            yield from self.disk.access(path, offset, nbytes)
            return
        self._dirty_bytes += nbytes
        if self._dirty_bytes >= self.timing.server.flush_threshold_bytes:
            batch = self._dirty_bytes
            self._dirty_bytes = 0
            self.flush_count += 1
            yield from self.disk.access("\x00flush-log", self._flush_offset,
                                        batch)
            self._flush_offset += batch

    def _write_meta(self, path: str):
        """Metadata update (create/remove/rename/...) per the write policy."""
        yield from self._commit(_META_BYTES, f"{path}\x00meta", 0)

    # -- RPC procedures ---------------------------------------------------------
    # Every procedure is a generator; callers compose with ``yield from``.

    def getattr(self, path: str):
        """GETATTR: metadata lookup (CPU only — attributes are cached)."""
        yield from self._cpu()
        return self.store.stat(path)

    def lookup(self, path: str):
        """LOOKUP: resolve a path; same cost surface as GETATTR here."""
        yield from self._cpu()
        return self.store.stat(path)

    def create(self, path: str):
        """CREATE: make (or truncate) a regular file."""
        yield from self._cpu()
        fd = self.store.creat(path)
        self.store.close(fd)
        self.cache.invalidate_file(path)
        yield from self._write_meta(path)
        return self.store.stat(path)

    def read(self, path: str, offset: int, size: int):
        """READ: return file bytes, paying disk for cache misses."""
        yield from self._cpu(size)
        data = self.store.read_at(path, offset, size)
        yield from self._read_blocks(path, offset, max(len(data), 1))
        return data

    def write(self, path: str, offset: int, data: bytes):
        """WRITE: store bytes; durability cost per the write policy."""
        yield from self._cpu(len(data))
        count = self.store.write_at(path, offset, data)
        block = self.timing.disk.block_bytes
        for block_no in self._block_range(offset, count):
            self.cache.insert(path, block_no)
        yield from self._commit(count, path, offset)
        return count

    def remove(self, path: str):
        """REMOVE: unlink a file."""
        yield from self._cpu()
        self.store.unlink(path)
        self.cache.invalidate_file(path)
        yield from self._write_meta(path)

    def mkdir(self, path: str):
        """MKDIR."""
        yield from self._cpu()
        self.store.mkdir(path)
        yield from self._write_meta(path)

    def rmdir(self, path: str):
        """RMDIR."""
        yield from self._cpu()
        self.store.rmdir(path)
        yield from self._write_meta(path)

    def readdir(self, path: str):
        """READDIR: list entries (directory blocks assumed cached)."""
        yield from self._cpu()
        return self.store.listdir(path)

    def rename(self, old: str, new: str):
        """RENAME."""
        yield from self._cpu()
        self.store.rename(old, new)
        self.cache.invalidate_file(old)
        self.cache.invalidate_file(new)
        yield from self._write_meta(new)

    def truncate(self, path: str, size: int):
        """SETATTR(size)."""
        yield from self._cpu()
        self.store.truncate(path, size)
        self.cache.invalidate_file(path)
        yield from self._write_meta(path)

    def exists(self, path: str):
        """Existence probe built on GETATTR."""
        try:
            yield from self.getattr(path)
            return True
        except NoSuchFileError:
            return False

    def stat_nowait(self, path: str) -> Stat:
        """Untimed metadata peek for internal bookkeeping (no RPC cost)."""
        return self.store.stat(path)
