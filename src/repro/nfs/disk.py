"""Disk model with positional locality.

The server's disk is a single contended arm.  Sequential accesses within a
file continue from the previous head position and pay only transfer time;
any other access pays the average positioning (seek + rotation) cost.
This coarse model is what produces the heavy tail in response times the
paper reports (Table 5.3's standard deviations dwarf the means).
"""

from __future__ import annotations

from ..sim import Acquire, Delay, Engine, Release, Resource
from .timing import DiskParameters

__all__ = ["Disk"]


class Disk:
    """A single-spindle disk with a FIFO queue."""

    def __init__(self, engine: Engine, params: DiskParameters,
                 name: str = "disk"):
        self.engine = engine
        self.params = params
        self._arm = Resource(engine, capacity=1, name=name)
        self._head_position: tuple[str, int] | None = None
        self.total_accesses = 0
        self.sequential_accesses = 0
        self.bytes_transferred = 0

    def access(self, path: str, offset: int, size: int):
        """Simulate transferring ``size`` bytes of ``path`` at ``offset``.

        Sub-process; callers use ``yield from``.  Returns the service time
        spent (excluding queueing).
        """
        if size < 0 or offset < 0:
            raise ValueError("negative offset or size")
        yield Acquire(self._arm)
        sequential = self._head_position == (path, offset)
        service = size / self.params.transfer_bytes_per_us
        if not sequential:
            service += self.params.positioning_us
        else:
            self.sequential_accesses += 1
        if service > 0:
            yield Delay(service)
        yield Release(self._arm)
        self._head_position = (path, offset + size)
        self.total_accesses += 1
        self.bytes_transferred += size
        return service

    def utilization(self) -> float:
        """Time-average busy fraction of the arm."""
        return self._arm.utilization()

    def mean_queue_length(self) -> float:
        """Time-average number of queued requests."""
        return self._arm.mean_queue_length()
