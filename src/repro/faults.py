"""Deterministic fault injection for fleet runs (tests and chaos CI).

The determinism dividend of the paper's fixed-seed design is that failed
work can be re-executed byte-identically — but that property is only
trustworthy if it is *exercised*.  ``repro.faults`` makes failure a
first-class, reproducible input: a :class:`FaultSpec` names a shard, an
attempt number, and a trigger point, and the fleet layer arms exactly
those faults in exactly those workers.  Because every fault is plain
data (picklable, parseable from a CLI string), a chaos run is as
reproducible as a clean one — the same spec always dies in the same
place.

Fault kinds:

* ``kill`` — the worker process calls ``os._exit`` after forwarding
  exactly ``row`` op rows: a hard crash, no cleanup, no exception.
* ``stall`` — the worker sleeps ``seconds`` at ``row``: a hang, caught
  only by the supervisor's progress deadline.
* ``error`` — an :class:`InjectedFault` exception raised at ``row``:
  the catchable-failure path.
* ``enospc`` — ``OSError(ENOSPC)`` raised by the stream spill path when
  it is about to flush chunk ``chunk`` (fed through the
  ``flush_hook`` of :class:`~repro.core.streamfile.StreamWriter`).
* ``bitflip`` — one byte of the shard's finished stream artifact is
  XOR-flipped after close: silent corruption, caught only by CRC
  verification.

Faults fire on one attempt only (``attempt``, default 1), so a retried
or resumed shard runs clean — which is what lets the chaos tests assert
bit-for-bit recovery.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "FAULT_KINDS",
    "KILL_EXIT_CODE",
    "FaultError",
    "InjectedFault",
    "FaultSpec",
    "parse_fault",
    "random_faults",
    "FaultInjector",
    "build_injector",
]

FAULT_KINDS = ("kill", "stall", "error", "enospc", "bitflip")

KILL_EXIT_CODE = 66
"""Exit code of a ``kill``-faulted worker (distinguishable from signals)."""


class FaultError(ValueError):
    """A fault specification is malformed or inconsistent."""


class InjectedFault(RuntimeError):
    """The exception an ``error`` fault raises inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure: what dies, where, and on which attempt."""

    kind: str
    shard: int
    attempt: int = 1
    row: int | None = None
    chunk: int | None = None
    seconds: float = 3600.0
    offset: int | None = None  # bitflip byte offset (default: mid-file)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.shard < 0:
            raise FaultError(f"fault shard must be >= 0, got {self.shard}")
        if self.attempt < 1:
            raise FaultError(f"fault attempt must be >= 1, got {self.attempt}")
        if self.kind in ("kill", "stall", "error"):
            if self.row is None or self.row < 1:
                raise FaultError(
                    f"{self.kind} fault needs row >= 1, got {self.row}"
                )
        if self.kind == "enospc" and (self.chunk is None or self.chunk < 0):
            raise FaultError(
                f"enospc fault needs chunk >= 0, got {self.chunk}"
            )
        if self.kind == "stall" and not self.seconds > 0:
            raise FaultError(
                f"stall fault needs seconds > 0, got {self.seconds}"
            )

    @property
    def needs_stream(self) -> bool:
        """Whether this fault only makes sense with an op-stream artifact."""
        return self.kind in ("enospc", "bitflip")

    @property
    def needs_isolation(self) -> bool:
        """Whether this fault must run in a disposable worker process."""
        return self.kind in ("kill", "stall")

    def describe(self) -> str:
        """The canonical ``kind:key=value,...`` rendering."""
        parts = [f"shard={self.shard}"]
        if self.row is not None:
            parts.append(f"row={self.row}")
        if self.chunk is not None:
            parts.append(f"chunk={self.chunk}")
        if self.kind == "stall":
            parts.append(f"seconds={self.seconds:g}")
        if self.offset is not None:
            parts.append(f"offset={self.offset}")
        if self.attempt != 1:
            parts.append(f"attempt={self.attempt}")
        return f"{self.kind}:" + ",".join(parts)


_INT_KEYS = ("shard", "attempt", "row", "chunk", "offset")


def parse_fault(text: str) -> FaultSpec:
    """Parse ``kind:key=value,...`` (the ``--inject-fault`` syntax).

    Examples: ``kill:shard=0,row=120`` — crash shard 0's worker after
    120 op rows; ``enospc:shard=1,chunk=2`` — fail shard 1's third
    chunk flush with ENOSPC; ``stall:shard=0,row=10,seconds=30``;
    ``bitflip:shard=2``; append ``attempt=2`` to fire on the retry.
    """
    kind, _, rest = text.partition(":")
    kind = kind.strip()
    kwargs: dict = {}
    if rest.strip():
        for part in rest.split(","):
            key, sep, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not key or not value:
                raise FaultError(
                    f"bad fault field {part!r} in {text!r} "
                    "(want key=value)"
                )
            if key not in _INT_KEYS + ("seconds",):
                raise FaultError(f"unknown fault field {key!r} in {text!r}")
            try:
                kwargs[key] = (float(value) if key == "seconds"
                               else int(value))
            except ValueError:
                raise FaultError(
                    f"bad value {value!r} for fault field {key!r}"
                ) from None
    if "shard" not in kwargs:
        raise FaultError(f"fault {text!r} needs a shard=N field")
    return FaultSpec(kind=kind, **kwargs)


def random_faults(seed: int, n_shards: int, max_row: int,
                  kinds: Sequence[str] = ("kill",),
                  count: int = 1) -> tuple[FaultSpec, ...]:
    """A deterministic, seed-driven fault set (the chaos-test generator).

    Draws ``count`` faults from ``numpy.random.default_rng(seed)``:
    each picks a shard, a kind, and a trigger row in ``[1, max_row]``.
    The same seed always yields the same failures.
    """
    import numpy as np

    if max_row < 1:
        raise FaultError(f"max_row must be >= 1, got {max_row}")
    # detlint: ignore[no-global-rng] — explicit per-call seed; fault draws never touch run streams
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        shard = int(rng.integers(0, n_shards))
        row = int(rng.integers(1, max_row + 1))
        if kind == "enospc":
            out.append(FaultSpec(kind=kind, shard=shard, chunk=int(
                rng.integers(0, 4))))
        elif kind == "bitflip":
            out.append(FaultSpec(kind=kind, shard=shard))
        else:
            out.append(FaultSpec(kind=kind, shard=shard, row=row,
                                 seconds=3600.0))
    return tuple(out)


class _FaultSink:
    """Sink wrapper counting forwarded op rows and firing row faults.

    Rows *before* the trigger are forwarded, then the fault fires — so
    ``kill:row=N`` means exactly N rows reached the downstream sinks,
    which is what makes chunk-flush interactions reproducible.
    """

    def __init__(self, inner, triggers: "list[FaultSpec]"):
        self.inner = inner
        self._triggers = sorted(triggers, key=lambda s: s.row)
        self._rows = 0
        self._inner_batch = getattr(inner, "record_batch", None)

    def _fire(self, spec: FaultSpec) -> None:
        if spec.kind == "kill":
            # A hard crash: no exception, no cleanup, no flush of any
            # userspace buffer — exactly what SIGKILL or a panic leaves.
            os._exit(KILL_EXIT_CODE)
        if spec.kind == "stall":
            time.sleep(spec.seconds)
            return
        raise InjectedFault(
            f"injected failure at op row {spec.row} (shard fault "
            f"{spec.describe()!r})"
        )

    def record_op(self, record) -> None:
        self.inner.record_op(record)
        self._rows += 1
        while self._triggers and self._rows >= self._triggers[0].row:
            self._fire(self._triggers.pop(0))

    def record_batch(self, batch) -> None:
        while self._triggers and self._rows + len(batch) >= \
                self._triggers[0].row:
            spec = self._triggers.pop(0)
            cut = spec.row - self._rows
            head = batch.select(slice(0, cut))
            if self._inner_batch is not None:
                self._inner_batch(head)
            else:
                for record in head.to_records():
                    self.inner.record_op(record)
            self._rows += cut
            batch = batch.select(slice(cut, len(batch)))
            self._fire(spec)
        if len(batch):
            if self._inner_batch is not None:
                self._inner_batch(batch)
            else:
                for record in batch.to_records():
                    self.inner.record_op(record)
            self._rows += len(batch)

    def record_session(self, record) -> None:
        self.inner.record_session(record)


class FaultInjector:
    """The faults armed for one ``(shard, attempt)`` execution."""

    def __init__(self, specs: Iterable[FaultSpec]):
        self.specs = list(specs)
        self._row_faults = [s for s in self.specs
                            if s.kind in ("kill", "stall", "error")]
        self._enospc = [s for s in self.specs if s.kind == "enospc"]
        self._bitflips = [s for s in self.specs if s.kind == "bitflip"]

    def wrap_sink(self, sink):
        """Arm row-triggered faults around ``sink`` (or return it as-is)."""
        if not self._row_faults:
            return sink
        return _FaultSink(sink, list(self._row_faults))

    @property
    def spill_hook(self):
        """The ``flush_hook`` for the stream writer, or None."""
        if not self._enospc:
            return None

        def hook(chunk_index: int) -> None:
            for spec in list(self._enospc):
                if chunk_index == spec.chunk:
                    self._enospc.remove(spec)
                    raise OSError(
                        errno.ENOSPC,
                        f"injected ENOSPC at chunk flush {chunk_index} "
                        f"({spec.describe()!r})",
                    )

        return hook

    def corrupt_artifact(self, path: str) -> bool:
        """Apply any armed bitflip to the finished artifact at ``path``."""
        flipped = False
        for spec in self._bitflips:
            size = os.path.getsize(path)
            if size == 0:
                continue
            offset = spec.offset if spec.offset is not None else size // 2
            offset = min(max(offset, 0), size - 1)
            with open(path, "r+b") as fh:
                fh.seek(offset)
                byte = fh.read(1)
                fh.seek(offset)
                fh.write(bytes((byte[0] ^ 0xFF,)))
            flipped = True
        return flipped


def build_injector(specs: Iterable[FaultSpec], shard: int,
                   attempt: int) -> FaultInjector | None:
    """The injector for this shard execution, or None when nothing fires."""
    active = [s for s in specs if s.shard == shard and s.attempt == attempt]
    if not active:
        return None
    return FaultInjector(active)
