"""File-system substrate: the syscall-level surface the workload drives.

Exports the interface types, the in-memory backend, the real-directory
backend, and the errno-faithful error hierarchy.
"""

from .errors import (
    BadDescriptorError,
    CrossDeviceError,
    DirectoryNotEmptyError,
    FileExistsFsError,
    FileSystemError,
    InvalidArgumentError,
    IsADirectoryFsError,
    NoSpaceError,
    NoSuchFileError,
    NotADirectoryFsError,
    ReadOnlyDescriptorError,
    TooManyOpenFilesError,
    error_from_errno,
)
from .interface import FileKind, FileSystemAPI, OpenFlags, Stat, Whence
from .localfs import LocalFileSystem
from .memfs import Inode, MemoryFileSystem
from .path import is_abs, join, normalize, parent_and_name, split_components

__all__ = [
    "BadDescriptorError",
    "CrossDeviceError",
    "DirectoryNotEmptyError",
    "FileExistsFsError",
    "FileSystemError",
    "InvalidArgumentError",
    "IsADirectoryFsError",
    "NoSpaceError",
    "NoSuchFileError",
    "NotADirectoryFsError",
    "ReadOnlyDescriptorError",
    "TooManyOpenFilesError",
    "error_from_errno",
    "FileKind",
    "FileSystemAPI",
    "OpenFlags",
    "Stat",
    "Whence",
    "LocalFileSystem",
    "Inode",
    "MemoryFileSystem",
    "is_abs",
    "join",
    "normalize",
    "parent_and_name",
    "split_components",
]
