"""The syscall-level file-system interface.

The thesis chose "kernel level (or system call level in UNIX systems) as
the appropriate level at which to model the workload" (section 3.1.2).
This module defines exactly that surface: the UNIX file-access calls the
USIM emits, with POSIX flag and whence semantics.

Three backends implement the interface:

* :class:`repro.vfs.memfs.MemoryFileSystem` — in-memory inodes,
* :class:`repro.vfs.localfs.LocalFileSystem` — a sandboxed real directory,
* the simulated NFS / LocalDisk / AFS clients in :mod:`repro.nfs`, which
  add timing on top of a ``MemoryFileSystem`` store.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["OpenFlags", "Whence", "FileKind", "Stat", "FileSystemAPI"]


class OpenFlags(enum.IntFlag):
    """POSIX ``open(2)`` flags (the subset the workload model uses)."""

    RDONLY = 0x0
    WRONLY = 0x1
    RDWR = 0x2
    CREAT = 0x40
    EXCL = 0x80
    TRUNC = 0x200
    APPEND = 0x400

    @property
    def access_mode(self) -> "OpenFlags":
        """The two-bit access mode portion of the flags."""
        return OpenFlags(self & 0x3)

    @property
    def readable(self) -> bool:
        """True when the descriptor may be read."""
        return self.access_mode in (OpenFlags.RDONLY, OpenFlags.RDWR)

    @property
    def writable(self) -> bool:
        """True when the descriptor may be written."""
        return self.access_mode in (OpenFlags.WRONLY, OpenFlags.RDWR)


class Whence(enum.IntEnum):
    """``lseek(2)`` origin selector."""

    SET = 0
    CUR = 1
    END = 2


class FileKind(enum.Enum):
    """Inode type: the thesis's "directories are treated as special files"."""

    REGULAR = "regular"
    DIRECTORY = "directory"


@dataclass(frozen=True)
class Stat:
    """Subset of ``struct stat`` the workload generator consumes."""

    inode: int
    kind: FileKind
    size: int
    nlink: int
    ctime: float
    mtime: float
    atime: float

    @property
    def is_dir(self) -> bool:
        """True for directories."""
        return self.kind is FileKind.DIRECTORY


@runtime_checkable
class FileSystemAPI(Protocol):
    """The system-call surface both real and simulated backends provide.

    Methods mirror their UNIX counterparts; descriptors are small ints;
    failures raise :class:`repro.vfs.errors.FileSystemError` subclasses.
    """

    def open(self, path: str, flags: OpenFlags) -> int:
        """Open ``path``; returns a file descriptor."""
        ...

    def creat(self, path: str) -> int:
        """Create (or truncate) and open write-only: open(CREAT|TRUNC|WRONLY)."""
        ...

    def close(self, fd: int) -> None:
        """Release descriptor ``fd``."""
        ...

    def read(self, fd: int, size: int) -> bytes:
        """Read up to ``size`` bytes at the descriptor offset."""
        ...

    def write(self, fd: int, data: bytes) -> int:
        """Write ``data`` at the descriptor offset; returns bytes written."""
        ...

    def lseek(self, fd: int, offset: int, whence: Whence = Whence.SET) -> int:
        """Reposition the descriptor; returns the new absolute offset."""
        ...

    def stat(self, path: str) -> Stat:
        """Return metadata for ``path``."""
        ...

    def fstat(self, fd: int) -> Stat:
        """Return metadata for an open descriptor."""
        ...

    def unlink(self, path: str) -> None:
        """Remove a regular file's directory entry."""
        ...

    def mkdir(self, path: str) -> None:
        """Create a directory."""
        ...

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        ...

    def listdir(self, path: str) -> list[str]:
        """List directory entry names (sorted)."""
        ...

    def rename(self, old: str, new: str) -> None:
        """Atomically rename ``old`` to ``new``."""
        ...

    def truncate(self, path: str, size: int) -> None:
        """Set a regular file's length to ``size``."""
        ...

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves to an inode."""
        ...
