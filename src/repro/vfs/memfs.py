"""In-memory Unix-like file system.

This is the substrate the simulated experiments run against: a complete
inode-based file system with directories, hard links, per-descriptor
offsets, POSIX open flags and errno-faithful failures.  It also serves as
the storage engine inside the simulated NFS/AFS servers (which add timing
on top).

The thesis's File System Creator "builds a new file system according to
user-specified parameters" to avoid perturbing real data (section 4.1.2);
``MemoryFileSystem`` is that new file system when experiments are run in
simulation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from . import path as vpath
from .errors import (
    BadDescriptorError,
    DirectoryNotEmptyError,
    FileExistsFsError,
    InvalidArgumentError,
    IsADirectoryFsError,
    NoSpaceError,
    NoSuchFileError,
    NotADirectoryFsError,
    ReadOnlyDescriptorError,
    TooManyOpenFilesError,
)
from .interface import FileKind, OpenFlags, Stat, Whence

__all__ = ["MemoryFileSystem", "Inode"]


@dataclass
class Inode:
    """A file or directory node.

    Regular files hold their bytes in ``data``; directories map entry name
    to child inode number in ``entries``.
    """

    number: int
    kind: FileKind
    nlink: int = 1
    ctime: float = 0.0
    mtime: float = 0.0
    atime: float = 0.0
    data: bytearray = field(default_factory=bytearray)
    entries: dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Byte length for files, entry count for directories."""
        if self.kind is FileKind.DIRECTORY:
            return len(self.entries)
        return len(self.data)


@dataclass
class _OpenFile:
    """An open file description: inode + offset + flags."""

    fd: int
    inode: Inode
    flags: OpenFlags
    offset: int = 0


class MemoryFileSystem:
    """A complete in-memory file system implementing ``FileSystemAPI``.

    Parameters
    ----------
    capacity_bytes:
        Optional total data capacity; writes beyond it raise ENOSPC.  Lets
        failure-injection tests exercise the USIM's behaviour on full disks.
    max_open_files:
        Size of the descriptor table (EMFILE beyond it).
    """

    def __init__(self, capacity_bytes: int | None = None,
                 max_open_files: int = 1024):
        if capacity_bytes is not None and capacity_bytes < 0:
            raise InvalidArgumentError("capacity_bytes must be >= 0")
        if max_open_files < 1:
            raise InvalidArgumentError("max_open_files must be >= 1")
        self.capacity_bytes = capacity_bytes
        self.max_open_files = max_open_files
        self._inode_numbers = itertools.count(2)
        self._clock = itertools.count(1)
        self.root = Inode(number=1, kind=FileKind.DIRECTORY, nlink=2)
        self._inodes: dict[int, Inode] = {1: self.root}
        self._open_files: dict[int, _OpenFile] = {}
        self._next_fd = 3  # reserve 0/1/2 like a real process would
        self._bytes_used = 0

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        """Logical timestamp: a monotonically increasing operation counter.

        Wall-clock time would make simulated runs non-reproducible; the
        workload model only needs ordering.
        """
        return float(next(self._clock))

    def _lookup(self, path: str) -> Inode:
        """Resolve ``path`` to an inode or raise ENOENT/ENOTDIR."""
        node = self.root
        for part in vpath.split_components(path):
            if node.kind is not FileKind.DIRECTORY:
                raise NotADirectoryFsError(
                    f"{part!r} reached through a non-directory", path=path
                )
            child_num = node.entries.get(part)
            if child_num is None:
                raise NoSuchFileError("no such file or directory", path=path)
            node = self._inodes[child_num]
        return node

    def _lookup_parent(self, path: str) -> tuple[Inode, str]:
        """Resolve the parent directory of ``path``; returns (dir, name)."""
        parent_path, name = vpath.parent_and_name(path)
        parent = self._lookup(parent_path)
        if parent.kind is not FileKind.DIRECTORY:
            raise NotADirectoryFsError("parent is not a directory", path=path)
        return parent, name

    def _descriptor(self, fd: int) -> _OpenFile:
        open_file = self._open_files.get(fd)
        if open_file is None:
            raise BadDescriptorError(f"descriptor {fd} is not open")
        return open_file

    def _allocate_fd(self, inode: Inode, flags: OpenFlags) -> int:
        if len(self._open_files) >= self.max_open_files:
            raise TooManyOpenFilesError(
                f"descriptor table full ({self.max_open_files})"
            )
        fd = self._next_fd
        self._next_fd += 1
        self._open_files[fd] = _OpenFile(fd=fd, inode=inode, flags=flags)
        return fd

    def _charge_bytes(self, delta: int, path_hint: str | None = None) -> None:
        """Account data growth against the capacity limit."""
        if delta <= 0:
            self._bytes_used += delta
            return
        if (
            self.capacity_bytes is not None
            and self._bytes_used + delta > self.capacity_bytes
        ):
            raise NoSpaceError(
                f"file system full ({self.capacity_bytes} bytes)",
                path=path_hint,
            )
        self._bytes_used += delta

    # -- syscall surface -----------------------------------------------------

    def open(self, path: str, flags: OpenFlags) -> int:
        """Open ``path`` per POSIX ``open(2)`` semantics."""
        flags = OpenFlags(flags)
        try:
            inode = self._lookup(path)
            exists = True
        except NoSuchFileError:
            inode = None
            exists = False

        if exists and flags & OpenFlags.CREAT and flags & OpenFlags.EXCL:
            raise FileExistsFsError("exclusive create of existing path", path=path)
        if not exists:
            if not flags & OpenFlags.CREAT:
                raise NoSuchFileError("no such file or directory", path=path)
            parent, name = self._lookup_parent(path)
            inode = self._make_inode(FileKind.REGULAR)
            parent.entries[name] = inode.number
            parent.mtime = inode.ctime
        assert inode is not None

        if inode.kind is FileKind.DIRECTORY:
            if flags.writable:
                raise IsADirectoryFsError("cannot open directory for writing",
                                          path=path)
        elif flags & OpenFlags.TRUNC and flags.writable and inode.data:
            self._charge_bytes(-len(inode.data))
            inode.data = bytearray()
            inode.mtime = self._now()

        return self._allocate_fd(inode, flags)

    def creat(self, path: str) -> int:
        """``creat(2)``: open(path, WRONLY | CREAT | TRUNC)."""
        return self.open(
            path, OpenFlags.WRONLY | OpenFlags.CREAT | OpenFlags.TRUNC
        )

    def close(self, fd: int) -> None:
        """Release a descriptor; EBADF when not open."""
        self._descriptor(fd)
        del self._open_files[fd]

    def read(self, fd: int, size: int) -> bytes:
        """Read up to ``size`` bytes from the descriptor offset."""
        if size < 0:
            raise InvalidArgumentError(f"negative read size {size}")
        open_file = self._descriptor(fd)
        if not open_file.flags.readable:
            raise BadDescriptorError(f"descriptor {fd} is write-only")
        inode = open_file.inode
        if inode.kind is FileKind.DIRECTORY:
            raise IsADirectoryFsError("read(2) on a directory")
        start = open_file.offset
        chunk = bytes(inode.data[start:start + size])
        open_file.offset = start + len(chunk)
        inode.atime = self._now()
        return chunk

    def write(self, fd: int, data: bytes) -> int:
        """Write ``data`` at the descriptor offset (or EOF with APPEND)."""
        open_file = self._descriptor(fd)
        if not open_file.flags.writable:
            raise ReadOnlyDescriptorError(f"descriptor {fd} is read-only")
        inode = open_file.inode
        if open_file.flags & OpenFlags.APPEND:
            open_file.offset = len(inode.data)
        end = open_file.offset + len(data)
        growth = max(0, end - len(inode.data))
        self._charge_bytes(growth)
        if growth:
            inode.data.extend(b"\x00" * growth)
        inode.data[open_file.offset:end] = data
        open_file.offset = end
        inode.mtime = self._now()
        return len(data)

    def lseek(self, fd: int, offset: int, whence: Whence = Whence.SET) -> int:
        """Reposition a descriptor; returns the new offset."""
        open_file = self._descriptor(fd)
        if whence == Whence.SET:
            new_offset = offset
        elif whence == Whence.CUR:
            new_offset = open_file.offset + offset
        elif whence == Whence.END:
            new_offset = len(open_file.inode.data) + offset
        else:
            raise InvalidArgumentError(f"bad whence {whence!r}")
        if new_offset < 0:
            raise InvalidArgumentError(f"seek to negative offset {new_offset}")
        open_file.offset = new_offset
        return new_offset

    def stat(self, path: str) -> Stat:
        """Metadata for ``path``."""
        return self._stat_of(self._lookup(path))

    def fstat(self, fd: int) -> Stat:
        """Metadata for an open descriptor."""
        return self._stat_of(self._descriptor(fd).inode)

    def unlink(self, path: str) -> None:
        """Remove a file entry; data is freed when the last link goes."""
        parent, name = self._lookup_parent(path)
        child_num = parent.entries.get(name)
        if child_num is None:
            raise NoSuchFileError("no such file or directory", path=path)
        child = self._inodes[child_num]
        if child.kind is FileKind.DIRECTORY:
            raise IsADirectoryFsError("unlink(2) on a directory", path=path)
        del parent.entries[name]
        parent.mtime = self._now()
        child.nlink -= 1
        if child.nlink == 0:
            self._charge_bytes(-len(child.data))
            del self._inodes[child_num]

    def link(self, existing: str, new: str) -> None:
        """Create a hard link ``new`` to ``existing``."""
        inode = self._lookup(existing)
        if inode.kind is FileKind.DIRECTORY:
            raise IsADirectoryFsError("hard link to a directory", path=existing)
        parent, name = self._lookup_parent(new)
        if name in parent.entries:
            raise FileExistsFsError("link target exists", path=new)
        parent.entries[name] = inode.number
        inode.nlink += 1
        parent.mtime = self._now()

    def mkdir(self, path: str) -> None:
        """Create a directory; EEXIST when the name is taken."""
        parent, name = self._lookup_parent(path)
        if name in parent.entries:
            raise FileExistsFsError("path already exists", path=path)
        child = self._make_inode(FileKind.DIRECTORY)
        child.nlink = 2  # "." plus the parent entry
        parent.entries[name] = child.number
        parent.nlink += 1
        parent.mtime = self._now()

    def makedirs(self, path: str) -> None:
        """Create ``path`` and any missing ancestors (idempotent)."""
        parts = vpath.split_components(path)
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            if not self.exists(current):
                self.mkdir(current)
            elif not self.stat(current).is_dir:
                raise NotADirectoryFsError(
                    "path component is a file", path=current
                )

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        parent, name = self._lookup_parent(path)
        child_num = parent.entries.get(name)
        if child_num is None:
            raise NoSuchFileError("no such file or directory", path=path)
        child = self._inodes[child_num]
        if child.kind is not FileKind.DIRECTORY:
            raise NotADirectoryFsError("rmdir(2) on a file", path=path)
        if child.entries:
            raise DirectoryNotEmptyError("directory not empty", path=path)
        del parent.entries[name]
        del self._inodes[child_num]
        parent.nlink -= 1
        parent.mtime = self._now()

    def listdir(self, path: str) -> list[str]:
        """Sorted entry names of a directory."""
        inode = self._lookup(path)
        if inode.kind is not FileKind.DIRECTORY:
            raise NotADirectoryFsError("listdir on a file", path=path)
        return sorted(inode.entries)

    def rename(self, old: str, new: str) -> None:
        """Rename ``old`` to ``new``, replacing a compatible target."""
        old_parent, old_name = self._lookup_parent(old)
        if old_name not in old_parent.entries:
            raise NoSuchFileError("no such file or directory", path=old)
        moving_num = old_parent.entries[old_name]
        moving = self._inodes[moving_num]
        new_parent, new_name = self._lookup_parent(new)

        target_num = new_parent.entries.get(new_name)
        if target_num is not None:
            if target_num == moving_num:
                return  # rename onto itself is a no-op
            target = self._inodes[target_num]
            if target.kind is FileKind.DIRECTORY:
                if moving.kind is not FileKind.DIRECTORY:
                    raise IsADirectoryFsError("target is a directory", path=new)
                if target.entries:
                    raise DirectoryNotEmptyError("target not empty", path=new)
                del self._inodes[target_num]
                new_parent.nlink -= 1
            else:
                if moving.kind is FileKind.DIRECTORY:
                    raise NotADirectoryFsError("target is a file", path=new)
                target.nlink -= 1
                if target.nlink == 0:
                    self._charge_bytes(-len(target.data))
                    del self._inodes[target_num]

        del old_parent.entries[old_name]
        new_parent.entries[new_name] = moving_num
        if moving.kind is FileKind.DIRECTORY and old_parent is not new_parent:
            old_parent.nlink -= 1
            new_parent.nlink += 1
        stamp = self._now()
        old_parent.mtime = stamp
        new_parent.mtime = stamp

    def truncate(self, path: str, size: int) -> None:
        """Set a file's length (zero-fill growth, free shrinkage)."""
        if size < 0:
            raise InvalidArgumentError(f"negative truncate size {size}")
        inode = self._lookup(path)
        if inode.kind is FileKind.DIRECTORY:
            raise IsADirectoryFsError("truncate(2) on a directory", path=path)
        delta = size - len(inode.data)
        self._charge_bytes(delta, path_hint=path)
        if delta > 0:
            inode.data.extend(b"\x00" * delta)
        else:
            del inode.data[size:]
        inode.mtime = self._now()

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves."""
        try:
            self._lookup(path)
            return True
        except (NoSuchFileError, NotADirectoryFsError):
            return False

    # -- positioned access (pread/pwrite-style, used by simulated servers) ----

    def read_at(self, path: str, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset`` without a descriptor."""
        if offset < 0 or size < 0:
            raise InvalidArgumentError("negative offset or size")
        inode = self._lookup(path)
        if inode.kind is FileKind.DIRECTORY:
            raise IsADirectoryFsError("read on a directory", path=path)
        inode.atime = self._now()
        return bytes(inode.data[offset:offset + size])

    def write_at(self, path: str, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset`` without a descriptor."""
        if offset < 0:
            raise InvalidArgumentError("negative offset")
        inode = self._lookup(path)
        if inode.kind is FileKind.DIRECTORY:
            raise IsADirectoryFsError("write on a directory", path=path)
        end = offset + len(data)
        growth = max(0, end - len(inode.data))
        self._charge_bytes(growth, path_hint=path)
        if growth:
            inode.data.extend(b"\x00" * growth)
        inode.data[offset:end] = data
        inode.mtime = self._now()
        return len(data)

    # -- inspection ----------------------------------------------------------

    @property
    def bytes_used(self) -> int:
        """Total regular-file data currently stored."""
        return self._bytes_used

    @property
    def open_descriptor_count(self) -> int:
        """Number of live descriptors."""
        return len(self._open_files)

    @property
    def inode_count(self) -> int:
        """Number of live inodes, including the root."""
        return len(self._inodes)

    def walk(self, top: str = "/"):
        """Yield ``(dir_path, dir_names, file_names)`` like ``os.walk``."""
        inode = self._lookup(top)
        if inode.kind is not FileKind.DIRECTORY:
            raise NotADirectoryFsError("walk on a file", path=top)
        dirs, files = [], []
        for name in sorted(inode.entries):
            child = self._inodes[inode.entries[name]]
            (dirs if child.kind is FileKind.DIRECTORY else files).append(name)
        yield vpath.normalize(top), dirs, files
        for name in dirs:
            yield from self.walk(vpath.join(top, name))

    def _make_inode(self, kind: FileKind) -> Inode:
        stamp = self._now()
        inode = Inode(
            number=next(self._inode_numbers),
            kind=kind,
            ctime=stamp,
            mtime=stamp,
            atime=stamp,
        )
        self._inodes[inode.number] = inode
        return inode

    def _stat_of(self, inode: Inode) -> Stat:
        return Stat(
            inode=inode.number,
            kind=inode.kind,
            size=inode.size,
            nlink=inode.nlink,
            ctime=inode.ctime,
            mtime=inode.mtime,
            atime=inode.atime,
        )
