"""File-system error hierarchy with errno semantics.

The workload generator executes file I/O "at the system call level"
(thesis section 3.1.2), so the substrate reports failures the way UNIX
system calls do: a symbolic errno plus the offending path or descriptor.
Both the in-memory file system and the real-directory backend raise the
same exception types, which keeps the USIM's error handling backend-
agnostic.
"""

from __future__ import annotations

import errno as _errno

__all__ = [
    "FileSystemError",
    "NoSuchFileError",
    "FileExistsFsError",
    "NotADirectoryFsError",
    "IsADirectoryFsError",
    "BadDescriptorError",
    "DirectoryNotEmptyError",
    "NoSpaceError",
    "TooManyOpenFilesError",
    "InvalidArgumentError",
    "ReadOnlyDescriptorError",
    "CrossDeviceError",
    "error_from_errno",
]


class FileSystemError(OSError):
    """Base class for all substrate file-system failures.

    Carries a real ``errno`` so callers may treat it like an ``OSError``
    from a genuine system call.
    """

    default_errno = _errno.EIO

    def __init__(self, message: str, path: str | None = None,
                 errno_code: int | None = None):
        code = errno_code if errno_code is not None else self.default_errno
        super().__init__(code, message, path)
        self.path = path

    @property
    def errno_name(self) -> str:
        """Symbolic errno name, e.g. ``"ENOENT"``."""
        return _errno.errorcode.get(self.errno, f"E{self.errno}")


class NoSuchFileError(FileSystemError):
    """ENOENT: a path component does not exist."""

    default_errno = _errno.ENOENT


class FileExistsFsError(FileSystemError):
    """EEXIST: exclusive create of an existing path."""

    default_errno = _errno.EEXIST


class NotADirectoryFsError(FileSystemError):
    """ENOTDIR: a non-directory used as a path prefix or dir operand."""

    default_errno = _errno.ENOTDIR


class IsADirectoryFsError(FileSystemError):
    """EISDIR: file operation applied to a directory."""

    default_errno = _errno.EISDIR


class BadDescriptorError(FileSystemError):
    """EBADF: operation on a closed or never-opened descriptor."""

    default_errno = _errno.EBADF


class DirectoryNotEmptyError(FileSystemError):
    """ENOTEMPTY: rmdir of a non-empty directory."""

    default_errno = _errno.ENOTEMPTY


class NoSpaceError(FileSystemError):
    """ENOSPC: the file system's capacity limit is exhausted."""

    default_errno = _errno.ENOSPC


class TooManyOpenFilesError(FileSystemError):
    """EMFILE: the per-process descriptor table is full."""

    default_errno = _errno.EMFILE


class InvalidArgumentError(FileSystemError):
    """EINVAL: malformed flags, negative sizes, bad whence values, ..."""

    default_errno = _errno.EINVAL


class ReadOnlyDescriptorError(FileSystemError):
    """EBADF variant: writing a descriptor opened read-only (POSIX uses
    EBADF here, not EACCES)."""

    default_errno = _errno.EBADF


class CrossDeviceError(FileSystemError):
    """EXDEV: rename across file-system boundaries."""

    default_errno = _errno.EXDEV


_ERRNO_TO_CLASS: dict[int, type[FileSystemError]] = {
    _errno.ENOENT: NoSuchFileError,
    _errno.EEXIST: FileExistsFsError,
    _errno.ENOTDIR: NotADirectoryFsError,
    _errno.EISDIR: IsADirectoryFsError,
    _errno.EBADF: BadDescriptorError,
    _errno.ENOTEMPTY: DirectoryNotEmptyError,
    _errno.ENOSPC: NoSpaceError,
    _errno.EMFILE: TooManyOpenFilesError,
    _errno.EINVAL: InvalidArgumentError,
    _errno.EXDEV: CrossDeviceError,
}


def error_from_errno(code: int, message: str,
                     path: str | None = None) -> FileSystemError:
    """Map a raw errno (e.g. from a real ``OSError``) onto our hierarchy."""
    cls = _ERRNO_TO_CLASS.get(code, FileSystemError)
    return cls(message, path=path, errno_code=code)
