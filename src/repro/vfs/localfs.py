"""Real-directory backend: drive an actual file system.

The thesis's generator, "when used to drive a real file system", executes
the generated operations for real, against "a new file system ... created
to which file I/O is directed" so existing data is never touched
(section 4.1).  ``LocalFileSystem`` is that mode: it maps the substrate's
absolute virtual paths into a sandbox root directory and issues genuine
``os.*`` system calls, translating ``OSError`` into our errno-faithful
hierarchy.

Wall-clock response-time measurement for this backend lives in the USIM's
``RealRunner`` (:mod:`repro.core.usim`).
"""

from __future__ import annotations

import os

from . import path as vpath
from .errors import (
    FileSystemError,
    InvalidArgumentError,
    error_from_errno,
)
from .interface import FileKind, OpenFlags, Stat, Whence

__all__ = ["LocalFileSystem"]

_FLAG_MAP = [
    (OpenFlags.WRONLY, os.O_WRONLY),
    (OpenFlags.RDWR, os.O_RDWR),
    (OpenFlags.CREAT, os.O_CREAT),
    (OpenFlags.EXCL, os.O_EXCL),
    (OpenFlags.TRUNC, os.O_TRUNC),
    (OpenFlags.APPEND, os.O_APPEND),
]


def _to_os_flags(flags: OpenFlags) -> int:
    out = os.O_RDONLY
    for ours, theirs in _FLAG_MAP:
        if flags & ours:
            out |= theirs
    return out


class LocalFileSystem:
    """``FileSystemAPI`` over a real directory subtree.

    Every virtual absolute path (``/system/f0042``) is resolved inside
    ``root``; escapes via ``..`` are prevented by normalising before the
    join, so the workload can never touch files outside the sandbox.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # -- path mapping -------------------------------------------------------

    def _host_path(self, path: str) -> str:
        relative = vpath.normalize(path).lstrip("/")
        return os.path.join(self.root, *relative.split("/")) if relative else self.root

    # -- syscall surface ------------------------------------------------------

    def open(self, path: str, flags: OpenFlags) -> int:
        """Open via ``os.open`` with translated flags."""
        try:
            return os.open(self._host_path(path), _to_os_flags(OpenFlags(flags)))
        except OSError as exc:
            raise self._translate(exc, path) from exc

    def creat(self, path: str) -> int:
        """``creat(2)`` equivalent."""
        return self.open(
            path, OpenFlags.WRONLY | OpenFlags.CREAT | OpenFlags.TRUNC
        )

    def close(self, fd: int) -> None:
        """Close a real descriptor."""
        try:
            os.close(fd)
        except OSError as exc:
            raise self._translate(exc, None) from exc

    def read(self, fd: int, size: int) -> bytes:
        """``read(2)``."""
        if size < 0:
            raise InvalidArgumentError(f"negative read size {size}")
        try:
            return os.read(fd, size)
        except OSError as exc:
            raise self._translate(exc, None) from exc

    def write(self, fd: int, data: bytes) -> int:
        """``write(2)``."""
        try:
            return os.write(fd, data)
        except OSError as exc:
            raise self._translate(exc, None) from exc

    def lseek(self, fd: int, offset: int, whence: Whence = Whence.SET) -> int:
        """``lseek(2)``."""
        try:
            return os.lseek(fd, offset, int(whence))
        except OSError as exc:
            raise self._translate(exc, None) from exc

    def stat(self, path: str) -> Stat:
        """``stat(2)`` mapped into the substrate's ``Stat``."""
        try:
            raw = os.stat(self._host_path(path))
        except OSError as exc:
            raise self._translate(exc, path) from exc
        return self._convert_stat(raw)

    def fstat(self, fd: int) -> Stat:
        """``fstat(2)``."""
        try:
            raw = os.fstat(fd)
        except OSError as exc:
            raise self._translate(exc, None) from exc
        return self._convert_stat(raw)

    def unlink(self, path: str) -> None:
        """``unlink(2)``."""
        try:
            os.unlink(self._host_path(path))
        except OSError as exc:
            raise self._translate(exc, path) from exc

    def mkdir(self, path: str) -> None:
        """``mkdir(2)``."""
        try:
            os.mkdir(self._host_path(path))
        except OSError as exc:
            raise self._translate(exc, path) from exc

    def makedirs(self, path: str) -> None:
        """Create a directory and any missing ancestors."""
        try:
            os.makedirs(self._host_path(path), exist_ok=True)
        except OSError as exc:
            raise self._translate(exc, path) from exc

    def rmdir(self, path: str) -> None:
        """``rmdir(2)``."""
        try:
            os.rmdir(self._host_path(path))
        except OSError as exc:
            raise self._translate(exc, path) from exc

    def listdir(self, path: str) -> list[str]:
        """Sorted directory listing."""
        try:
            return sorted(os.listdir(self._host_path(path)))
        except OSError as exc:
            raise self._translate(exc, path) from exc

    def rename(self, old: str, new: str) -> None:
        """``rename(2)`` within the sandbox."""
        try:
            os.rename(self._host_path(old), self._host_path(new))
        except OSError as exc:
            raise self._translate(exc, old) from exc

    def truncate(self, path: str, size: int) -> None:
        """``truncate(2)``."""
        if size < 0:
            raise InvalidArgumentError(f"negative truncate size {size}")
        try:
            os.truncate(self._host_path(path), size)
        except OSError as exc:
            raise self._translate(exc, path) from exc

    def exists(self, path: str) -> bool:
        """``access(2)``-style existence probe."""
        return os.path.exists(self._host_path(path))

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _translate(exc: OSError, path: str | None) -> FileSystemError:
        return error_from_errno(
            exc.errno if exc.errno is not None else 0,
            exc.strerror or str(exc),
            path=path,
        )

    @staticmethod
    def _convert_stat(raw: os.stat_result) -> Stat:
        import stat as stat_module

        kind = (
            FileKind.DIRECTORY
            if stat_module.S_ISDIR(raw.st_mode)
            else FileKind.REGULAR
        )
        return Stat(
            inode=raw.st_ino,
            kind=kind,
            size=raw.st_size,
            nlink=raw.st_nlink,
            ctime=raw.st_ctime,
            mtime=raw.st_mtime,
            atime=raw.st_atime,
        )
