"""POSIX-style path handling for the virtual file systems.

All substrate paths are absolute, ``/``-separated, and independent of the
host OS conventions, so a workload specification behaves identically on the
in-memory backend, the simulated NFS backend, and (modulo the sandbox root
prefix) the real-directory backend.
"""

from __future__ import annotations

from .errors import InvalidArgumentError

__all__ = ["normalize", "split_components", "parent_and_name", "join", "is_abs"]

SEPARATOR = "/"


def is_abs(path: str) -> bool:
    """True when ``path`` starts at the root."""
    return path.startswith(SEPARATOR)


def split_components(path: str) -> list[str]:
    """Split an absolute path into its non-empty components.

    ``"."`` components are dropped; ``".."`` pops the previous component
    (stopping at the root, as POSIX resolution does for ``/..``).
    """
    if not path:
        raise InvalidArgumentError("empty path", path=path)
    if not is_abs(path):
        raise InvalidArgumentError(
            f"substrate paths must be absolute, got {path!r}", path=path
        )
    parts: list[str] = []
    for raw in path.split(SEPARATOR):
        if raw in ("", "."):
            continue
        if raw == "..":
            if parts:
                parts.pop()
            continue
        parts.append(raw)
    return parts


def normalize(path: str) -> str:
    """Canonical absolute form: ``normalize("/a//b/./c/..") == "/a/b"``."""
    return SEPARATOR + SEPARATOR.join(split_components(path))


def parent_and_name(path: str) -> tuple[str, str]:
    """Split into ``(parent_path, final_component)``.

    Raises for the root itself, which has no parent entry to operate on.
    """
    parts = split_components(path)
    if not parts:
        raise InvalidArgumentError("operation on the root directory", path=path)
    parent = SEPARATOR + SEPARATOR.join(parts[:-1])
    return parent, parts[-1]


def join(base: str, *names: str) -> str:
    """Join path fragments and normalise the result."""
    combined = base
    for name in names:
        combined = combined.rstrip(SEPARATOR) + SEPARATOR + name
    return normalize(combined)
