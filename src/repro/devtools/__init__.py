"""Developer tooling that machine-checks the repository's own invariants.

Nothing in this package is imported by the runtime generator; it exists so
that the determinism and concurrency rules the documentation promises
(``docs/architecture.md``, "Statically enforced invariants") are enforced
at the source level, in CI, before any artifact can be corrupted:

* :mod:`repro.devtools.detlint` — AST-based determinism/concurrency lint
  (``python -m repro.devtools.detlint src``).
* :mod:`repro.devtools.mypy_gate` — advisory mypy error-count ratchet
  (``python -m repro.devtools.mypy_gate``).
"""
