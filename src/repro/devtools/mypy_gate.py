"""mypy_gate — ratchet mypy's error count over the typed core.

The repo is not fully typed, so a plain ``mypy && exit $?`` gate would
be red forever and teach everyone to ignore it.  This gate pins the
*current* error count in ``MYPY_BASELINE.json`` and fails only when the
count **grows** — new code can't add type errors, old debt burns down at
its own pace.  Shrinking the count prints a nudge to re-pin the lower
number so improvements lock in.

Usage::

    python -m repro.devtools.mypy_gate                # run mypy, compare
    python -m repro.devtools.mypy_gate --report F     # gate a saved report
    python -m repro.devtools.mypy_gate --update-baseline

A ``null`` baseline is bootstrap mode: the gate measures, reports, and
passes — CI stays green until someone pins the first count.  When mypy
itself is not installed (the local container does not ship it) the gate
prints a notice and passes; CI installs mypy before invoking it.

Exit codes: 0 gate passes (or advisory skip), 1 error count grew,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

__all__ = ["count_errors", "evaluate", "load_baseline", "main"]

DEFAULT_BASELINE = "MYPY_BASELINE.json"
DEFAULT_TARGETS = ("src/repro/core", "src/repro/fleet")

# mypy error lines look like ``path.py:12: error: message  [code]``;
# summary lines ("Found 3 errors in 2 files") must not be counted.
_ERROR_LINE = re.compile(r"^.+?:\d+(?::\d+)?: error: ")


def count_errors(report: str) -> int:
    """Number of mypy error lines in a report (summary lines excluded)."""
    return sum(1 for line in report.splitlines() if _ERROR_LINE.match(line))


def load_baseline(path: str) -> dict:
    """The pinned baseline: ``{"error_count": int | None, "targets": [...]}``."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if "error_count" not in data:
        raise ValueError(f"{path} has no 'error_count' key")
    count = data["error_count"]
    if count is not None and (not isinstance(count, int) or count < 0):
        raise ValueError(f"{path}: error_count must be null or int >= 0")
    return data


def evaluate(measured: int, baseline: int | None) -> tuple[int, str]:
    """``(exit_code, verdict line)`` for a measured count vs the pin."""
    if baseline is None:
        return 0, (f"mypy-gate: {measured} error(s), baseline unpinned "
                   "(bootstrap) — pin with --update-baseline to start "
                   "the ratchet")
    if measured > baseline:
        return 1, (f"mypy-gate: FAIL — {measured} error(s) > baseline "
                   f"{baseline}; fix the new errors (or, for pre-existing "
                   "debt, justify and re-pin)")
    if measured < baseline:
        return 0, (f"mypy-gate: pass — {measured} error(s), down from "
                   f"{baseline}; run --update-baseline to lock in the "
                   "improvement")
    return 0, f"mypy-gate: pass — {measured} error(s), at baseline"


def _run_mypy(targets: list[str]) -> str | None:
    """mypy's stdout over targets, or None when mypy is not installed."""
    if shutil.which("mypy") is None:
        return None
    proc = subprocess.run(
        ["mypy", *targets], capture_output=True, text=True, check=False
    )
    return proc.stdout + proc.stderr


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.mypy_gate",
        description="Ratchet gate on mypy's error count.",
    )
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON (default: {DEFAULT_BASELINE})")
    parser.add_argument("--report", default=None,
                        help="gate a saved mypy report instead of running "
                             "mypy (used by tests and split CI steps)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="pin the measured count as the new baseline")
    args = parser.parse_args(argv)

    try:
        data = load_baseline(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"mypy-gate: error: {exc}", file=sys.stderr)
        return 2

    targets = list(data.get("targets") or DEFAULT_TARGETS)
    if args.report is not None:
        try:
            with open(args.report, "r", encoding="utf-8") as fh:
                report = fh.read()
        except OSError as exc:
            print(f"mypy-gate: error: {exc}", file=sys.stderr)
            return 2
    else:
        maybe = _run_mypy(targets)
        if maybe is None:
            print("mypy-gate: mypy not installed; skipping (advisory)")
            return 0
        report = maybe

    measured = count_errors(report)
    if args.update_baseline:
        data["error_count"] = measured
        tmp = args.baseline + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, args.baseline)
        print(f"mypy-gate: baseline pinned at {measured} error(s)")
        return 0

    code, verdict = evaluate(measured, data["error_count"])
    print(verdict)
    return code


if __name__ == "__main__":
    sys.exit(main())
