"""detlint — determinism & concurrency static analysis for this repo.

Every claim this reproduction makes (cross-backend byte-identity,
shard-invariant merges, bit-for-bit resume) rests on source-level rules
that used to live only in docs prose and golden tests.  Golden tests catch
a violation *after* it corrupts an artifact; detlint catches it at the
line that introduces it.

Usage::

    python -m repro.devtools.detlint src [--json] [--rules a,b] \\
        [--registry PATH]

Exit codes: 0 clean, 1 findings, 2 usage/parse error.

Suppressing a finding requires a justification::

    rng = np.random.default_rng(seed)  # detlint: ignore[no-global-rng] — seeded per call

A pragma without a reason (or naming an unknown rule) is itself reported
as ``bad-pragma``.  A standalone comment line applies to the next line.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import asdict, dataclass

from . import policy
from .rules import ALL_RULES

__all__ = [
    "Finding",
    "Pragma",
    "collect_pragmas",
    "lint_file",
    "lint_paths",
    "load_registry",
    "main",
    "module_relpath",
]

JSON_FORMAT = "repro.detlint-report"
JSON_VERSION = 1

_PRAGMA_RE = re.compile(
    r"#\s*detlint:\s*ignore\[(?P<rules>[^\]]*)\](?P<reason>.*)$"
)
_REASON_STRIP = " \t—–:-"


@dataclass(frozen=True)
class Finding:
    """One lint finding, stable across output formats."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"[{self.rule}] {self.message}")


@dataclass(frozen=True)
class Pragma:
    """A parsed ``detlint: ignore[rule, ...]`` suppression comment."""

    line: int          # line the pragma suppresses
    comment_line: int  # line the comment physically sits on
    rules: tuple[str, ...]
    reason: str


def module_relpath(path: str, root: str | None = None) -> str:
    """The policy-matching path: the part after the last ``repro`` dir.

    Falls back to the path relative to ``root`` (or the basename) for
    files outside a ``repro`` package, so staged fixture trees behave
    like the real one.
    """
    parts = os.path.normpath(path).replace(os.sep, "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i + 1 < len(parts):
            return "/".join(parts[i + 1:])
    if root is not None:
        rel = os.path.relpath(path, root)
        if not rel.startswith(".."):
            return rel.replace(os.sep, "/")
    return parts[-1]


def collect_pragmas(source: str) -> tuple[list[Pragma], list[Finding]]:
    """Parse every detlint pragma; malformed ones become bad-pragma findings.

    The reason is mandatory: a pragma that does not say *why* the rule is
    safe to break here is rejected (and does not suppress anything).
    """
    pragmas: list[Pragma] = []
    bad: list[Finding] = []
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = match.group("reason").strip(_REASON_STRIP)
        standalone = text[: match.start()].strip() == ""
        if standalone:
            # A standalone pragma comment governs the next *code* line;
            # blank lines and continuation comments in between are part
            # of the (possibly wrapped) justification.
            target = lineno + 1
            while target <= len(lines) and (
                not lines[target - 1].strip()
                or lines[target - 1].lstrip().startswith("#")
            ):
                target += 1
        else:
            target = lineno
        unknown = [r for r in rules if r not in ALL_RULES]
        if not rules:
            bad.append(Finding("", lineno, 0, "bad-pragma",
                               "pragma names no rules: use "
                               "'detlint: ignore[rule-id] — reason'"))
            continue
        if unknown:
            bad.append(Finding("", lineno, 0, "bad-pragma",
                               f"pragma names unknown rule(s) {unknown}; "
                               f"known: {sorted(ALL_RULES)}"))
            continue
        if not reason:
            bad.append(Finding("", lineno, 0, "bad-pragma",
                               f"pragma for {list(rules)} has no reason; a "
                               "justification is mandatory"))
            continue
        pragmas.append(Pragma(line=target, comment_line=lineno,
                              rules=rules, reason=reason))
    return pragmas, bad


def load_registry(path: str) -> tuple[frozenset, tuple]:
    """Parse STREAM_NAMES / STREAM_PREFIXES out of a registry module.

    AST-based (never imports the tree under analysis).  Raises ValueError
    when the module does not define both.
    """
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    found: dict[str, object] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Name)
                    and target.id in ("STREAM_NAMES", "STREAM_PREFIXES")):
                value = node.value
                # unwrap frozenset({...}) / tuple((...)) wrappers
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id in ("frozenset", "set", "tuple")
                        and value.args):
                    value = value.args[0]
                found[target.id] = ast.literal_eval(value)
    if "STREAM_NAMES" not in found or "STREAM_PREFIXES" not in found:
        raise ValueError(
            f"{path} does not define STREAM_NAMES and STREAM_PREFIXES"
        )
    return (frozenset(found["STREAM_NAMES"]),
            tuple(found["STREAM_PREFIXES"]))


def _find_registry(files: list[str]) -> str | None:
    for path in files:
        if module_relpath(path) == policy.REGISTRY_RELPATH:
            return path
    return None


class _Context:
    """Per-file rule input: parsed tree, policy path, stream registry."""

    def __init__(self, path: str, relpath: str, tree: ast.AST,
                 registry: tuple[frozenset, tuple] | None):
        self.path = path
        self.relpath = relpath
        self.tree = tree
        self.registry = registry


def lint_file(path: str, rules: dict, registry, root: str | None = None,
              relpath: str | None = None) -> list[Finding]:
    """All findings for one file, pragmas applied."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, (exc.offset or 1) - 1,
                        "parse-error", f"cannot parse: {exc.msg}")]
    pragmas, bad = collect_pragmas(source)
    suppressed: dict[int, set[str]] = {}
    for pragma in pragmas:
        suppressed.setdefault(pragma.line, set()).update(pragma.rules)
    ctx = _Context(path, relpath or module_relpath(path, root), tree,
                   registry)
    findings = [Finding(path, f.line, f.col, f.rule, f.message)
                for f in bad]
    for rule_id, (impl, _desc) in rules.items():
        for lineno, col, message in impl(ctx):
            if rule_id in suppressed.get(lineno, ()):
                continue
            findings.append(Finding(path, lineno, col, rule_id, message))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def _iter_python_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError(path)
    return files


def lint_paths(paths: list[str], rule_ids: list[str] | None = None,
               registry_path: str | None = None,
               ) -> tuple[list[Finding], int]:
    """Lint files/trees; returns ``(findings, n_files_checked)``."""
    files = _iter_python_files(paths)
    rules = dict(ALL_RULES)
    if rule_ids is not None:
        unknown = sorted(set(rule_ids) - set(ALL_RULES))
        if unknown:
            raise ValueError(f"unknown rule id(s): {unknown}")
        rules = {rid: ALL_RULES[rid] for rid in rule_ids}
    if registry_path is None:
        registry_path = _find_registry(files)
    registry = load_registry(registry_path) if registry_path else None
    root = os.path.commonpath([os.path.abspath(p) for p in paths]) \
        if paths else None
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, rules, registry, root=root))
    return findings, len(files)


def _report_json(findings: list[Finding], n_files: int,
                 rules: list[str]) -> str:
    counts: dict[str, int] = {rid: 0 for rid in rules}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "format": JSON_FORMAT,
        "version": JSON_VERSION,
        "rules": rules,
        "checked_files": n_files,
        "findings": [asdict(f) for f in findings],
        "counts": {k: v for k, v in sorted(counts.items()) if v},
        "ok": not findings,
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.detlint",
        description="Determinism & concurrency static analysis.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default all)")
    parser.add_argument("--registry", default=None,
                        help="path to the stream-name registry module "
                             "(default: discovered in the scanned tree)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, (_impl, desc) in ALL_RULES.items():
            print(f"{rule_id:22s} {desc}")
        return 0

    rule_ids = ([r.strip() for r in args.rules.split(",") if r.strip()]
                if args.rules else None)
    try:
        findings, n_files = lint_paths(args.paths, rule_ids=rule_ids,
                                       registry_path=args.registry)
    except (FileNotFoundError, ValueError) as exc:
        print(f"detlint: error: {exc}", file=sys.stderr)
        return 2

    enabled = rule_ids if rule_ids is not None else list(ALL_RULES)
    if args.json:
        print(_report_json(findings, n_files, enabled))
    else:
        for finding in findings:
            print(finding.render())
        status = ("clean" if not findings
                  else f"{len(findings)} finding(s)")
        print(f"detlint: {n_files} file(s) checked, {status}")
    return 1 if findings else 0
