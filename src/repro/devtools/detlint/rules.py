"""The detlint rule implementations.

Each rule is a generator ``rule(ctx)`` yielding ``(lineno, col, message)``
tuples; the driver in :mod:`repro.devtools.detlint` attaches the rule id,
applies ``detlint: ignore`` pragmas and formats the report.  Rules
are deliberately AST-only (no imports of the code under analysis), so
detlint keeps working even when the tree it is checking cannot import.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import policy

Hit = tuple[int, int, str]


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _matches_path(relpath: str, patterns) -> bool:
    """True when ``relpath`` is under any dir (``x/``) or equals a file."""
    for pattern in patterns:
        if pattern.endswith("/"):
            if relpath.startswith(pattern):
                return True
        elif relpath == pattern:
            return True
    return False


def _functions(tree: ast.AST):
    """Yield every (def node, nesting depth) in the module."""
    def walk(node: ast.AST, depth: int):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, depth
                yield from walk(child, depth + 1)
            else:
                yield from walk(child, depth)
    yield from walk(tree, 0)


# -- no-global-rng -------------------------------------------------------------

def no_global_rng(ctx) -> Iterator[Hit]:
    """``random.*`` / ``np.random.*`` calls outside distributions/rng.py.

    Module-global RNG state is seed-shared and draw-order-dependent: one
    extra draw anywhere perturbs every stream downstream, which is exactly
    what named ``RandomStreams`` exist to prevent.
    """
    if _matches_path(ctx.relpath, policy.GLOBAL_RNG_ALLOWED):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random" or module.endswith(".random"):
                yield (node.lineno, node.col_offset,
                       f"import from RNG module {module!r}; draw from a "
                       "named RandomStreams stream instead")
            continue
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) > 1:
            yield (node.lineno, node.col_offset,
                   f"call to global RNG {dotted!r}; use a named "
                   "RandomStreams stream")
        elif "random" in parts[:-1] and parts[0] in ("np", "numpy"):
            yield (node.lineno, node.col_offset,
                   f"call to {dotted!r} outside distributions/rng.py; "
                   "derive generators from RandomStreams")


# -- no-wall-clock -------------------------------------------------------------

def no_wall_clock(ctx) -> Iterator[Hit]:
    """Wall-clock reads inside the deterministic generation path.

    Generation must be a pure function of (spec, seed); a clock read in
    core/, sim/, distributions/ or nfs/ leaks host timing into artifacts.
    """
    if not _matches_path(ctx.relpath, policy.WALL_CLOCK_BANNED_DIRS):
        return
    if _matches_path(ctx.relpath, policy.WALL_CLOCK_ALLOWED):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        tail = ".".join(dotted.split(".")[-2:])
        if tail in policy.WALL_CLOCK_CALLS:
            yield (node.lineno, node.col_offset,
                   f"wall-clock read {dotted!r} in deterministic path "
                   f"({ctx.relpath}); clocks belong in obs/ or benchmarks/")


# -- stream-name-registry ------------------------------------------------------

def _is_stream_holder(receiver: ast.expr) -> bool:
    if isinstance(receiver, ast.Name):
        name = receiver.id
    elif isinstance(receiver, ast.Attribute):
        name = receiver.attr
    else:
        return False
    return name in policy.STREAM_HOLDER_NAMES or name.endswith("streams")


def _literal_stream_name(arg: ast.expr) -> tuple[str, bool] | None:
    """``(text, is_prefix)`` for a str constant or f-string, else None."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr):
        prefix = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                prefix.append(piece.value)
            else:
                break
        return "".join(prefix), True
    return None


def stream_name_registry(ctx) -> Iterator[Hit]:
    """Stream names must exist in distributions/streamnames.py.

    ``derive_seed`` hashes any string, so a misspelled stream name yields
    a different-but-plausible generator — the #1 historical source of
    byte-identity breaks.  Every literal passed to ``RandomStreams.get``/
    ``fork``/``spawn_seed`` (or ``_stream_factory``) is cross-checked
    against the canonical registry.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        arg: ast.expr | None = None
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in policy.STREAM_METHODS
                and _is_stream_holder(node.func.value)
                and node.args):
            arg = node.args[0]
        elif (isinstance(node.func, ast.Name)
                and node.func.id in policy.STREAM_FACTORY_FUNCS
                and len(node.args) >= 2):
            arg = node.args[1]
        if arg is None:
            continue
        literal = _literal_stream_name(arg)
        if literal is None:
            continue  # a variable: checked at its own literal source
        text, is_prefix = literal
        if ctx.registry is None:
            yield (node.lineno, node.col_offset,
                   "stream name used but no registry found (expected "
                   f"{policy.REGISTRY_RELPATH}); pass --registry or add one")
            continue
        names, prefixes = ctx.registry
        if is_prefix:
            if not text:
                yield (node.lineno, node.col_offset,
                       "dynamic stream name with no static prefix; start "
                       "the f-string with a registered family prefix")
            elif not text.startswith(tuple(prefixes)):
                yield (node.lineno, node.col_offset,
                       f"stream family prefix {text!r} not in the registry "
                       f"({policy.REGISTRY_RELPATH}); registered prefixes: "
                       f"{sorted(prefixes)}")
        elif text not in names and not text.startswith(tuple(prefixes)):
            yield (node.lineno, node.col_offset,
                   f"stream name {text!r} not in the registry "
                   f"({policy.REGISTRY_RELPATH}); a typo here silently "
                   "derives a different generator")


# -- unordered-iteration -------------------------------------------------------

def _setish_names(func: ast.AST) -> set[str]:
    """Local names assigned a set/frozenset in this function body."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _is_setish(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_setish(node: ast.expr, local_sets: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.Name) and node.id in local_sets:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return (_is_setish(node.left, local_sets)
                or _is_setish(node.right, local_sets))
    return False


def unordered_iteration(ctx) -> Iterator[Hit]:
    """Iterating a set in code that feeds sinks, serializers or merges.

    Set iteration order depends on insertion history and hash seeds; in a
    function that writes artifacts or merges shards it produces
    run-to-run nondeterminism.  Wrap the set in ``sorted(...)``.
    """
    module_scoped = _matches_path(ctx.relpath, policy.SINK_MODULES)
    for func, _depth in _functions(ctx.tree):
        name = func.name.lower()
        if not module_scoped and not any(
                marker in name for marker in policy.SINK_FUNC_MARKERS):
            continue
        local_sets = _setish_names(func)
        for node in ast.walk(func):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Name)
                  and node.func.id in ("list", "tuple", "enumerate")
                  and node.args):
                iters.append(node.args[0])
            for it in iters:
                if _is_setish(it, local_sets):
                    yield (it.lineno, it.col_offset,
                           f"iteration over a set in {func.name!r} feeds an "
                           "ordered artifact; wrap in sorted(...) for a "
                           "deterministic order")


# -- mp-hygiene ----------------------------------------------------------------

def _nested_def_names(tree: ast.AST) -> set[str]:
    return {func.name for func, depth in _functions(tree) if depth > 0}


def mp_hygiene(ctx) -> Iterator[Hit]:
    """Worker targets must be module-level functions.

    A lambda or nested function handed to ``Process(target=...)`` or a
    pool submit method is unpicklable under the spawn start method — the
    only start method whose workers are fork-safe with threads around.
    """
    nested = _nested_def_names(ctx.tree)

    def bad(candidate: ast.expr) -> str | None:
        if isinstance(candidate, ast.Lambda):
            return "a lambda"
        if isinstance(candidate, ast.Name) and candidate.id in nested:
            return f"nested function {candidate.id!r}"
        return None

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        candidates: list[ast.expr] = [
            kw.value for kw in node.keywords if kw.arg == "target"
        ]
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in policy.POOL_SUBMIT_METHODS
                and node.args):
            candidates.append(node.args[0])
        for candidate in candidates:
            what = bad(candidate)
            if what is not None:
                yield (candidate.lineno, candidate.col_offset,
                       f"worker target is {what}; process targets must be "
                       "module-level (picklable, closure-free) functions")


# -- float-accum ---------------------------------------------------------------

def _int_exempt(value: ast.expr) -> bool:
    if isinstance(value, ast.Constant) and isinstance(value.value, int):
        return True
    if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
            and value.func.id in policy.INT_EXEMPT_CALLS):
        return True
    return False


def float_accum(ctx) -> Iterator[Hit]:
    """Bare ``sum()`` / ``+=`` accumulation inside merge functions.

    Naive float summation is order-dependent and loses precision across
    shards; merge paths must go through the exact parallel-Welford /
    merge helpers in obs/metrics.py (or prove the accumulation integral).
    """
    for func, _depth in _functions(ctx.tree):
        if not func.name.lstrip("_").startswith("merge"):
            continue
        for node in ast.walk(func):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum"):
                yield (node.lineno, node.col_offset,
                       f"bare sum() in merge function {func.name!r}; use "
                       "the exact merge helpers in obs/metrics.py")
            elif (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and not _int_exempt(node.value)):
                yield (node.lineno, node.col_offset,
                       f"'+=' accumulation in merge function {func.name!r} "
                       "may be float and order-dependent; use the exact "
                       "merge helpers in obs/metrics.py or accumulate "
                       "via int(...)")


# -- swallowed-exceptions ------------------------------------------------------

def swallowed_exceptions(ctx) -> Iterator[Hit]:
    """Bare ``except:`` or pass-only broad handlers.

    In retry/supervision paths a swallowed exception converts a crash the
    supervisor would retry deterministically into silent data loss.
    """
    broad = ("Exception", "BaseException")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield (node.lineno, node.col_offset,
                   "bare 'except:' swallows KeyboardInterrupt and worker "
                   "kill signals; name the exceptions or re-raise")
            continue
        caught = _dotted(node.type) if not isinstance(node.type, ast.Tuple) \
            else None
        if isinstance(node.type, ast.Tuple):
            names = [_dotted(elt) for elt in node.type.elts]
            caught = next((n for n in names if n in broad), None)
        if caught not in broad:
            continue
        body_is_noop = all(
            isinstance(stmt, (ast.Pass, ast.Continue))
            or (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant))
            for stmt in node.body
        )
        if body_is_noop:
            yield (node.lineno, node.col_offset,
                   f"'except {caught}' with a no-op body swallows errors "
                   "silently; handle, log or re-raise")


# -- registry ------------------------------------------------------------------

# rule-id -> (implementation, one-line description)
ALL_RULES = {
    "no-global-rng": (
        no_global_rng,
        "random.* / np.random.* calls outside distributions/rng.py",
    ),
    "no-wall-clock": (
        no_wall_clock,
        "wall-clock reads inside core/, sim/, distributions/, nfs/",
    ),
    "stream-name-registry": (
        stream_name_registry,
        "stream names must exist in distributions/streamnames.py",
    ),
    "unordered-iteration": (
        unordered_iteration,
        "set iteration feeding sinks, serializers or merges",
    ),
    "mp-hygiene": (
        mp_hygiene,
        "process/pool targets must be module-level picklable functions",
    ),
    "float-accum": (
        float_accum,
        "bare sum()/'+=' float accumulation inside merge* functions",
    ),
    "swallowed-exceptions": (
        swallowed_exceptions,
        "bare or pass-only broad exception handlers",
    ),
}
