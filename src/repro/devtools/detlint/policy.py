"""Path and name policies for the detlint rules.

Policies match against a file's *package-relative* path — the part after
the last ``repro`` component (``core/usim.py``, ``fleet/supervisor.py``).
Files outside a ``repro`` package (test fixtures, scripts) match against
their path relative to the scanned root, so fixture trees can stage files
at ``repro/core/...`` to exercise path-scoped rules.
"""

from __future__ import annotations

# -- no-wall-clock -------------------------------------------------------------
#
# Generation must be a pure function of (spec, seed): a wall-clock read in
# the plan/synthesize/execute path would leak host timing into artifacts.
# Observability, benchmarks and the fleet supervisor *are* about wall time.
WALL_CLOCK_BANNED_DIRS = ("core/", "sim/", "distributions/", "nfs/")
WALL_CLOCK_ALLOWED = ("obs/", "benchmarks/", "fleet/supervisor.py")

# Clock-reading calls, as dotted-name suffixes (matched against the full
# attribute chain of a call).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.localtime",
        "time.gmtime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

# -- no-global-rng -------------------------------------------------------------
#
# The only module allowed to touch numpy's (or the stdlib's) RNG machinery
# directly: everything else must draw from a named RandomStreams stream.
GLOBAL_RNG_ALLOWED = ("distributions/rng.py",)

# -- stream-name-registry ------------------------------------------------------
#
# Receiver names treated as RandomStreams holders when a string literal is
# passed to their .get()/.fork()/.spawn_seed().  `streams`-suffixed names
# (self.streams, self._streams, shard_streams, ...) match implicitly.
STREAM_HOLDER_NAMES = frozenset({"streams", "base", "fork", "_root"})
STREAM_METHODS = frozenset({"get", "fork", "spawn_seed"})
STREAM_FACTORY_FUNCS = frozenset({"_stream_factory"})
REGISTRY_RELPATH = "distributions/streamnames.py"

# -- unordered-iteration -------------------------------------------------------
#
# Modules whose whole job is producing ordered artifacts (serializers,
# sinks, merges): iterating a set there is order-nondeterminism feeding an
# artifact.  Elsewhere the rule applies only inside functions whose name
# says they emit/merge/serialize.
SINK_MODULES = (
    "core/streamfile.py",
    "core/specjson.py",
    "core/oplog.py",
    "distributions/serialize.py",
    "fleet/merge.py",
    "obs/export.py",
    "obs/manifest.py",
    "obs/metrics.py",
)
SINK_FUNC_MARKERS = (
    "merge",
    "dump",
    "write",
    "serial",
    "save",
    "emit",
    "snapshot",
    "export",
    "encode",
    "flush",
    "to_json",
    "to_records",
)

# -- mp-hygiene ----------------------------------------------------------------
#
# Methods whose callable argument crosses a process boundary and must be
# picklable (module-level): Pool/Executor task submission.
POOL_SUBMIT_METHODS = frozenset(
    {
        "apply",
        "apply_async",
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "submit",
    }
)

# -- float-accum ---------------------------------------------------------------
#
# Inside merge* functions, += accumulation whose value is explicitly
# integer-typed is exempt: these calls keep a value int regardless of input.
INT_EXEMPT_CALLS = frozenset({"int", "len"})
