"""Reproducible random-number streams.

The workload generator draws from many logically distinct random sources
(file sizes per category, access sizes, think times, operation selection,
user-type assignment, ...).  Seeding a single generator and sharing it makes
experiments fragile: adding one extra draw anywhere perturbs every stream
downstream.  ``RandomStreams`` hands out *named* sub-streams derived from a
root seed, so each consumer owns an independent, reproducible generator.

This mirrors the thesis requirement that experiments be repeatable enough to
support "statistical tests of similarity to the real workload" (section 2.2):
two runs with the same root seed produce identical operation streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``.

    Uses SHA-256 so that the mapping is independent of Python's per-process
    string-hash randomisation and stable across platforms and versions.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, independent ``numpy.random.Generator`` streams.

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> sizes = streams.get("file-size")
    >>> think = streams.get("think-time")
    >>> float(sizes.random()) != float(think.random())
    True

    Repeated calls with the same name return the *same* generator object, so
    a consumer may fetch its stream lazily without resetting it.
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            # Identical stream to np.random.default_rng(seed) — spelling
            # out the PCG64/SeedSequence construction skips default_rng's
            # argument dispatch, roughly halving per-stream setup cost
            # (synthesis builds ~10 named streams per virtual user).
            stream = np.random.Generator(
                np.random.PCG64(
                    np.random.SeedSequence(derive_seed(self._seed, name))
                )
            )
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Return a child factory whose root seed is derived from ``name``.

        Used to give each simulated user an independent family of streams:
        ``streams.fork(f"user-{i}")``.
        """
        return RandomStreams(derive_seed(self._seed, name))

    def spawn_seed(self, name: str) -> int:
        """Return a derived integer seed without creating a generator."""
        return derive_seed(self._seed, name)

    def reset(self) -> None:
        """Drop all handed-out streams; subsequent ``get`` calls start fresh."""
        self._streams.clear()
