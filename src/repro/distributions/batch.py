"""Batched scalar sampling: vectorized blocks behind a scalar interface.

The synthesis stage (:mod:`repro.core.synthesis`) consumes millions of
scalar variates — chunk sizes, think times, per-category file counts.
Calling ``Distribution.sample(rng)`` once per variate pays NumPy's
per-call overhead once per variate; drawing blocks of N amortises that
overhead N-fold.  :class:`BatchSampler` wraps any sampler exposing
``sample(rng, size)`` (a :class:`~repro.distributions.base.Distribution`,
a :class:`~repro.distributions.cdf_table.CdfTable`, or the GDS's
``TableSampler``) and serves scalars out of a pre-drawn block, refilling
with one vectorized call whenever the block runs dry.

Every NumPy ``Generator`` method used by the distribution families fills
its output *sequentially* from the underlying bit stream, so element
``i`` of a ``sample(rng, size=N)`` draw equals the ``i``-th scalar
``sample(rng)`` from an identically seeded generator.  Batching therefore
changes the cost of a sampled sequence, never its values —
``tests/distributions/test_batch.py`` pins that equivalence for every
family.
"""

from __future__ import annotations

import numpy as np

from .base import DistributionError
from .basic import Constant

__all__ = ["BatchSampler"]


class BatchSampler:
    """Serve scalar draws from pre-drawn vectorized blocks.

    Parameters
    ----------
    dist:
        Anything with ``sample(rng, size) -> ndarray`` semantics.
        Point masses (:class:`~repro.distributions.basic.Constant`) are
        short-circuited: they consume no random numbers either way, so
        the sampler just returns the value without buffering.
    rng:
        The ``numpy.random.Generator`` this sampler owns.  Give every
        batched quantity its *own* named stream (see
        :class:`~repro.distributions.rng.RandomStreams`): block refills
        consume the stream in bursts, so sharing one stream between a
        batched and an unbatched consumer would interleave differently
        than scalar draws.
    block:
        Variates per refill.  Size does not affect the drawn sequence,
        only the amortisation; hot quantities (think times, chunk sizes)
        want hundreds, once-per-session quantities are fine with tens.
    """

    __slots__ = ("_dist", "_rng", "_rng_factory", "_block", "_buffer",
                 "_next", "_constant")

    def __init__(self, dist, rng=None, block: int = 256, rng_factory=None):
        if block < 1:
            raise DistributionError(f"block must be >= 1, got {block}")
        if rng is None and rng_factory is None:
            raise DistributionError("BatchSampler needs rng or rng_factory")
        self._dist = dist
        # ``rng_factory`` defers generator *construction* to the first
        # refill: a sampler whose stream is never drawn (a usage entry
        # whose fraction gate never fires, the seek stream in sequential
        # mode) then never pays the SeedSequence/PCG64 setup at all.
        # Laziness cannot change any stream — an unconstructed generator
        # was never consumed.
        self._rng = rng
        self._rng_factory = rng_factory
        self._block = int(block)
        self._buffer: np.ndarray | None = None
        self._next = 0
        self._constant = float(dist.value) if isinstance(dist, Constant) else None

    def rebind(self, rng=None, rng_factory=None) -> "BatchSampler":
        """Point this sampler at a fresh stream and forget the old block.

        The object-pooling hook: a pooled sampler is *reset, not
        reconstructed* between users.  After ``rebind`` the very next
        draw refills from the new stream, so the served sequence is
        exactly what a freshly constructed sampler would serve — the
        no-state-leak property ``tests/core/test_pooled_state.py`` pins.
        """
        if rng is None and rng_factory is None:
            raise DistributionError("rebind needs rng or rng_factory")
        self._rng = rng
        self._rng_factory = rng_factory
        self._buffer = None
        self._next = 0
        return self

    def draw(self) -> float:
        """Return the next scalar variate, refilling the block if needed."""
        if self._constant is not None:
            return self._constant
        buffer = self._buffer
        if buffer is None or self._next >= len(buffer):
            buffer = self._refill()
        value = float(buffer[self._next])
        self._next += 1
        return value

    def _refill(self) -> np.ndarray:
        rng = self._rng
        if rng is None:
            rng = self._rng = self._rng_factory()
        buffer = np.asarray(
            self._dist.sample(rng, size=self._block), dtype=float
        )
        self._buffer = buffer
        self._next = 0
        return buffer

    # -- vectorized consumption ----------------------------------------------
    #
    # The columnar synthesis path consumes the *same* variate sequence as
    # scalar ``draw()`` calls, just whole arrays at a time.  All three
    # methods preserve the sequence exactly: refills always pull
    # ``block``-sized chunks from this sampler's own stream, and variates
    # are served strictly in draw order, so mixing ``draw``/``take``/
    # ``peek_buffer``+``consume`` on one sampler can never reorder or
    # skip a value.

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` variates as one array (consumes them)."""
        if n < 0:
            raise DistributionError(f"take() needs n >= 0, got {n}")
        if self._constant is not None:
            return np.full(n, self._constant)
        out = np.empty(n, dtype=float)
        filled = 0
        while filled < n:
            buffer = self._buffer
            if buffer is None or self._next >= len(buffer):
                buffer = self._refill()
            k = min(n - filled, len(buffer) - self._next)
            out[filled:filled + k] = buffer[self._next:self._next + k]
            self._next += k
            filled += k
        return out

    def peek_buffer(self) -> np.ndarray:
        """The not-yet-consumed remainder of the current block (a view).

        Refills first when the block is spent, so the result always has
        at least one element.  Callers must not mutate the view; pair
        with :meth:`consume` to advance past the variates actually used.
        """
        if self._constant is not None:
            return np.full(self._block, self._constant)
        buffer = self._buffer
        if buffer is None or self._next >= len(buffer):
            buffer = self._refill()
        return buffer[self._next:]

    def consume(self, n: int) -> None:
        """Advance past ``n`` variates previously seen via peek_buffer."""
        if self._constant is not None:
            return
        buffer = self._buffer
        if n < 0 or buffer is None or self._next + n > len(buffer):
            raise DistributionError(
                f"cannot consume {n} variates; "
                f"{0 if buffer is None else len(buffer) - self._next} buffered"
            )
        self._next += n

    @property
    def block(self) -> int:
        """Variates drawn per refill."""
        return self._block

    def __repr__(self) -> str:
        return f"BatchSampler({self._dist!r}, block={self._block})"
