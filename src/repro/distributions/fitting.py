"""Fitting empirical data with the GDS's parametric families.

Section 4.1.1: "Users can fit a phase-type exponential or multi-stage gamma
distribution to an empirical distribution, or supply the probability density
function (PDF) values or CDF values directly."

The fitters here use expectation-maximisation over mixture responsibilities
with moment-matching M-steps, which is robust without derivatives and fast
enough for the table sizes the GDS works with.  Offsets are either supplied
by the caller (the thesis treats them as modelling choices) or initialised
from data quantiles and kept fixed during EM.

Statistical similarity — one of Domanski's criteria the thesis adopts
(section 2.2) — is provided by :func:`ks_distance` / :func:`ks_test`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

from .base import Distribution, DistributionError, as_float_array
from .exponential import PhaseTypeExponential, ShiftedExponential
from .gamma import MultiStageGamma, ShiftedGamma

__all__ = [
    "FitResult",
    "fit_shifted_exponential",
    "fit_phase_type_exponential",
    "fit_shifted_gamma",
    "fit_multi_stage_gamma",
    "fit_best",
    "ks_distance",
    "ks_test",
    "ks_two_sample",
]

_EPS = 1e-12


@dataclass(frozen=True)
class FitResult:
    """Outcome of a fit: the distribution plus goodness-of-fit metadata."""

    distribution: Distribution
    log_likelihood: float
    ks_statistic: float
    n_samples: int
    iterations: int

    def describe(self) -> str:
        """One-line summary for GDS output."""
        return (
            f"{self.distribution.describe()}  "
            f"logL={self.log_likelihood:.4g}  KS={self.ks_statistic:.4f}  "
            f"n={self.n_samples}  iters={self.iterations}"
        )


def ks_distance(samples: Sequence[float], dist: Distribution) -> float:
    """Kolmogorov–Smirnov distance between data and a fitted distribution.

    Computed directly from the order statistics:
    ``max_i max(|F(x_i) - i/n|, |F(x_i) - (i-1)/n|)``.
    """
    data = np.sort(as_float_array(samples, "samples"))
    n = len(data)
    cdf = np.asarray(dist.cdf(data), dtype=float)
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(np.max(np.maximum(np.abs(cdf - upper), np.abs(cdf - lower))))


def ks_test(samples: Sequence[float], dist: Distribution) -> tuple[float, float]:
    """Return ``(ks_statistic, p_value)`` for data against ``dist``.

    The p-value uses the asymptotic Kolmogorov distribution, appropriate
    when the candidate distribution was not fitted on the same data (for
    fitted distributions treat the p-value as an optimistic upper bound).
    """
    data = as_float_array(samples, "samples")
    d = ks_distance(data, dist)
    n = len(data)
    p = float(scipy_stats.kstwobign.sf(d * np.sqrt(n)))
    return d, min(max(p, 0.0), 1.0)


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov distance ``sup_x |F_a(x) - F_b(x)|``.

    The supremum over the two step ECDFs is attained at an observation of
    either sample, so evaluating both ECDFs on the pooled order statistics
    is exact.  Used by the trace-validation loop to compare a measured
    sample against its synthetic reproduction.
    """
    xs_a = np.sort(as_float_array(a, "a"))
    xs_b = np.sort(as_float_array(b, "b"))
    pooled = np.concatenate([xs_a, xs_b])
    cdf_a = np.searchsorted(xs_a, pooled, side="right") / len(xs_a)
    cdf_b = np.searchsorted(xs_b, pooled, side="right") / len(xs_b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _prepare(samples: Sequence[float]) -> np.ndarray:
    data = as_float_array(samples, "samples")
    if len(data) < 2:
        raise DistributionError("need at least two samples to fit")
    return data


def fit_shifted_exponential(
    samples: Sequence[float], offset: float | None = None
) -> FitResult:
    """Maximum-likelihood fit of a single shifted exponential.

    With a free offset the MLE is ``offset = min(x)`` (nudged slightly below
    so every sample has positive density) and ``scale = mean(x) - offset``.
    """
    data = _prepare(samples)
    if offset is None:
        spread = float(data.max() - data.min()) or 1.0
        offset = float(data.min()) - 1e-9 * spread
    scale = float(np.mean(data)) - offset
    if scale <= 0:
        raise DistributionError("samples lie at or below the requested offset")
    dist = ShiftedExponential(scale, offset)
    log_l = float(np.sum(np.log(np.maximum(dist.pdf(data), _EPS))))
    return FitResult(dist, log_l, ks_distance(data, dist), len(data), 1)


def fit_phase_type_exponential(
    samples: Sequence[float],
    n_phases: int = 2,
    offsets: Sequence[float] | None = None,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> FitResult:
    """EM fit of an ``n_phases``-component phase-type exponential mixture.

    Offsets default to evenly spaced data quantiles (the left edge of each
    data "hump"), matching how the thesis's figures place phase onsets, and
    stay fixed during EM; weights and scales are re-estimated each step.
    """
    data = _prepare(samples)
    if n_phases < 1:
        raise DistributionError("n_phases must be >= 1")
    if n_phases == 1:
        off = None if offsets is None else offsets[0]
        return fit_shifted_exponential(data, off)

    if offsets is None:
        qs = np.linspace(0.0, 0.8, n_phases)
        offsets_arr = np.quantile(data, qs)
        offsets_arr[0] = data.min() - 1e-9 * (np.ptp(data) or 1.0)
    else:
        offsets_arr = as_float_array(offsets, "offsets")
        if len(offsets_arr) != n_phases:
            raise DistributionError("offsets length must equal n_phases")
    offsets_arr = np.sort(offsets_arr)

    weights = np.full(n_phases, 1.0 / n_phases)
    scales = np.full(n_phases, max(float(np.std(data)), _EPS))

    prev_ll = -np.inf
    iters = 0
    for iters in range(1, max_iter + 1):
        # E-step: responsibilities of each phase for each sample.
        dens = np.zeros((n_phases, len(data)))
        for k in range(n_phases):
            y = data - offsets_arr[k]
            # Clamp before exponentiating: np.where evaluates both
            # branches, and exp of a large positive value overflows.
            safe = np.maximum(y, 0.0)
            dens[k] = np.where(
                y >= 0,
                weights[k] * np.exp(-safe / scales[k]) / scales[k],
                0.0,
            )
        total = dens.sum(axis=0)
        total = np.maximum(total, _EPS)
        resp = dens / total
        log_l = float(np.sum(np.log(total)))

        # M-step: weighted moment updates.
        mass = resp.sum(axis=1)
        weights = np.maximum(mass / len(data), _EPS)
        weights = weights / weights.sum()
        for k in range(n_phases):
            if mass[k] < _EPS:
                continue
            y = np.maximum(data - offsets_arr[k], 0.0)
            scales[k] = max(float(np.sum(resp[k] * y) / mass[k]), _EPS)

        if abs(log_l - prev_ll) < tol * (1.0 + abs(log_l)):
            prev_ll = log_l
            break
        prev_ll = log_l

    dist = PhaseTypeExponential(weights, scales, offsets_arr)
    return FitResult(dist, prev_ll, ks_distance(data, dist), len(data), iters)


def fit_shifted_gamma(
    samples: Sequence[float], offset: float | None = None
) -> FitResult:
    """Moment fit of a single shifted gamma (shape/scale from mean & var)."""
    data = _prepare(samples)
    if offset is None:
        spread = float(data.max() - data.min()) or 1.0
        offset = float(data.min()) - 1e-3 * spread
    y = data - offset
    if np.any(y <= 0):
        raise DistributionError("samples lie at or below the requested offset")
    m = float(np.mean(y))
    v = max(float(np.var(y)), _EPS)
    shape = max(m * m / v, _EPS)
    scale = v / m
    dist = ShiftedGamma(shape, scale, offset)
    log_l = float(np.sum(np.log(np.maximum(dist.pdf(data), _EPS))))
    return FitResult(dist, log_l, ks_distance(data, dist), len(data), 1)


def fit_multi_stage_gamma(
    samples: Sequence[float],
    n_stages: int = 2,
    offsets: Sequence[float] | None = None,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> FitResult:
    """EM fit of an ``n_stages``-component multi-stage gamma mixture.

    The M-step matches each stage's weighted mean and variance (method of
    moments), which keeps every iteration closed-form.
    """
    data = _prepare(samples)
    if n_stages < 1:
        raise DistributionError("n_stages must be >= 1")
    if n_stages == 1:
        off = None if offsets is None else offsets[0]
        return fit_shifted_gamma(data, off)

    if offsets is None:
        qs = np.linspace(0.0, 0.8, n_stages)
        offsets_arr = np.quantile(data, qs)
        offsets_arr[0] = data.min() - 1e-3 * (np.ptp(data) or 1.0)
    else:
        offsets_arr = as_float_array(offsets, "offsets")
        if len(offsets_arr) != n_stages:
            raise DistributionError("offsets length must equal n_stages")
    offsets_arr = np.sort(offsets_arr)

    weights = np.full(n_stages, 1.0 / n_stages)
    shapes = np.full(n_stages, 1.5)
    base_scale = max(float(np.std(data)) / 1.5, _EPS)
    scales = np.full(n_stages, base_scale)

    prev_ll = -np.inf
    iters = 0
    for iters in range(1, max_iter + 1):
        dens = np.zeros((n_stages, len(data)))
        for k in range(n_stages):
            stage = ShiftedGamma(shapes[k], scales[k], offsets_arr[k])
            dens[k] = weights[k] * np.asarray(stage.pdf(data))
        total = np.maximum(dens.sum(axis=0), _EPS)
        resp = dens / total
        log_l = float(np.sum(np.log(total)))

        mass = resp.sum(axis=1)
        weights = np.maximum(mass / len(data), _EPS)
        weights = weights / weights.sum()
        for k in range(n_stages):
            if mass[k] < _EPS:
                continue
            y = np.maximum(data - offsets_arr[k], _EPS)
            m = float(np.sum(resp[k] * y) / mass[k])
            v = float(np.sum(resp[k] * (y - m) ** 2) / mass[k])
            v = max(v, _EPS)
            shapes[k] = min(max(m * m / v, 0.05), 1e4)
            scales[k] = max(v / m, _EPS)

        if abs(log_l - prev_ll) < tol * (1.0 + abs(log_l)):
            prev_ll = log_l
            break
        prev_ll = log_l

    dist = MultiStageGamma(weights, shapes, scales, offsets_arr)
    return FitResult(dist, prev_ll, ks_distance(data, dist), len(data), iters)


def fit_best(
    samples: Sequence[float],
    max_phases: int = 3,
    families: tuple[str, ...] = ("exponential", "gamma"),
) -> FitResult:
    """Fit both families over 1..``max_phases`` components and pick the
    lowest KS distance — the GDS "fit" button, automated."""
    data = _prepare(samples)
    candidates: list[FitResult] = []
    for n in range(1, max_phases + 1):
        if "exponential" in families:
            try:
                candidates.append(fit_phase_type_exponential(data, n))
            except DistributionError:
                pass
        if "gamma" in families:
            try:
                candidates.append(fit_multi_stage_gamma(data, n))
            except DistributionError:
                pass
    if not candidates:
        raise DistributionError("no family could be fitted to the samples")
    return min(candidates, key=lambda r: r.ks_statistic)
