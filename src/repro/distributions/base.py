"""Distribution protocol shared by every distribution family.

The thesis (section 3.1.3) requires that *all* usage measures be described by
full distributions, not just means, and that the families be general enough
to fit empirical data (phase-type exponential, multi-stage gamma, or raw
PDF/CDF tables).  This module defines the small interface the rest of the
system programs against.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

__all__ = ["Distribution", "DistributionError", "as_float_array"]


class DistributionError(ValueError):
    """Raised for invalid distribution parameters or unusable inputs."""


def as_float_array(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    """Validate and convert ``values`` to a 1-D float array.

    Raises :class:`DistributionError` for empty input or non-finite entries,
    which would otherwise surface much later as NaNs in sampled workloads.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if arr.size == 0:
        raise DistributionError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise DistributionError(f"{name} must contain only finite values")
    return arr


class Distribution(abc.ABC):
    """A one-dimensional distribution over a (possibly shifted) support.

    Concrete families implement ``pdf``/``cdf``/``mean``/``var`` analytically
    where possible and ``sample`` by direct transformation.  The GDS
    additionally tabulates any distribution into a :class:`~repro.distributions.cdf_table.CdfTable`
    for the inverse-transform sampling path the thesis describes.
    """

    @abc.abstractmethod
    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Probability density evaluated at ``x`` (vectorised)."""

    @abc.abstractmethod
    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Cumulative distribution evaluated at ``x`` (vectorised)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @abc.abstractmethod
    def var(self) -> float:
        """Variance."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw ``size`` variates (or a scalar when ``size`` is ``None``)."""

    @abc.abstractmethod
    def support(self) -> tuple[float, float]:
        """Return ``(lo, hi)`` bounds outside which the density is zero.

        ``hi`` may be ``math.inf``.  Used by the GDS to pick tabulation
        ranges automatically.
        """

    def std(self) -> float:
        """Standard deviation (derived from :meth:`var`)."""
        return float(np.sqrt(self.var()))

    def quantile_range(self, q: float = 0.999) -> tuple[float, float]:
        """A finite ``[lo, hi]`` interval covering probability ``q``.

        The default implementation walks the CDF with doubling steps; exact
        families may override.  This is what the GDS uses to bound Simpson
        integration when the support is infinite.
        """
        lo, hi = self.support()
        if np.isfinite(hi):
            return lo, hi
        # Expand until the CDF exceeds q.
        width = max(1.0, abs(self.mean()) + 4.0 * self.std())
        hi = lo + width
        for _ in range(128):
            if float(self.cdf(hi)) >= q:
                return lo, hi
            hi = lo + (hi - lo) * 2.0
        return lo, hi

    def describe(self) -> str:
        """One-line human-readable summary used in logs and the CLI."""
        return (
            f"{type(self).__name__}(mean={self.mean():.6g}, "
            f"std={self.std():.6g})"
        )
