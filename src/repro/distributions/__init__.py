"""Distribution library for the synthetic workload generator.

Implements the two parametric families the thesis's GDS supports natively
(phase-type exponential and multi-stage gamma), tabular PDF/CDF input,
empirical distributions, Simpson-rule CDF tabulation with inverse-transform
sampling, EM-based fitting, and reproducible named random streams.
"""

from .base import Distribution, DistributionError
from .basic import Constant, Uniform
from .batch import BatchSampler
from .cdf_table import CdfTable, simpson_cdf
from .empirical import EmpiricalDistribution, TabulatedCdf, TabulatedPdf
from .exponential import PhaseTypeExponential, ShiftedExponential
from .fitting import (
    FitResult,
    fit_best,
    fit_multi_stage_gamma,
    fit_phase_type_exponential,
    fit_shifted_exponential,
    fit_shifted_gamma,
    ks_distance,
    ks_test,
    ks_two_sample,
)
from .gamma import MultiStageGamma, ShiftedGamma
from .rng import RandomStreams, derive_seed
from .serialize import from_jsonable, to_jsonable

__all__ = [
    "Distribution",
    "DistributionError",
    "Constant",
    "Uniform",
    "BatchSampler",
    "CdfTable",
    "simpson_cdf",
    "EmpiricalDistribution",
    "TabulatedCdf",
    "TabulatedPdf",
    "PhaseTypeExponential",
    "ShiftedExponential",
    "MultiStageGamma",
    "ShiftedGamma",
    "FitResult",
    "fit_best",
    "fit_multi_stage_gamma",
    "fit_phase_type_exponential",
    "fit_shifted_exponential",
    "fit_shifted_gamma",
    "ks_distance",
    "ks_test",
    "ks_two_sample",
    "RandomStreams",
    "derive_seed",
    "from_jsonable",
    "to_jsonable",
]
