"""Canonical registry of named random-stream identifiers.

Every byte-identity guarantee in this repository — cross-backend op-stream
equality, shard-invariant fleet merges, bit-for-bit resume — reduces to one
rule: a quantity's randomness comes from exactly one *named* stream
(:class:`repro.distributions.rng.RandomStreams`), and every consumer spells
that name identically.  The single most frequent historical cause of a
byte-identity break has been a backend drawing from a *misspelled* stream
name: ``derive_seed`` happily hashes any string, so ``"writemix"`` silently
yields a different (but internally consistent) generator than
``"write-mix"`` and the bug only surfaces later as a golden-test diff.

This module is the machine-checked source of truth.  The static-analysis
pass ``python -m repro.devtools.detlint`` (rule ``stream-name-registry``)
collects every string literal passed to ``RandomStreams.get`` / ``fork`` /
``spawn_seed`` (and to the lazy ``_stream_factory`` helper) across the DES,
fast and columnar paths, and fails the build when a name is not registered
here.  Adding a new stream therefore *requires* touching this file, which is
exactly the review visibility the determinism contract needs.

Fixed names are matched exactly; dynamic families (per-user forks,
per-category samplers, per-shard seeds) are matched by their static
f-string prefix.
"""

from __future__ import annotations

__all__ = ["STREAM_NAMES", "STREAM_PREFIXES", "is_registered_stream"]

# Exact stream names, by consumer.  Keep the comments: they are the map
# from a name to the code that owns it.
STREAM_NAMES = frozenset(
    {
        # -- per-user family: SessionGenerator (core/synthesis.py) --------
        "select",      # usage-entry fraction gates + pool choice
        "slot",        # plan-interleave slot uniforms (one per op)
        "chunk",       # per-access chunk sizes
        "think",       # think times
        "write-mix",   # read-vs-write uniforms for RD_WRT categories
        "seek",        # random-access seek offsets
        "phase",       # PhaseModel transition uniforms
        # -- per-user family: ArrivalModel (core/arrivals.py) --------------
        "first-login",  # first-session offset from run start
        "session-gap",  # inter-session idle gaps
        # -- root family: FileSystemCreator (core/fsc.py) ------------------
        "fsc",          # initial file-system sizes, fixed file order
    }
)

# Dynamic stream families: a name built with an f-string must start with
# one of these static prefixes.
STREAM_PREFIXES = (
    "user-",   # RandomStreams.fork(f"user-{user_id}") — per-user family root
    "shard-",  # spawn_seed(f"shard-{index}") — shard-local randomness only
    "count:",  # per-category file-count sampler   (count:{category.key})
    "apb:",    # per-category accesses-per-byte    (apb:{category.key})
    "size:",   # per-category new-file sizes       (size:{category.key})
)


def is_registered_stream(name: str) -> bool:
    """True when ``name`` is a registered stream name or family member."""
    return name in STREAM_NAMES or name.startswith(STREAM_PREFIXES)
