"""Tabular and empirical distributions.

The GDS lets users "supply the probability density function (PDF) values or
CDF values directly" (section 4.1.1) instead of fitting a parametric family.
:class:`TabulatedPdf` and :class:`TabulatedCdf` are those two input forms;
:class:`EmpiricalDistribution` builds a distribution directly from observed
samples (the route used when characterising a trace).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Distribution, DistributionError, as_float_array

__all__ = ["TabulatedPdf", "TabulatedCdf", "EmpiricalDistribution"]


def _check_grid(x: np.ndarray, name: str) -> None:
    if len(x) < 2:
        raise DistributionError(f"{name} needs at least two grid points")
    if np.any(np.diff(x) <= 0):
        raise DistributionError(f"{name} grid must be strictly increasing")


class TabulatedPdf(Distribution):
    """A density given as ``(x, pdf(x))`` value pairs on a finite grid.

    Values between grid points are linearly interpolated; the table is
    normalised so the trapezoid-rule integral is one.  The CDF is the exact
    integral of that piecewise-linear density, so ``pdf``/``cdf`` are
    mutually consistent.
    """

    def __init__(self, xs: Sequence[float], densities: Sequence[float]):
        self.xs = as_float_array(xs, "xs")
        raw = as_float_array(densities, "densities")
        if len(self.xs) != len(raw):
            raise DistributionError("xs and densities must have equal length")
        _check_grid(self.xs, "TabulatedPdf")
        if np.any(raw < 0):
            raise DistributionError("densities must be non-negative")
        area = float(np.trapezoid(raw, self.xs))
        if area <= 0:
            raise DistributionError("densities integrate to zero")
        self.densities = raw / area
        # Cumulative trapezoid integral at each grid point.
        segment = (
            0.5
            * (self.densities[1:] + self.densities[:-1])
            * np.diff(self.xs)
        )
        self._cdf_at_grid = np.concatenate([[0.0], np.cumsum(segment)])
        # Guard against round-off: force the final value to exactly one.
        self._cdf_at_grid[-1] = 1.0

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.interp(x, self.xs, self.densities, left=0.0, right=0.0)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.interp(x, self.xs, self._cdf_at_grid, left=0.0, right=1.0)
        # np.interp is linear between grid points which slightly mis-states
        # the quadratic segments of an integrated linear density, but the
        # error is O(h^2) and vanishes with grid resolution.
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return float(np.trapezoid(self.xs * self.densities, self.xs))

    def var(self) -> float:
        ex2 = float(np.trapezoid(self.xs**2 * self.densities, self.xs))
        return ex2 - self.mean() ** 2

    def sample(self, rng: np.random.Generator, size: int | None = None):
        n = 1 if size is None else int(size)
        u = rng.random(n)
        draws = np.interp(u, self._cdf_at_grid, self.xs)
        if size is None:
            return float(draws[0])
        return draws

    def support(self) -> tuple[float, float]:
        return float(self.xs[0]), float(self.xs[-1])

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TabulatedPdf)
            and np.array_equal(self.xs, other.xs)
            and np.array_equal(self.densities, other.densities)
        )

    def __hash__(self) -> int:
        return hash((TabulatedPdf, self.xs.tobytes(), self.densities.tobytes()))


class TabulatedCdf(Distribution):
    """A distribution given as ``(x, cdf(x))`` value pairs on a finite grid.

    The table must be non-decreasing; it is rescaled to span [0, 1].  The PDF
    is the piecewise-constant derivative of the interpolated CDF.
    """

    def __init__(self, xs: Sequence[float], cdf_values: Sequence[float]):
        self.xs = as_float_array(xs, "xs")
        raw = as_float_array(cdf_values, "cdf_values")
        if len(self.xs) != len(raw):
            raise DistributionError("xs and cdf_values must have equal length")
        _check_grid(self.xs, "TabulatedCdf")
        if np.any(np.diff(raw) < 0):
            raise DistributionError("cdf_values must be non-decreasing")
        span = raw[-1] - raw[0]
        if span <= 0:
            raise DistributionError("cdf_values must strictly increase overall")
        self.cdf_values = (raw - raw[0]) / span

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        slopes = np.diff(self.cdf_values) / np.diff(self.xs)
        idx = np.clip(np.searchsorted(self.xs, x, side="right") - 1, 0, len(slopes) - 1)
        inside = (x >= self.xs[0]) & (x <= self.xs[-1])
        out = np.where(inside, slopes[idx], 0.0)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.interp(x, self.xs, self.cdf_values, left=0.0, right=1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        # E[X] from the piecewise-linear CDF: sum over segments of midpoint
        # times probability mass in the segment.
        mids = 0.5 * (self.xs[1:] + self.xs[:-1])
        mass = np.diff(self.cdf_values)
        return float(np.sum(mids * mass))

    def var(self) -> float:
        # Second moment of a uniform on each segment, weighted by its mass.
        a, b = self.xs[:-1], self.xs[1:]
        seg_ex2 = (a * a + a * b + b * b) / 3.0
        mass = np.diff(self.cdf_values)
        ex2 = float(np.sum(seg_ex2 * mass))
        return ex2 - self.mean() ** 2

    def sample(self, rng: np.random.Generator, size: int | None = None):
        n = 1 if size is None else int(size)
        u = rng.random(n)
        draws = np.interp(u, self.cdf_values, self.xs)
        if size is None:
            return float(draws[0])
        return draws

    def support(self) -> tuple[float, float]:
        return float(self.xs[0]), float(self.xs[-1])

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TabulatedCdf)
            and np.array_equal(self.xs, other.xs)
            and np.array_equal(self.cdf_values, other.cdf_values)
        )

    def __hash__(self) -> int:
        return hash((TabulatedCdf, self.xs.tobytes(), self.cdf_values.tobytes()))


class EmpiricalDistribution(Distribution):
    """The empirical distribution of a set of observed samples.

    Sampling draws uniformly from the observations (a bootstrap draw), which
    is the natural "replay the measured marginal" behaviour; ``cdf`` is the
    usual step ECDF and ``pdf`` a histogram density estimate.
    """

    def __init__(self, samples: Sequence[float], bins: int = 50):
        self.samples = np.sort(as_float_array(samples, "samples"))
        if bins < 1:
            raise DistributionError("bins must be >= 1")
        self._bins = int(bins)
        lo, hi = float(self.samples[0]), float(self.samples[-1])
        if hi == lo:
            hi = lo + 1.0
        self._hist, self._edges = np.histogram(
            self.samples, bins=self._bins, range=(lo, hi), density=True
        )

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        idx = np.clip(
            np.searchsorted(self._edges, x, side="right") - 1,
            0,
            len(self._hist) - 1,
        )
        inside = (x >= self._edges[0]) & (x <= self._edges[-1])
        out = np.where(inside, self._hist[idx], 0.0)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.searchsorted(self.samples, x, side="right") / len(self.samples)
        out = np.asarray(out, dtype=float)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return float(np.mean(self.samples))

    def var(self) -> float:
        return float(np.var(self.samples))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        n = 1 if size is None else int(size)
        draws = rng.choice(self.samples, size=n, replace=True)
        if size is None:
            return float(draws[0])
        return draws

    def support(self) -> tuple[float, float]:
        return float(self.samples[0]), float(self.samples[-1])

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EmpiricalDistribution)
            and self._bins == other._bins
            and np.array_equal(self.samples, other.samples)
        )

    def __hash__(self) -> int:
        return hash((EmpiricalDistribution, self._bins, self.samples.tobytes()))
