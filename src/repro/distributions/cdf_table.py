"""CDF tables: the GDS output consumed by the FSC and the USIM.

The thesis's pipeline (Figure 4.1) is explicit: the GDS turns every
specified distribution into a *table of CDF values*, and both the File
System Creator and the User Simulator draw random variates from those
tables, not from the parametric forms.  "To compute CDF values from PDF
values, Sympson's [Simpson's] method for numerical integration is used"
(section 4.1.1).

We reproduce that design faithfully:

* :func:`simpson_cdf` integrates a density on a uniform grid with composite
  Simpson's rule (odd panels handled with a trapezoid tail).
* :class:`CdfTable` stores ``(x, cdf)`` pairs and samples by inverse
  transform with linear interpolation.
* ``CdfTable.memory_bytes`` exposes the memory footprint the thesis warns
  about in section 4.2 (#user-types x #file-types x #samples can blow up).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .base import Distribution, DistributionError, as_float_array

__all__ = ["simpson_cdf", "CdfTable"]


def simpson_cdf(
    pdf: Callable[[np.ndarray], np.ndarray],
    lo: float,
    hi: float,
    n_points: int = 257,
) -> tuple[np.ndarray, np.ndarray]:
    """Integrate ``pdf`` on ``[lo, hi]`` into CDF values at ``n_points`` knots.

    Composite Simpson's rule is applied cumulatively over successive pairs
    of panels; with an even number of panels every knot value is a pure
    Simpson result, otherwise the final panel falls back to the trapezoid
    rule.  The result is clipped to be non-decreasing in [0, 1] and the last
    knot is pinned to the total integral estimate (then normalised to 1).

    Returns ``(xs, cdf_values)``.
    """
    if n_points < 3:
        raise DistributionError("n_points must be >= 3 for Simpson's rule")
    if not (np.isfinite(lo) and np.isfinite(hi)) or hi <= lo:
        raise DistributionError(f"bad integration range [{lo!r}, {hi!r}]")
    xs = np.linspace(lo, hi, n_points)
    h = xs[1] - xs[0]
    f = np.asarray(pdf(xs), dtype=float)
    if f.shape != xs.shape:
        raise DistributionError("pdf callable must be vectorised")
    if np.any(f < -1e-12):
        raise DistributionError("pdf returned negative density")
    f = np.maximum(f, 0.0)

    cdf = np.zeros_like(xs)
    # Simpson over panel pairs [i, i+2].
    pair_increments = (h / 3.0) * (f[:-2:2] + 4.0 * f[1:-1:2] + f[2::2])
    # Midpoint estimate inside each pair via Simpson "3/8-free" split:
    # integral over [x_i, x_{i+1}] = h/12 * (5 f_i + 8 f_{i+1} - f_{i+2}).
    half_increments = (h / 12.0) * (5.0 * f[:-2:2] + 8.0 * f[1:-1:2] - f[2::2])

    even_cum = np.concatenate([[0.0], np.cumsum(pair_increments)])
    for k in range(len(pair_increments)):
        cdf[2 * k + 1] = even_cum[k] + half_increments[k]
        cdf[2 * k + 2] = even_cum[k + 1]
    if n_points % 2 == 0:
        # Odd number of panels: close the last one with the trapezoid rule.
        cdf[-1] = cdf[-2] + 0.5 * h * (f[-2] + f[-1])

    cdf = np.maximum.accumulate(np.clip(cdf, 0.0, None))
    total = cdf[-1]
    if total <= 0:
        raise DistributionError("pdf integrates to zero over the range")
    return xs, cdf / total


class CdfTable:
    """A sampled CDF with inverse-transform random variate generation.

    This is the concrete artefact the GDS hands to the FSC and the USIM.
    """

    def __init__(self, xs: Sequence[float], cdf_values: Sequence[float]):
        self.xs = as_float_array(xs, "xs")
        self.cdf_values = as_float_array(cdf_values, "cdf_values")
        if len(self.xs) != len(self.cdf_values):
            raise DistributionError("xs and cdf_values must have equal length")
        if len(self.xs) < 2:
            raise DistributionError("a CDF table needs at least two knots")
        if np.any(np.diff(self.xs) <= 0):
            raise DistributionError("xs must be strictly increasing")
        if np.any(np.diff(self.cdf_values) < 0):
            raise DistributionError("cdf_values must be non-decreasing")
        if abs(self.cdf_values[0]) > 1e-9 or abs(self.cdf_values[-1] - 1.0) > 1e-9:
            raise DistributionError("cdf_values must start at 0 and end at 1")
        self.cdf_values[0] = 0.0
        self.cdf_values[-1] = 1.0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_distribution(
        cls,
        dist: Distribution,
        n_points: int = 257,
        coverage: float = 0.999,
    ) -> "CdfTable":
        """Tabulate ``dist`` by Simpson-integrating its PDF.

        ``coverage`` bounds the integration window for infinite supports
        (the table then represents the distribution truncated to that
        probability mass, renormalised — exactly what a finite CDF table
        must do).
        """
        lo, hi = dist.quantile_range(coverage)
        if hi <= lo:
            hi = lo + 1.0
        xs, cdf = simpson_cdf(lambda x: np.asarray(dist.pdf(x)), lo, hi, n_points)
        return cls(xs, cdf)

    @classmethod
    def from_samples(cls, samples: Sequence[float], n_points: int = 257) -> "CdfTable":
        """Build a table from observed data via the empirical CDF."""
        data = np.sort(as_float_array(samples, "samples"))
        lo, hi = float(data[0]), float(data[-1])
        if hi == lo:
            hi = lo + 1.0
        xs = np.linspace(lo, hi, n_points)
        cdf = np.searchsorted(data, xs, side="right") / len(data)
        cdf[0] = 0.0
        cdf[-1] = 1.0
        cdf = np.maximum.accumulate(cdf)
        return cls(xs, cdf)

    # -- use ---------------------------------------------------------------

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Inverse-transform sampling with linear interpolation."""
        n = 1 if size is None else int(size)
        u = rng.random(n)
        draws = np.interp(u, self.cdf_values, self.xs)
        if size is None:
            return float(draws[0])
        return draws

    def quantile(self, q: float | np.ndarray):
        """Inverse CDF at ``q`` (vectorised)."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise DistributionError("quantile argument must lie in [0, 1]")
        out = np.interp(q, self.cdf_values, self.xs)
        return out if out.ndim else float(out)

    def cdf(self, x: float | np.ndarray):
        """CDF value at ``x`` by linear interpolation."""
        x = np.asarray(x, dtype=float)
        out = np.interp(x, self.xs, self.cdf_values, left=0.0, right=1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        """Mean of the tabulated (piecewise-linear CDF) distribution."""
        mids = 0.5 * (self.xs[1:] + self.xs[:-1])
        mass = np.diff(self.cdf_values)
        return float(np.sum(mids * mass))

    @property
    def n_points(self) -> int:
        """Number of knots in the table."""
        return len(self.xs)

    @property
    def memory_bytes(self) -> int:
        """Approximate storage footprint (the section 4.2 concern)."""
        return int(self.xs.nbytes + self.cdf_values.nbytes)

    def __repr__(self) -> str:
        return (
            f"CdfTable(n_points={self.n_points}, "
            f"range=[{self.xs[0]:.6g}, {self.xs[-1]:.6g}])"
        )
