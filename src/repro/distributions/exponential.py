"""Shifted and phase-type exponential distributions.

The thesis defines (section 5.1) the phase-type exponential density

    f(x) = sum_i w_i * exp(theta_i, x - s_i)

where ``exp(theta, y) = (1/theta) * e^(-y/theta)`` for ``0 <= y < inf``,
the ``w_i`` sum to one, and ``s_i`` are per-phase offsets.  Note the thesis
parameterises each phase by its *mean* ``theta`` (scale), not its rate: the
Figure 5.1 captions such as ``f(x) = exp(22.1, x)`` denote an exponential
with mean 22.1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Distribution, DistributionError, as_float_array

__all__ = ["ShiftedExponential", "PhaseTypeExponential"]


class ShiftedExponential(Distribution):
    """An exponential with mean ``scale`` shifted right by ``offset``.

    This is a single phase of the thesis's phase-type family: density
    ``(1/scale) * exp(-(x - offset)/scale)`` for ``x >= offset``.
    """

    def __init__(self, scale: float, offset: float = 0.0):
        if not np.isfinite(scale) or scale <= 0:
            raise DistributionError(f"scale must be positive, got {scale!r}")
        if not np.isfinite(offset):
            raise DistributionError(f"offset must be finite, got {offset!r}")
        self.scale = float(scale)
        self.offset = float(offset)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        y = x - self.offset
        # Clamp before exponentiating so the masked-out branch cannot
        # overflow (np.where still evaluates both sides).
        safe = np.maximum(y, 0.0)
        out = np.where(y >= 0.0, np.exp(-safe / self.scale) / self.scale, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        y = x - self.offset
        safe = np.maximum(y, 0.0)
        out = np.where(y >= 0.0, 1.0 - np.exp(-safe / self.scale), 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.offset + self.scale

    def var(self) -> float:
        return self.scale**2

    def sample(self, rng: np.random.Generator, size: int | None = None):
        draws = rng.exponential(self.scale, size=size)
        return draws + self.offset

    def support(self) -> tuple[float, float]:
        return self.offset, np.inf

    def __repr__(self) -> str:
        return f"ShiftedExponential(scale={self.scale!r}, offset={self.offset!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ShiftedExponential)
            and self.scale == other.scale
            and self.offset == other.offset
        )

    def __hash__(self) -> int:
        return hash((ShiftedExponential, self.scale, self.offset))


class PhaseTypeExponential(Distribution):
    """Mixture of shifted exponentials — the thesis's phase-type family.

    Parameters
    ----------
    weights:
        Mixture weights ``w_i``; must be positive and sum to one (a small
        tolerance is accepted and renormalised).
    scales:
        Per-phase means ``theta_i`` (the thesis's first argument to
        ``exp(theta, y)``).
    offsets:
        Per-phase shifts ``s_i``.  Defaults to all zeros.

    Example (third panel of Figure 5.1)::

        PhaseTypeExponential(
            weights=[0.4, 0.3, 0.3],
            scales=[12.7, 18.2, 24.5],
            offsets=[0.0, 18.0, 41.0],
        )
    """

    def __init__(
        self,
        weights: Sequence[float],
        scales: Sequence[float],
        offsets: Sequence[float] | None = None,
    ):
        self.weights = as_float_array(weights, "weights")
        self.scales = as_float_array(scales, "scales")
        if offsets is None:
            offsets = np.zeros_like(self.scales)
        self.offsets = as_float_array(offsets, "offsets")
        if not (len(self.weights) == len(self.scales) == len(self.offsets)):
            raise DistributionError(
                "weights, scales and offsets must have equal length; got "
                f"{len(self.weights)}, {len(self.scales)}, {len(self.offsets)}"
            )
        if np.any(self.weights <= 0):
            raise DistributionError("weights must be strictly positive")
        if np.any(self.scales <= 0):
            raise DistributionError("scales must be strictly positive")
        total = float(self.weights.sum())
        if abs(total - 1.0) > 1e-6:
            raise DistributionError(
                f"weights must sum to 1 (within 1e-6), got {total!r}"
            )
        self.weights = self.weights / total
        self._cum_weights = np.cumsum(self.weights)
        self._phases = [
            ShiftedExponential(s, o) for s, o in zip(self.scales, self.offsets)
        ]

    @property
    def n_phases(self) -> int:
        """Number of mixture phases ``N``."""
        return len(self._phases)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for w, phase in zip(self.weights, self._phases):
            out = out + w * phase.pdf(x)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for w, phase in zip(self.weights, self._phases):
            out = out + w * phase.cdf(x)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return float(np.sum(self.weights * (self.offsets + self.scales)))

    def var(self) -> float:
        # Var = E[X^2] - E[X]^2 with per-phase second moments.
        second = self.scales**2 * 2 + 2 * self.offsets * self.scales + self.offsets**2
        ex2 = float(np.sum(self.weights * second))
        return ex2 - self.mean() ** 2

    def sample(self, rng: np.random.Generator, size: int | None = None):
        # Per-element inverse transform: each variate consumes exactly two
        # uniforms in row-major order (phase pick, then the phase's
        # exponential quantile), so element i of a size-N draw equals the
        # i-th scalar draw — the property batched sampling relies on.
        n = 1 if size is None else int(size)
        u = rng.random((n, 2))
        phase_idx = np.minimum(
            np.searchsorted(self._cum_weights, u[:, 0], side="right"),
            self.n_phases - 1,
        )
        draws = (
            -self.scales[phase_idx] * np.log1p(-u[:, 1])
            + self.offsets[phase_idx]
        )
        if size is None:
            return float(draws[0])
        return draws

    def support(self) -> tuple[float, float]:
        return float(self.offsets.min()), np.inf

    def __repr__(self) -> str:
        return (
            "PhaseTypeExponential("
            f"weights={self.weights.tolist()!r}, "
            f"scales={self.scales.tolist()!r}, "
            f"offsets={self.offsets.tolist()!r})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PhaseTypeExponential)
            and np.array_equal(self.weights, other.weights)
            and np.array_equal(self.scales, other.scales)
            and np.array_equal(self.offsets, other.offsets)
        )

    def __hash__(self) -> int:
        return hash(
            (
                PhaseTypeExponential,
                self.weights.tobytes(),
                self.scales.tobytes(),
                self.offsets.tobytes(),
            )
        )
