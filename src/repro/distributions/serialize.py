"""JSON (de)serialisation for distribution objects.

Calibrated workload specs must be shareable artefacts (the trace
subsystem writes them to disk and the scenario registry loads them back),
so every distribution family the spec layer can hold needs a stable,
version-free JSON form.  The codec is a registry keyed by a ``kind``
string; payloads are plain JSON-able dicts of floats and lists.

Round-trip guarantee: ``from_jsonable(to_jsonable(d)) == d`` for every
supported family (the families define value-based ``__eq__``).
"""

from __future__ import annotations

from typing import Any, Callable

from .base import Distribution, DistributionError
from .basic import Constant, Uniform
from .empirical import EmpiricalDistribution, TabulatedCdf, TabulatedPdf
from .exponential import PhaseTypeExponential, ShiftedExponential
from .gamma import MultiStageGamma, ShiftedGamma

__all__ = ["to_jsonable", "from_jsonable"]


def _encode_constant(d: Constant) -> dict[str, Any]:
    return {"value": d.value}


def _encode_uniform(d: Uniform) -> dict[str, Any]:
    return {"lo": d.lo, "hi": d.hi}


def _encode_shifted_exponential(d: ShiftedExponential) -> dict[str, Any]:
    return {"scale": d.scale, "offset": d.offset}


def _encode_phase_type_exponential(d: PhaseTypeExponential) -> dict[str, Any]:
    return {
        "weights": d.weights.tolist(),
        "scales": d.scales.tolist(),
        "offsets": d.offsets.tolist(),
    }


def _encode_shifted_gamma(d: ShiftedGamma) -> dict[str, Any]:
    return {"shape": d.shape, "scale": d.scale, "offset": d.offset}


def _encode_multi_stage_gamma(d: MultiStageGamma) -> dict[str, Any]:
    return {
        "weights": d.weights.tolist(),
        "shapes": d.shapes.tolist(),
        "scales": d.scales.tolist(),
        "offsets": d.offsets.tolist(),
    }


def _encode_empirical(d: EmpiricalDistribution) -> dict[str, Any]:
    return {"samples": d.samples.tolist(), "bins": d._bins}


def _encode_tabulated_pdf(d: TabulatedPdf) -> dict[str, Any]:
    return {"xs": d.xs.tolist(), "densities": d.densities.tolist()}


def _encode_tabulated_cdf(d: TabulatedCdf) -> dict[str, Any]:
    return {"xs": d.xs.tolist(), "cdf_values": d.cdf_values.tolist()}


# kind -> (class, encode, decode). Decoders take the payload dict minus
# the "kind" key and must reproduce an equal object.
_CODECS: dict[str, tuple[type, Callable, Callable]] = {
    "constant": (Constant, _encode_constant, lambda p: Constant(p["value"])),
    "uniform": (Uniform, _encode_uniform, lambda p: Uniform(p["lo"], p["hi"])),
    "shifted-exponential": (
        ShiftedExponential,
        _encode_shifted_exponential,
        lambda p: ShiftedExponential(p["scale"], p.get("offset", 0.0)),
    ),
    "phase-type-exponential": (
        PhaseTypeExponential,
        _encode_phase_type_exponential,
        lambda p: PhaseTypeExponential(p["weights"], p["scales"], p.get("offsets")),
    ),
    "shifted-gamma": (
        ShiftedGamma,
        _encode_shifted_gamma,
        lambda p: ShiftedGamma(p["shape"], p["scale"], p.get("offset", 0.0)),
    ),
    "multi-stage-gamma": (
        MultiStageGamma,
        _encode_multi_stage_gamma,
        lambda p: MultiStageGamma(p["weights"], p["shapes"], p["scales"], p.get("offsets")),
    ),
    "empirical": (
        EmpiricalDistribution,
        _encode_empirical,
        lambda p: EmpiricalDistribution(p["samples"], bins=int(p.get("bins", 50))),
    ),
    "tabulated-pdf": (
        TabulatedPdf,
        _encode_tabulated_pdf,
        lambda p: TabulatedPdf(p["xs"], p["densities"]),
    ),
    "tabulated-cdf": (
        TabulatedCdf,
        _encode_tabulated_cdf,
        lambda p: TabulatedCdf(p["xs"], p["cdf_values"]),
    ),
}

_KIND_BY_TYPE = {cls: kind for kind, (cls, _, _) in _CODECS.items()}


def to_jsonable(dist: Distribution) -> dict[str, Any]:
    """Encode ``dist`` as a JSON-able dict with a ``kind`` discriminator."""
    kind = _KIND_BY_TYPE.get(type(dist))
    if kind is None:
        raise DistributionError(
            f"cannot serialise a {type(dist).__name__}; supported kinds: "
            f"{', '.join(sorted(_CODECS))}"
        )
    _, encode, _ = _CODECS[kind]
    payload = encode(dist)
    payload["kind"] = kind
    return payload


def from_jsonable(payload: dict[str, Any]) -> Distribution:
    """Decode a dict produced by :func:`to_jsonable`."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise DistributionError(f"not a distribution payload: {payload!r}")
    kind = payload["kind"]
    if kind not in _CODECS:
        raise DistributionError(
            f"unknown distribution kind {kind!r}; supported: {', '.join(sorted(_CODECS))}"
        )
    _, _, decode = _CODECS[kind]
    try:
        return decode(payload)
    except DistributionError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise DistributionError(f"bad {kind!r} payload: {exc}") from exc
