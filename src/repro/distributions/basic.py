"""Degenerate and uniform distributions.

The experiment matrix needs a few trivial distributions the thesis uses
implicitly: the "extremely heavy I/O" user type has *zero* think time
(Table 5.4), which is a point mass, and uniform draws are handy for
parameter sweeps and tests.
"""

from __future__ import annotations

import numpy as np

from .base import Distribution, DistributionError

__all__ = ["Constant", "Uniform"]


class Constant(Distribution):
    """A point mass at ``value`` (e.g. the zero think time of Table 5.4)."""

    def __init__(self, value: float):
        if not np.isfinite(value):
            raise DistributionError(f"value must be finite, got {value!r}")
        self.value = float(value)

    def pdf(self, x):
        # A Dirac delta has no density; report the indicator for plotting.
        x = np.asarray(x, dtype=float)
        out = np.where(x == self.value, np.inf, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(x >= self.value, 1.0, 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.value

    def var(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return self.value
        return np.full(int(size), self.value)

    def support(self) -> tuple[float, float]:
        return self.value, self.value

    def quantile_range(self, q: float = 0.999) -> tuple[float, float]:
        return self.value, self.value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash((Constant, self.value))


class Uniform(Distribution):
    """Continuous uniform on ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float):
        if not (np.isfinite(lo) and np.isfinite(hi)) or hi <= lo:
            raise DistributionError(f"need finite lo < hi, got [{lo!r}, {hi!r}]")
        self.lo = float(lo)
        self.hi = float(hi)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (x >= self.lo) & (x <= self.hi)
        out = np.where(inside, 1.0 / (self.hi - self.lo), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.clip((x - self.lo) / (self.hi - self.lo), 0.0, 1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def var(self) -> float:
        return (self.hi - self.lo) ** 2 / 12.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        draws = rng.uniform(self.lo, self.hi, size=size)
        return draws

    def support(self) -> tuple[float, float]:
        return self.lo, self.hi

    def __repr__(self) -> str:
        return f"Uniform(lo={self.lo!r}, hi={self.hi!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Uniform) and self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((Uniform, self.lo, self.hi))
