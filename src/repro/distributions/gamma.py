"""Shifted and multi-stage gamma distributions.

The thesis defines (section 5.1) the multi-stage gamma density

    f(x) = sum_i w_i * g(alpha_i, theta_i, x - s_i)

where ``g(alpha, theta, y) = y^(alpha-1) e^(-y/theta) / (Gamma(alpha) theta^alpha)``
for ``0 <= y < inf``, the ``w_i`` sum to one, and ``s_i`` are per-stage
offsets.  Devarakonda and Iyer [DI86] found that real file and usage
distributions are well approximated by this family, which is why the GDS
supports it natively.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import special

from .base import Distribution, DistributionError, as_float_array

__all__ = ["ShiftedGamma", "MultiStageGamma"]


class ShiftedGamma(Distribution):
    """A gamma(shape, scale) shifted right by ``offset``.

    Density ``g(shape, scale, x - offset)`` in the thesis's notation.
    """

    def __init__(self, shape: float, scale: float, offset: float = 0.0):
        if not np.isfinite(shape) or shape <= 0:
            raise DistributionError(f"shape must be positive, got {shape!r}")
        if not np.isfinite(scale) or scale <= 0:
            raise DistributionError(f"scale must be positive, got {scale!r}")
        if not np.isfinite(offset):
            raise DistributionError(f"offset must be finite, got {offset!r}")
        self.shape = float(shape)
        self.scale = float(scale)
        self.offset = float(offset)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        y = x - self.offset
        with np.errstate(divide="ignore", invalid="ignore"):
            log_pdf = (
                (self.shape - 1.0) * np.log(y)
                - y / self.scale
                - special.gammaln(self.shape)
                - self.shape * np.log(self.scale)
            )
            out = np.where(y > 0.0, np.exp(log_pdf), 0.0)
        # A shape-1 gamma has positive density at y == 0.
        if self.shape == 1.0:
            out = np.where(y == 0.0, 1.0 / self.scale, out)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        y = np.maximum(x - self.offset, 0.0)
        out = special.gammainc(self.shape, y / self.scale)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.offset + self.shape * self.scale

    def var(self) -> float:
        return self.shape * self.scale**2

    def sample(self, rng: np.random.Generator, size: int | None = None):
        draws = rng.gamma(self.shape, self.scale, size=size)
        return draws + self.offset

    def support(self) -> tuple[float, float]:
        return self.offset, np.inf

    def __repr__(self) -> str:
        return (
            f"ShiftedGamma(shape={self.shape!r}, scale={self.scale!r}, "
            f"offset={self.offset!r})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ShiftedGamma)
            and self.shape == other.shape
            and self.scale == other.scale
            and self.offset == other.offset
        )

    def __hash__(self) -> int:
        return hash((ShiftedGamma, self.shape, self.scale, self.offset))


class MultiStageGamma(Distribution):
    """Mixture of shifted gammas — the thesis's multi-stage gamma family.

    Example (third panel of Figure 5.2)::

        MultiStageGamma(
            weights=[0.7, 0.2, 0.1],
            shapes=[1.3, 1.5, 1.3],
            scales=[12.3, 12.4, 12.3],
            offsets=[0.0, 23.0, 41.0],
        )
    """

    def __init__(
        self,
        weights: Sequence[float],
        shapes: Sequence[float],
        scales: Sequence[float],
        offsets: Sequence[float] | None = None,
    ):
        self.weights = as_float_array(weights, "weights")
        self.shapes = as_float_array(shapes, "shapes")
        self.scales = as_float_array(scales, "scales")
        if offsets is None:
            offsets = np.zeros_like(self.scales)
        self.offsets = as_float_array(offsets, "offsets")
        lengths = {
            len(self.weights),
            len(self.shapes),
            len(self.scales),
            len(self.offsets),
        }
        if len(lengths) != 1:
            raise DistributionError(
                "weights, shapes, scales and offsets must have equal length"
            )
        if np.any(self.weights <= 0):
            raise DistributionError("weights must be strictly positive")
        total = float(self.weights.sum())
        if abs(total - 1.0) > 1e-6:
            raise DistributionError(
                f"weights must sum to 1 (within 1e-6), got {total!r}"
            )
        self.weights = self.weights / total
        self._cum_weights = np.cumsum(self.weights)
        self._stages = [
            ShiftedGamma(a, s, o)
            for a, s, o in zip(self.shapes, self.scales, self.offsets)
        ]

    @property
    def n_stages(self) -> int:
        """Number of mixture stages ``N``."""
        return len(self._stages)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for w, stage in zip(self.weights, self._stages):
            out = out + w * stage.pdf(x)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for w, stage in zip(self.weights, self._stages):
            out = out + w * stage.cdf(x)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        stage_means = self.offsets + self.shapes * self.scales
        return float(np.sum(self.weights * stage_means))

    def var(self) -> float:
        stage_means = self.offsets + self.shapes * self.scales
        stage_vars = self.shapes * self.scales**2
        ex2 = float(np.sum(self.weights * (stage_vars + stage_means**2)))
        return ex2 - self.mean() ** 2

    def sample(self, rng: np.random.Generator, size: int | None = None):
        # Per-element inverse transform: each variate consumes exactly two
        # uniforms in row-major order (stage pick, then the stage's gamma
        # quantile via the inverse regularised incomplete gamma), so
        # element i of a size-N draw equals the i-th scalar draw — the
        # property batched sampling relies on.
        n = 1 if size is None else int(size)
        u = rng.random((n, 2))
        stage_idx = np.minimum(
            np.searchsorted(self._cum_weights, u[:, 0], side="right"),
            self.n_stages - 1,
        )
        draws = (
            special.gammaincinv(self.shapes[stage_idx], u[:, 1])
            * self.scales[stage_idx]
            + self.offsets[stage_idx]
        )
        if size is None:
            return float(draws[0])
        return draws

    def support(self) -> tuple[float, float]:
        return float(self.offsets.min()), np.inf

    def __repr__(self) -> str:
        return (
            "MultiStageGamma("
            f"weights={self.weights.tolist()!r}, "
            f"shapes={self.shapes.tolist()!r}, "
            f"scales={self.scales.tolist()!r}, "
            f"offsets={self.offsets.tolist()!r})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MultiStageGamma)
            and np.array_equal(self.weights, other.weights)
            and np.array_equal(self.shapes, other.shapes)
            and np.array_equal(self.scales, other.scales)
            and np.array_equal(self.offsets, other.offsets)
        )

    def __hash__(self) -> int:
        return hash(
            (
                MultiStageGamma,
                self.weights.tobytes(),
                self.shapes.tobytes(),
                self.scales.tobytes(),
                self.offsets.tobytes(),
            )
        )
