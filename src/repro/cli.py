"""Command-line interface: ``python -m repro`` / ``repro-workload``.

Subcommands mirror the workload generator's pipeline and the paper's
experiments:

* ``simulate`` — run a simulated experiment and print the measurements;
* ``real`` — drive a real directory with the generated workload;
* ``figures`` — regenerate a paper table/figure by identifier;
* ``compare`` — the section 5.3 file-system comparison;
* ``mkfs`` — create the initial file system in a directory (FSC only);
* ``fleet run`` — sharded multi-process generation from a named scenario,
  with supervised retry, ``--resume``, and ``--inject-fault`` chaos runs;
* ``fleet scenarios`` — list the scenario library;
* ``stream verify`` — CRC-walk an op-stream artifact, non-zero on damage;
* ``characterize`` — re-derive the Table 5.2 characterization from a log;
* ``trace import`` — parse an external trace into the usage-log format;
* ``trace calibrate`` — fit a workload spec (JSON artefact) to a trace;
* ``trace validate`` — closed-loop fidelity check of a calibrated spec;
* ``trace formats`` — list the trace adapters.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import __version__
from .core import RUN_BACKENDS, WorkloadGenerator, paper_workload_spec
from .faults import FaultError, parse_fault
from .fleet import (
    FleetConfig,
    FleetPartialError,
    resume_fleet_config,
    run_fleet,
)
from .harness import (
    fleet_report,
    compare_file_systems,
    figure_5_1,
    figure_5_2,
    figure_5_3,
    figure_5_4,
    figure_5_5,
    figure_5_6,
    figure_5_7,
    figure_5_8,
    figure_5_9,
    figure_5_10,
    figure_5_11,
    figure_5_12,
    format_kv,
    table_5_1,
    table_5_2,
    table_5_3,
    table_5_4,
)

__all__ = ["main", "build_parser"]

_FIGURES = {
    "table5.1": lambda: table_5_1(),
    "table5.2": lambda: table_5_2(),
    "table5.3": lambda: table_5_3(),
    "table5.4": lambda: table_5_4(),
    "fig5.1": lambda: figure_5_1(),
    "fig5.2": lambda: figure_5_2(),
    "fig5.3": lambda: figure_5_3(),
    "fig5.4": lambda: figure_5_4(),
    "fig5.5": lambda: figure_5_5(),
    "fig5.6": lambda: figure_5_6(),
    "fig5.7": lambda: figure_5_7(),
    "fig5.8": lambda: figure_5_8(),
    "fig5.9": lambda: figure_5_9(),
    "fig5.10": lambda: figure_5_10(),
    "fig5.11": lambda: figure_5_11(),
    "fig5.12": lambda: figure_5_12(),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-workload",
        description="User-oriented synthetic workload generator "
                    "(Kao 1991 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--users", type=int, default=2)
        p.add_argument("--sessions", type=int, default=5,
                       help="login sessions per user")
        p.add_argument("--files", type=int, default=300,
                       help="files the FSC creates")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--heavy-fraction", type=float, default=1.0)
        p.add_argument("--think-us", type=float, default=5000.0,
                       help="heavy users' mean think time (µs)")

    def arrival_args(p: argparse.ArgumentParser) -> None:
        from .core import profile_names

        p.add_argument("--arrivals", action="store_true",
                       help="enable the temporal load model: users log "
                            "in at drawn offsets and pause between "
                            "sessions instead of starting together at "
                            "clock 0 (same op stream, shifted timeline)")
        p.add_argument("--profile", choices=profile_names(), default=None,
                       help="diurnal intensity profile shaping the login "
                            "offsets (implies --arrivals)")

    def stream_out_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--out-stream", metavar="PATH", default=None,
                       help="also spill the op stream to a columnar "
                            "stream-file artifact (re-readable with "
                            "`stream info/replay`)")
        p.add_argument("--stream-budget-bytes", type=int, default=None,
                       metavar="N",
                       help="stream-file buffer budget: at most N bytes "
                            "of column data held between chunk flushes "
                            "(default 64 MiB)")

    def obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="write a run-manifest JSON artifact (seed, "
                            "spec hash, versions, per-stage timings, peak "
                            "RSS, all counters) after the run")
        p.add_argument("--progress", action="store_true",
                       help="paint a live one-line progress display "
                            "(users done, ops/s, ETA) to stderr")

    sim = sub.add_parser("simulate", help="run a simulated experiment")
    common(sim)
    sim.add_argument("--backend", choices=RUN_BACKENDS,
                     default="nfs",
                     help="execution backend: nfs/local/afs run the DES "
                          "(full queueing fidelity); fast replays the "
                          "identical op stream with analytic service "
                          "times, no engine; fast-columnar does the same "
                          "through vectorized array batches")
    arrival_args(sim)
    stream_out_args(sim)
    obs_args(sim)

    real = sub.add_parser("real", help="drive a real directory")
    common(real)
    real.add_argument("directory", help="sandbox directory to create/use")
    real.add_argument("--sleep-thinks", action="store_true",
                      help="actually sleep think times (paced live load)")

    mkfs = sub.add_parser("mkfs", help="create the initial file system only")
    common(mkfs)
    mkfs.add_argument("directory")

    fig = sub.add_parser("figures", help="regenerate a paper table/figure")
    fig.add_argument("ident", choices=sorted(_FIGURES),
                     help="e.g. table5.3 or fig5.6")

    cmp_p = sub.add_parser("compare", help="section 5.3 comparison")
    common(cmp_p)

    fleet = sub.add_parser(
        "fleet", help="sharded multi-process workload generation"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser(
        "run", help="run a scenario sharded across worker processes"
    )
    fleet_run.add_argument("--scenario", default="paper-campus",
                           help="a name from `fleet scenarios`")
    fleet_run.add_argument("--users", type=int, default=100,
                           help="population size across all shards")
    fleet_run.add_argument("--shards", type=int, default=1,
                           help="independent simulated sites to split into")
    fleet_run.add_argument("--workers", type=int, default=None,
                           help="worker processes (default: min(shards, cores))")
    fleet_run.add_argument("--sessions", type=int, default=None,
                           help="login sessions per user "
                                "(default: the scenario's)")
    fleet_run.add_argument("--seed", type=int, default=0)
    fleet_run.add_argument("--files", type=int, default=None,
                           help="FSC file count (default: scenario-scaled)")
    fleet_run.add_argument("--backend",
                           choices=RUN_BACKENDS,
                           default="nfs",
                           help="DES backend, or `fast`/`fast-columnar` "
                                "for engine-free analytic replay (same op "
                                "stream, many times the ops/s)")
    fleet_run.add_argument("--oplog", metavar="PATH", default=None,
                           help="also collect and write the merged usage log")
    arrival_args(fleet_run)
    fleet_run.add_argument("--window-us", type=float, default=None,
                           help="offered-load window width (µs; default: "
                                "1 hour when arrivals are enabled)")
    stream_out_args(fleet_run)
    obs_args(fleet_run)
    fleet_run.add_argument("--resume", metavar="RUN_DIR", default=None,
                           help="continue a killed stream run from its "
                                "<out-stream>.run directory; verified "
                                "chunks are reused, only the tail is "
                                "regenerated (bit-for-bit identical)")
    fleet_run.add_argument("--max-retries", type=int, default=2,
                           help="retries per shard before quarantine "
                                "(default: 2)")
    fleet_run.add_argument("--shard-timeout-s", type=float, default=None,
                           help="kill and retry a shard with no progress "
                                "heartbeat for this long")
    fleet_run.add_argument("--allow-partial", action="store_true",
                           help="accept a run with quarantined shards "
                                "instead of exiting with status 3")
    fleet_run.add_argument("--keep-run-dir", action="store_true",
                           help="keep <out-stream>.run after a failed run "
                                "so it can be resumed")
    fleet_run.add_argument("--inject-fault", metavar="SPEC", default=[],
                           action="append", dest="inject_faults",
                           help="arm a deterministic fault (repeatable), "
                                "e.g. kill:shard=0,row=120 or "
                                "enospc:shard=1,chunk=2 — see repro.faults")

    fleet_sub.add_parser("scenarios", help="list the scenario library")

    stream = sub.add_parser(
        "stream", help="inspect, merge and replay op-stream artifacts"
    )
    stream_sub = stream.add_subparsers(dest="stream_command", required=True)

    s_info = stream_sub.add_parser(
        "info", help="print an artifact's header, totals and metadata"
    )
    s_info.add_argument("streamfile")

    s_verify = stream_sub.add_parser(
        "verify",
        help="CRC-walk every chunk of an artifact; non-zero exit and a "
             "per-chunk error report on corruption or truncation",
    )
    s_verify.add_argument("streamfile")

    s_merge = stream_sub.add_parser(
        "merge",
        help="k-way merge per-shard artifacts into one canonical file",
    )
    s_merge.add_argument("inputs", nargs="+", metavar="SHARD")
    s_merge.add_argument("-o", "--output", required=True,
                         help="merged artifact path")

    s_replay = stream_sub.add_parser(
        "replay",
        help="re-execute an artifact from disk through the columnar "
             "sink path (no regeneration) and print the aggregate",
    )
    s_replay.add_argument("streamfile")
    s_replay.add_argument("--oplog", metavar="PATH", default=None,
                          help="also write the replayed usage log")
    s_replay.add_argument("--users", metavar="IDS", default=None,
                          help="only replay these user ids "
                               "(comma-separated)")
    s_replay.add_argument("--window-us", metavar="LO:HI", default=None,
                          help="only replay ops starting in [LO, HI) µs")

    char = sub.add_parser(
        "characterize",
        help="re-derive the Table 5.2 characterization from a usage log",
    )
    char.add_argument("logfile", help="a usage log (e.g. fleet run --oplog)")
    char.add_argument("--json", action="store_true",
                      help="emit JSON instead of the table")

    trace = sub.add_parser(
        "trace", help="trace ingestion, calibration and validation"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def trace_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--format", dest="fmt", default=None,
                       help="trace format (default: sniff); "
                            "see `trace formats`")
        p.add_argument("--gap-us", type=float, default=None,
                       help="idle gap (µs) that splits sessions when the "
                            "trace has no session records (default 30 min)")
        p.add_argument("--strict", action="store_true",
                       help="fail on the first malformed line")

    trace_sub.add_parser("formats", help="list the trace adapters")

    t_import = trace_sub.add_parser(
        "import", help="parse an external trace into the usage-log format"
    )
    t_import.add_argument("tracefile")
    trace_common(t_import)
    t_import.add_argument("-o", "--output", default=None,
                          help="output usage-log path (default: stdout)")

    t_cal = trace_sub.add_parser(
        "calibrate", help="fit a WorkloadSpec to a trace; write spec JSON"
    )
    t_cal.add_argument("tracefile")
    trace_common(t_cal)
    t_cal.add_argument("-o", "--output", default=None,
                       help="spec JSON path (default: <trace>.spec.json)")
    t_cal.add_argument("--method", choices=("fit", "empirical", "exponential"),
                       default="fit",
                       help="how measure samples become distributions")
    t_cal.add_argument("--seed", type=int, default=0)
    t_cal.add_argument("--users", type=int, default=None,
                       help="spec population (default: users seen in trace)")
    t_cal.add_argument("--total-files", type=int, default=None,
                       help="spec FSC size (default: paths seen in trace)")
    t_cal.add_argument("--name", default="calibrated",
                       help="user-type name in the spec")

    t_val = trace_sub.add_parser(
        "validate",
        help="closed loop: regenerate from a calibrated spec and compare",
    )
    t_val.add_argument("specfile", help="spec JSON from `trace calibrate`")
    t_val.add_argument("--against", required=True, metavar="TRACE",
                       help="the source trace to compare the synthetic "
                            "workload with")
    trace_common(t_val)
    t_val.add_argument("--sessions", type=int, default=None,
                       help="synthetic sessions per user "
                            "(default: match the source)")
    t_val.add_argument("--shards", type=int, default=1,
                       help="regenerate via the fleet layer when > 1")
    t_val.add_argument("--backend", choices=RUN_BACKENDS,
                       default="nfs",
                       help="regeneration backend; `fast`/`fast-columnar` "
                            "skip the DES "
                            "(content-identical, so fidelity measures "
                            "other than think time are unaffected)")
    t_val.add_argument("--threshold", type=float, default=None,
                       help="KS pass/fail threshold (default 0.35)")
    t_val.add_argument("--seed", type=int, default=None,
                       help="override the spec's seed for regeneration")
    t_val.add_argument("--json", metavar="PATH", default=None,
                       help="also write the report as JSON")
    return parser


def _spec_from(args: argparse.Namespace):
    return paper_workload_spec(
        n_users=args.users,
        total_files=args.files,
        seed=args.seed,
        heavy_fraction=args.heavy_fraction,
        heavy_think_us=args.think_us,
    )


def _arrivals_from(args: argparse.Namespace):
    """The ``--arrivals``/``--profile`` flags as an ArrivalModel (or None)."""
    if not (args.arrivals or args.profile):
        return None
    from .core import DEFAULT_ARRIVALS, get_profile

    model = DEFAULT_ARRIVALS
    if args.profile:
        model = model.with_profile(get_profile(args.profile))
    return model


def _print_summary(result) -> None:
    analyzer = result.analyzer
    resp = analyzer.response_time_stats().summary()
    print(format_kv(
        {
            "backend": result.backend,
            "sessions": len(result.log.sessions),
            "system calls": len(result.log.operations),
            "mean response (µs)": resp["mean"],
            "response std (µs)": resp["std"],
            "response per byte (µs/B)": analyzer.response_per_byte(),
        },
        title="Run summary",
    ))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "simulate":
        log = None
        stream_sink = None
        observer = None
        meter = None
        if args.metrics_out is not None or args.progress:
            from .obs import ProgressMeter, RunObserver

            if args.progress:
                meter = ProgressMeter(total_users=args.users,
                                      label=f"simulate[{args.backend}]")
            observer = RunObserver(progress=meter)
        if args.out_stream is not None:
            from .core import (
                DEFAULT_MEMORY_BUDGET,
                StreamFileSink,
                TeeSink,
                UsageLog,
            )

            usage = UsageLog()
            stream_sink = StreamFileSink(
                args.out_stream,
                memory_budget_bytes=(args.stream_budget_bytes
                                     or DEFAULT_MEMORY_BUDGET),
                metadata={
                    "tool": "repro-simulate",
                    "backend": args.backend,
                    "seed": args.seed,
                    "users": args.users,
                    "sessions_per_user": args.sessions,
                },
                observer=observer,
            )
            log = TeeSink(usage, stream_sink)
        started = time.perf_counter()
        try:
            result = WorkloadGenerator(_spec_from(args)).run_simulated(
                sessions_per_user=args.sessions, backend=args.backend,
                arrivals=_arrivals_from(args), log=log, observer=observer,
            )
        finally:
            if stream_sink is not None:
                stream_sink.close()
        wall_s = time.perf_counter() - started
        if meter is not None:
            meter.finish()
        if stream_sink is not None:
            result.log = usage  # the analyzer needs the UsageLog, not the tee
        _print_summary(result)
        if stream_sink is not None:
            print(f"\nop stream ({stream_sink.chunks_written} chunks) "
                  f"written to {args.out_stream}")
        if args.metrics_out is not None:
            from .obs import build_manifest, write_manifest

            manifest = build_manifest(
                observer.snapshot(),
                seed=args.seed,
                backend=args.backend,
                spec=result.spec,
                n_users=args.users,
                wall_s=wall_s,
                simulated_us=result.simulated_duration_us,
                extra={
                    "sessions_per_user": args.sessions,
                    "out_stream": args.out_stream,
                },
            )
            write_manifest(args.metrics_out, manifest)
            print(f"\nrun manifest written to {args.metrics_out}")
    elif args.command == "real":
        result = WorkloadGenerator(_spec_from(args)).run_real(
            args.directory,
            sessions_per_user=args.sessions,
            sleep_thinks=args.sleep_thinks,
        )
        _print_summary(result)
    elif args.command == "mkfs":
        from .vfs import LocalFileSystem

        generator = WorkloadGenerator(_spec_from(args))
        layout = generator.create_file_system(LocalFileSystem(args.directory))
        print(format_kv(
            {
                "directory": args.directory,
                "files created": layout.total_files,
                "per-category": ", ".join(
                    f"{k}={v}" for k, v in
                    sorted(layout.count_by_category().items())
                ),
            },
            title="File system created",
        ))
    elif args.command == "fleet":
        return _main_fleet(args)
    elif args.command == "stream":
        return _main_stream(args)
    elif args.command == "characterize":
        return _main_characterize(args)
    elif args.command == "trace":
        return _main_trace(args)
    elif args.command == "figures":
        print(_FIGURES[args.ident]().formatted())
    elif args.command == "compare":
        comparison = compare_file_systems(
            n_users=args.users,
            sessions_total=args.sessions * args.users,
            total_files=args.files,
            seed=args.seed,
            heavy_fraction=args.heavy_fraction,
        )
        print(comparison.formatted())
    return 0


def _main_fleet(args: argparse.Namespace) -> int:
    from .scenarios import get_scenario, scenario_names

    if args.fleet_command == "scenarios":
        from .harness import format_table

        rows = []
        for name in scenario_names():
            scenario = get_scenario(name)
            rows.append((name, scenario.access_pattern,
                         scenario.description))
        print(format_table(["name", "access", "description"], rows,
                           title="Scenario library"))
        return 0

    from .core import SpecError
    from .scenarios import ScenarioError

    probe_created = False
    if args.oplog is not None:
        # Fail fast on an unwritable target, but do not truncate an
        # existing file until the run has actually produced a log.
        import os

        probe_created = not os.path.exists(args.oplog)
        try:
            with open(args.oplog, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write --oplog: {exc}", file=sys.stderr)
            return 2
    try:
        faults = tuple(parse_fault(text) for text in args.inject_faults)
    except FaultError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    partial = None
    try:
        if args.resume is not None:
            config = resume_fleet_config(
                args.resume,
                workers=args.workers,
                progress=args.progress,
                metrics_out=args.metrics_out,
                max_retries=args.max_retries,
                retry_backoff_s=0.25,
                shard_timeout_s=args.shard_timeout_s,
                allow_partial=args.allow_partial,
                keep_run_dir=args.keep_run_dir or not args.allow_partial,
                faults=faults,
            )
        else:
            config = FleetConfig(
                scenario=args.scenario,
                users=args.users,
                shards=args.shards,
                workers=args.workers,
                sessions_per_user=args.sessions,
                seed=args.seed,
                backend=args.backend,
                total_files=args.files,
                collect_ops=args.oplog is not None,
                use_arrivals=args.arrivals,
                profile=args.profile,
                window_us=args.window_us,
                out_stream=args.out_stream,
                stream_budget_bytes=args.stream_budget_bytes,
                metrics_out=args.metrics_out,
                progress=args.progress,
                max_retries=args.max_retries,
                shard_timeout_s=args.shard_timeout_s,
                faults=faults,
                allow_partial=args.allow_partial,
                # Keep the checkpoint dir when a run fails outright so
                # `fleet run --resume` has something to pick up; a run
                # accepted via --allow-partial published its artifact
                # and sweeps unless the user asked otherwise.
                keep_run_dir=args.keep_run_dir or not args.allow_partial,
            )
        result = run_fleet(config)
    except FleetPartialError as exc:
        result = exc.result
        partial = str(exc)
    except (ScenarioError, SpecError) as exc:
        # KeyError reprs its message with quotes; unwrap for a clean line.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        if probe_created:
            import os

            try:
                os.unlink(args.oplog)
            except OSError:
                pass
        return 2
    print(fleet_report(result))
    if partial is not None:
        if result.metrics_out is not None:
            print(f"\npartial-run manifest written to {result.metrics_out}")
        if config.keep_run_dir and config.run_dir is not None:
            print(f"\ncheckpoints kept in {config.run_dir}; rerun with "
                  f"`fleet run --resume {config.run_dir}` to finish")
        print(f"error: {partial}", file=sys.stderr)
        return 3
    if args.oplog is not None and result.log is not None:
        with open(args.oplog, "w", encoding="utf-8") as stream:
            result.log.dump(stream)
        print(f"\nmerged usage log ({len(result.log.operations)} ops) "
              f"written to {args.oplog}")
    if result.out_stream is not None:
        print(f"\nmerged op-stream artifact ({result.tally.operations} ops) "
              f"written to {result.out_stream}")
    if args.metrics_out is not None:
        print(f"\nrun manifest written to {args.metrics_out}")
    return 0


def _main_stream(args: argparse.Namespace) -> int:
    from .core import StreamFormatError, StreamReader, merge_stream_files

    if args.stream_command == "info":
        try:
            with StreamReader(args.streamfile) as reader:
                print(format_kv(reader.info_kv(),
                                title="Op-stream artifact"))
        except StreamFormatError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.stream_command == "verify":
        import os

        from .core import verify_stream

        if not os.path.exists(args.streamfile):
            print(f"error: no such file: {args.streamfile}", file=sys.stderr)
            return 2
        report = verify_stream(args.streamfile)
        print(format_kv(report.as_kv(),
                        title="Op-stream verification"))
        for error in report.errors:
            print(f"  - {error}")
        return 0 if report.ok else 1

    if args.stream_command == "merge":
        try:
            rows = merge_stream_files(args.output, args.inputs)
        except (StreamFormatError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"merged {len(args.inputs)} shard artifact(s), {rows} op "
              f"rows, into {args.output}")
        return 0

    if args.stream_command == "replay":
        from .fleet.merge import ShardAccumulator

        users = None
        if args.users is not None:
            try:
                users = [int(u) for u in args.users.split(",") if u]
            except ValueError:
                print(f"error: bad --users list {args.users!r}",
                      file=sys.stderr)
                return 2
        time_range = None
        if args.window_us is not None:
            try:
                lo, hi = args.window_us.split(":")
                time_range = (float(lo), float(hi))
            except ValueError:
                print("error: --window-us wants LO:HI, got "
                      f"{args.window_us!r}", file=sys.stderr)
                return 2
        sink = ShardAccumulator(collect_ops=args.oplog is not None)
        filtered = users is not None or time_range is not None
        try:
            with StreamReader(args.streamfile) as reader:
                if filtered:
                    # A slice has no complete session boundaries; replay
                    # the matching op rows only.
                    rows = sessions = 0
                    for batch in reader.iter_batches(users=users,
                                                     time_range=time_range):
                        sink.record_batch(batch)
                        rows += len(batch)
                else:
                    rows, sessions = reader.replay(sink)
        except StreamFormatError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        summary = dict(sink.tally.as_kv())
        summary["sessions replayed"] = sessions
        print(format_kv(
            summary,
            title=f"Replayed {rows} op rows from {args.streamfile}"
                  + (" (sliced)" if filtered else ""),
        ))
        if args.oplog is not None:
            with open(args.oplog, "w", encoding="utf-8") as stream:
                sink.log.dump(stream)
            print(f"\nreplayed usage log written to {args.oplog}")
        return 0
    raise AssertionError(f"unhandled stream command {args.stream_command!r}")


def _main_characterize(args: argparse.Namespace) -> int:
    from .core import UsageAnalyzer, UsageLog
    from .harness import format_table

    try:
        with open(args.logfile, "r", encoding="utf-8") as stream:
            log = UsageLog.load(stream)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read usage log: {exc}", file=sys.stderr)
        return 2
    rows = UsageAnalyzer(log).characterization()
    if args.json:
        import json

        print(json.dumps(
            [
                {
                    "category": row.category_key,
                    "mean_accesses_per_byte": row.mean_accesses_per_byte,
                    "mean_file_size": row.mean_file_size,
                    "mean_files": row.mean_files,
                    "percent_of_users": row.percent_of_users,
                    "sessions_accessing": row.sessions_accessing,
                }
                for row in rows
            ],
            indent=2,
        ))
        return 0
    print(format_table(
        ["category", "accesses/byte", "file size", "# files",
         "% of users", "sessions"],
        [
            (row.category_key, row.mean_accesses_per_byte,
             row.mean_file_size, row.mean_files,
             row.percent_of_users, row.sessions_accessing)
            for row in rows
        ],
        title=f"Characterization of {args.logfile} "
              f"({len(log.sessions)} sessions, "
              f"{len(log.operations)} operations)",
    ))
    return 0


def _main_trace(args: argparse.Namespace) -> int:
    from .harness import format_kv, format_table
    from .traces import (
        DEFAULT_GAP_US,
        TraceError,
        adapter_names,
        calibrate_trace_file,
        get_adapter,
        ingest_trace_file,
        validate_spec,
    )

    if args.trace_command == "formats":
        rows = []
        for name in adapter_names():
            rows.append((name, get_adapter(name).description))
        print(format_table(["format", "description"], rows,
                           title="Trace adapters"))
        return 0

    gap_us = args.gap_us if args.gap_us is not None else DEFAULT_GAP_US

    if args.trace_command == "import":
        from .core import UsageLog

        log = UsageLog()
        try:
            stats, _sizes = ingest_trace_file(
                args.tracefile, log, fmt=args.fmt, gap_us=gap_us,
                strict=args.strict,
            )
        except (OSError, TraceError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_kv(stats.as_kv(), title="Trace import"), file=sys.stderr)
        if stats.issues_total:
            for issue in stats.issue_sample:
                print(f"  {issue}", file=sys.stderr)
        if args.output is None:
            log.dump(sys.stdout)
        else:
            with open(args.output, "w", encoding="utf-8") as stream:
                log.dump(stream)
            print(f"usage log written to {args.output}", file=sys.stderr)
        return 0

    if args.trace_command == "calibrate":
        from .core import dump_spec

        try:
            result = calibrate_trace_file(
                args.tracefile, fmt=args.fmt, gap_us=gap_us,
                method=args.method, seed=args.seed, n_users=args.users,
                total_files=args.total_files, user_type_name=args.name,
                strict=args.strict,
            )
        except (OSError, TraceError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        out = args.output or args.tracefile + ".spec.json"
        try:
            with open(out, "w", encoding="utf-8") as stream:
                dump_spec(result.spec, stream,
                          meta=result.meta(args.tracefile))
        except OSError as exc:
            print(f"error: cannot write spec: {exc}", file=sys.stderr)
            return 2
        print(format_kv(result.stats.as_kv(), title="Trace calibration"))
        if result.stats.issues_total:
            for issue in result.stats.issue_sample:
                print(f"  {issue}")
        spec = result.spec
        print(format_kv(
            {
                "user types": ", ".join(t.name for t in spec.user_types),
                "categories": len(spec.file_categories),
                "population (n_users)": spec.n_users,
                "total files": spec.total_files,
                "think time": spec.user_types[0].think_time.describe(),
                "access size": spec.user_types[0].access_size.describe(),
            },
            title="Calibrated spec",
        ))
        print(f"\nspec written to {out}")
        return 0

    if args.trace_command == "validate":
        from .core import SpecError, UsageLog, loads_spec

        try:
            with open(args.specfile, "r", encoding="utf-8") as stream:
                spec, meta = loads_spec(stream.read())
        except (OSError, SpecError) as exc:
            print(f"error: cannot load spec: {exc}", file=sys.stderr)
            return 2
        # The calibration's idle gap is the right default for re-ingesting
        # the same source trace.
        if args.gap_us is None and isinstance(meta.get("gap_us"), (int, float)):
            gap_us = float(meta["gap_us"])
        source_log = UsageLog()
        try:
            _stats, sizes = ingest_trace_file(
                args.against, source_log, fmt=args.fmt, gap_us=gap_us,
                strict=args.strict,
            )
        except (OSError, TraceError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        from .traces import DEFAULT_KS_THRESHOLD

        report = validate_spec(
            spec, source_log, sizes,
            sessions_per_user=args.sessions,
            shards=args.shards,
            backend=args.backend,
            threshold=(args.threshold if args.threshold is not None
                       else DEFAULT_KS_THRESHOLD),
            seed=args.seed,
        )
        print(report.formatted())
        if args.json is not None:
            try:
                with open(args.json, "w", encoding="utf-8") as stream:
                    stream.write(report.to_json() + "\n")
            except OSError as exc:
                print(f"error: cannot write report: {exc}", file=sys.stderr)
                return 2
            print(f"\nreport written to {args.json}")
        return 0 if report.passed else 1
    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
