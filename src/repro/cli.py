"""Command-line interface: ``python -m repro`` / ``repro-workload``.

Subcommands mirror the workload generator's pipeline and the paper's
experiments:

* ``simulate`` — run a simulated experiment and print the measurements;
* ``real`` — drive a real directory with the generated workload;
* ``figures`` — regenerate a paper table/figure by identifier;
* ``compare`` — the section 5.3 file-system comparison;
* ``mkfs`` — create the initial file system in a directory (FSC only);
* ``fleet run`` — sharded multi-process generation from a named scenario;
* ``fleet scenarios`` — list the scenario library.
"""

from __future__ import annotations

import argparse
import sys

from .core import WorkloadGenerator, paper_workload_spec
from .fleet import FleetConfig, run_fleet
from .harness import (
    fleet_report,
    compare_file_systems,
    figure_5_1,
    figure_5_2,
    figure_5_3,
    figure_5_4,
    figure_5_5,
    figure_5_6,
    figure_5_7,
    figure_5_8,
    figure_5_9,
    figure_5_10,
    figure_5_11,
    figure_5_12,
    format_kv,
    table_5_1,
    table_5_2,
    table_5_3,
    table_5_4,
)

__all__ = ["main", "build_parser"]

_FIGURES = {
    "table5.1": lambda: table_5_1(),
    "table5.2": lambda: table_5_2(),
    "table5.3": lambda: table_5_3(),
    "table5.4": lambda: table_5_4(),
    "fig5.1": lambda: figure_5_1(),
    "fig5.2": lambda: figure_5_2(),
    "fig5.3": lambda: figure_5_3(),
    "fig5.4": lambda: figure_5_4(),
    "fig5.5": lambda: figure_5_5(),
    "fig5.6": lambda: figure_5_6(),
    "fig5.7": lambda: figure_5_7(),
    "fig5.8": lambda: figure_5_8(),
    "fig5.9": lambda: figure_5_9(),
    "fig5.10": lambda: figure_5_10(),
    "fig5.11": lambda: figure_5_11(),
    "fig5.12": lambda: figure_5_12(),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-workload",
        description="User-oriented synthetic workload generator "
                    "(Kao 1991 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--users", type=int, default=2)
        p.add_argument("--sessions", type=int, default=5,
                       help="login sessions per user")
        p.add_argument("--files", type=int, default=300,
                       help="files the FSC creates")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--heavy-fraction", type=float, default=1.0)
        p.add_argument("--think-us", type=float, default=5000.0,
                       help="heavy users' mean think time (µs)")

    sim = sub.add_parser("simulate", help="run a simulated experiment")
    common(sim)
    sim.add_argument("--backend", choices=("nfs", "local", "afs"),
                     default="nfs")

    real = sub.add_parser("real", help="drive a real directory")
    common(real)
    real.add_argument("directory", help="sandbox directory to create/use")
    real.add_argument("--sleep-thinks", action="store_true",
                      help="actually sleep think times (paced live load)")

    mkfs = sub.add_parser("mkfs", help="create the initial file system only")
    common(mkfs)
    mkfs.add_argument("directory")

    fig = sub.add_parser("figures", help="regenerate a paper table/figure")
    fig.add_argument("ident", choices=sorted(_FIGURES),
                     help="e.g. table5.3 or fig5.6")

    cmp_p = sub.add_parser("compare", help="section 5.3 comparison")
    common(cmp_p)

    fleet = sub.add_parser(
        "fleet", help="sharded multi-process workload generation"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_run = fleet_sub.add_parser(
        "run", help="run a scenario sharded across worker processes"
    )
    fleet_run.add_argument("--scenario", default="paper-campus",
                           help="a name from `fleet scenarios`")
    fleet_run.add_argument("--users", type=int, default=100,
                           help="population size across all shards")
    fleet_run.add_argument("--shards", type=int, default=1,
                           help="independent simulated sites to split into")
    fleet_run.add_argument("--workers", type=int, default=None,
                           help="worker processes (default: min(shards, cores))")
    fleet_run.add_argument("--sessions", type=int, default=None,
                           help="login sessions per user "
                                "(default: the scenario's)")
    fleet_run.add_argument("--seed", type=int, default=0)
    fleet_run.add_argument("--files", type=int, default=None,
                           help="FSC file count (default: scenario-scaled)")
    fleet_run.add_argument("--backend", choices=("nfs", "local", "afs"),
                           default="nfs")
    fleet_run.add_argument("--oplog", metavar="PATH", default=None,
                           help="also collect and write the merged usage log")

    fleet_sub.add_parser("scenarios", help="list the scenario library")
    return parser


def _spec_from(args: argparse.Namespace):
    return paper_workload_spec(
        n_users=args.users,
        total_files=args.files,
        seed=args.seed,
        heavy_fraction=args.heavy_fraction,
        heavy_think_us=args.think_us,
    )


def _print_summary(result) -> None:
    analyzer = result.analyzer
    resp = analyzer.response_time_stats().summary()
    print(format_kv(
        {
            "backend": result.backend,
            "sessions": len(result.log.sessions),
            "system calls": len(result.log.operations),
            "mean response (µs)": resp["mean"],
            "response std (µs)": resp["std"],
            "response per byte (µs/B)": analyzer.response_per_byte(),
        },
        title="Run summary",
    ))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "simulate":
        result = WorkloadGenerator(_spec_from(args)).run_simulated(
            sessions_per_user=args.sessions, backend=args.backend
        )
        _print_summary(result)
    elif args.command == "real":
        result = WorkloadGenerator(_spec_from(args)).run_real(
            args.directory,
            sessions_per_user=args.sessions,
            sleep_thinks=args.sleep_thinks,
        )
        _print_summary(result)
    elif args.command == "mkfs":
        from .vfs import LocalFileSystem

        generator = WorkloadGenerator(_spec_from(args))
        layout = generator.create_file_system(LocalFileSystem(args.directory))
        print(format_kv(
            {
                "directory": args.directory,
                "files created": layout.total_files,
                "per-category": ", ".join(
                    f"{k}={v}" for k, v in
                    sorted(layout.count_by_category().items())
                ),
            },
            title="File system created",
        ))
    elif args.command == "fleet":
        return _main_fleet(args)
    elif args.command == "figures":
        print(_FIGURES[args.ident]().formatted())
    elif args.command == "compare":
        comparison = compare_file_systems(
            n_users=args.users,
            sessions_total=args.sessions * args.users,
            total_files=args.files,
            seed=args.seed,
            heavy_fraction=args.heavy_fraction,
        )
        print(comparison.formatted())
    return 0


def _main_fleet(args: argparse.Namespace) -> int:
    from .scenarios import get_scenario, scenario_names

    if args.fleet_command == "scenarios":
        from .harness import format_table

        rows = []
        for name in scenario_names():
            scenario = get_scenario(name)
            rows.append((name, scenario.access_pattern,
                         scenario.description))
        print(format_table(["name", "access", "description"], rows,
                           title="Scenario library"))
        return 0

    from .core import SpecError
    from .scenarios import ScenarioError

    probe_created = False
    if args.oplog is not None:
        # Fail fast on an unwritable target, but do not truncate an
        # existing file until the run has actually produced a log.
        import os

        probe_created = not os.path.exists(args.oplog)
        try:
            with open(args.oplog, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write --oplog: {exc}", file=sys.stderr)
            return 2
    try:
        config = FleetConfig(
            scenario=args.scenario,
            users=args.users,
            shards=args.shards,
            workers=args.workers,
            sessions_per_user=args.sessions,
            seed=args.seed,
            backend=args.backend,
            total_files=args.files,
            collect_ops=args.oplog is not None,
        )
        result = run_fleet(config)
    except (ScenarioError, SpecError) as exc:
        # KeyError reprs its message with quotes; unwrap for a clean line.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        if probe_created:
            import os

            try:
                os.unlink(args.oplog)
            except OSError:
                pass
        return 2
    print(fleet_report(result))
    if args.oplog is not None:
        with open(args.oplog, "w", encoding="utf-8") as stream:
            result.log.dump(stream)
        print(f"\nmerged usage log ({len(result.log.operations)} ops) "
              f"written to {args.oplog}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
