"""The section 5.3 file-system comparison procedure, scripted.

The thesis outlines a six-step method: characterise the environment, feed
the distributions to the GDS, build the file system with the FSC, run the
USIM against each candidate file system under the *same* workload, and
compare.  :func:`compare_file_systems` executes steps 2–6 over our three
simulated candidates (NFS, local disk, AFS-like).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import WorkloadGenerator, paper_workload_spec
from ..nfs import NfsTiming
from .report import format_table

__all__ = ["FileSystemComparison", "CandidateResult", "compare_file_systems"]


@dataclass(frozen=True)
class CandidateResult:
    """Measurements for one candidate file system."""

    backend: str
    response_mean_us: float
    response_std_us: float
    response_per_byte_us: float
    simulated_duration_us: float


@dataclass
class FileSystemComparison:
    """Outcome of the section 5.3 procedure."""

    n_users: int
    sessions_total: int
    candidates: list[CandidateResult]

    @property
    def best_backend(self) -> str:
        """Candidate with the lowest per-byte response time."""
        return min(self.candidates,
                   key=lambda c: c.response_per_byte_us).backend

    def formatted(self) -> str:
        """ASCII table of the comparison."""
        rows = [
            [c.backend, c.response_mean_us, c.response_std_us,
             c.response_per_byte_us, c.simulated_duration_us / 1e6]
            for c in self.candidates
        ]
        return format_table(
            ["file system", "resp mean (µs)", "resp std (µs)",
             "µs/byte", "makespan (s)"],
            rows,
            title=(f"Section 5.3 comparison — {self.n_users} users, "
                   f"~{self.sessions_total} sessions "
                   f"(best: {self.best_backend})"),
        )


def compare_file_systems(
    n_users: int = 4,
    sessions_total: int = 40,
    total_files: int = 300,
    seed: int = 0,
    heavy_fraction: float = 1.0,
    backends: tuple[str, ...] = ("nfs", "local", "afs"),
    timing: NfsTiming | None = None,
) -> FileSystemComparison:
    """Run the identical workload against each candidate backend.

    The same seed means the operation streams are identical call for
    call — only the file-system timing differs, exactly the controlled
    comparison the thesis's procedure prescribes.
    """
    sessions_per_user = max(1, round(sessions_total / n_users))
    candidates: list[CandidateResult] = []
    for backend in backends:
        spec = paper_workload_spec(
            n_users=n_users, total_files=total_files, seed=seed,
            heavy_fraction=heavy_fraction,
        )
        result = WorkloadGenerator(spec).run_simulated(
            sessions_per_user=sessions_per_user,
            backend=backend,
            timing=timing,
        )
        analyzer = result.analyzer
        resp = analyzer.response_time_stats()
        candidates.append(
            CandidateResult(
                backend=backend,
                response_mean_us=resp.mean,
                response_std_us=resp.sample_std,
                response_per_byte_us=analyzer.response_per_byte(),
                simulated_duration_us=result.simulated_duration_us,
            )
        )
    return FileSystemComparison(
        n_users=n_users,
        sessions_total=sessions_total,
        candidates=candidates,
    )
