"""Experiment harness: one function per paper table/figure, plus ablations
and the section 5.3 file-system comparison procedure."""

from .ablations import (
    ablation_cdf_table_points,
    ablation_server_cache,
    ablation_write_policy,
)
from .comparison import (
    CandidateResult,
    FileSystemComparison,
    compare_file_systems,
)
from .figures import (
    FigureResult,
    TableResult,
    figure_5_1,
    figure_5_2,
    figure_5_3,
    figure_5_4,
    figure_5_5,
    figure_5_6,
    figure_5_7,
    figure_5_8,
    figure_5_9,
    figure_5_10,
    figure_5_11,
    figure_5_12,
    response_per_byte_vs_users,
    table_5_1,
    table_5_2,
    table_5_3,
    table_5_4,
)
from .fleet import (
    fleet_aggregate_block,
    fleet_offered_load_block,
    fleet_recovery_block,
    fleet_report,
)
from .report import format_kv, format_series, format_table

__all__ = [
    "ablation_cdf_table_points",
    "ablation_server_cache",
    "ablation_write_policy",
    "CandidateResult",
    "FileSystemComparison",
    "compare_file_systems",
    "FigureResult",
    "TableResult",
    "figure_5_1",
    "figure_5_2",
    "figure_5_3",
    "figure_5_4",
    "figure_5_5",
    "figure_5_6",
    "figure_5_7",
    "figure_5_8",
    "figure_5_9",
    "figure_5_10",
    "figure_5_11",
    "figure_5_12",
    "response_per_byte_vs_users",
    "table_5_1",
    "table_5_2",
    "table_5_3",
    "table_5_4",
    "fleet_aggregate_block",
    "fleet_offered_load_block",
    "fleet_recovery_block",
    "fleet_report",
    "format_kv",
    "format_series",
    "format_table",
]
