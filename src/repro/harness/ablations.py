"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`ablation_write_policy` — write-behind (our calibrated default)
  vs strict NFSv2 write-through.
* :func:`ablation_server_cache` — server buffer-cache size sweep; shows
  why steady-state reads are network-bound, not disk-bound.
* :func:`ablation_cdf_table_points` — the section 4.2 accuracy/memory
  trade-off of the GDS's CDF tables.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core import WorkloadGenerator, paper_workload_spec
from ..distributions import CdfTable, PhaseTypeExponential, ks_distance
from ..nfs import SUN_NFS_TIMING, ServerParameters
from .figures import TableResult

__all__ = [
    "ablation_write_policy",
    "ablation_server_cache",
    "ablation_cdf_table_points",
]


def _run_with_server(server_params: ServerParameters, n_users: int,
                     sessions_total: int, total_files: int, seed: int):
    timing = replace(SUN_NFS_TIMING, server=server_params)
    spec = paper_workload_spec(n_users=n_users, total_files=total_files,
                               seed=seed)
    return WorkloadGenerator(spec).run_simulated(
        sessions_per_user=max(1, round(sessions_total / n_users)),
        timing=timing,
    )


def ablation_write_policy(n_users: int = 3, sessions_total: int = 30,
                          total_files: int = 300, seed: int = 0) -> TableResult:
    """Write-behind vs write-through under the same workload."""
    rows = []
    for policy in ("write-behind", "write-through"):
        result = _run_with_server(
            ServerParameters(write_policy=policy),
            n_users, sessions_total, total_files, seed,
        )
        analyzer = result.analyzer
        resp = analyzer.response_time_stats()
        write_resp = analyzer.response_time_stats(ops=("write",))
        rows.append(
            [
                policy,
                resp.mean,
                resp.sample_std,
                write_resp.mean,
                analyzer.response_per_byte(),
                result.handle.server.disk.total_accesses,
            ]
        )
    return TableResult(
        ident="Ablation A1",
        title="Server write policy (write-behind default vs strict NFSv2)",
        headers=["policy", "resp mean (µs)", "resp std", "write mean (µs)",
                 "µs/byte", "disk accesses"],
        rows=rows,
    )


def ablation_server_cache(n_users: int = 3, sessions_total: int = 30,
                          total_files: int = 300, seed: int = 0,
                          cache_sizes: tuple[int, ...] = (0, 64, 1024),
                          ) -> TableResult:
    """Server buffer-cache size sweep (0 disables caching entirely)."""
    rows = []
    for blocks in cache_sizes:
        result = _run_with_server(
            ServerParameters(cache_blocks=blocks),
            n_users, sessions_total, total_files, seed,
        )
        analyzer = result.analyzer
        read_resp = analyzer.response_time_stats(ops=("read",))
        cache = result.handle.server.cache
        rows.append(
            [
                blocks,
                cache.hit_ratio,
                read_resp.mean,
                analyzer.response_per_byte(),
                result.handle.server.disk.total_accesses,
            ]
        )
    return TableResult(
        ident="Ablation A2",
        title="Server buffer-cache size",
        headers=["cache blocks", "hit ratio", "read mean (µs)",
                 "µs/byte", "disk accesses"],
        rows=rows,
    )


def ablation_cdf_table_points(
    points: tuple[int, ...] = (17, 65, 257, 1025),
    n_samples: int = 20_000,
    seed: int = 0,
) -> TableResult:
    """CDF-table resolution vs sampling fidelity vs memory (section 4.2).

    Fidelity is the KS distance between ``n_samples`` inverse-transform
    draws from the table and the analytic source distribution.
    """
    source = PhaseTypeExponential([0.6, 0.4], [800.0, 2500.0], [0.0, 1500.0])
    # detlint: ignore[no-global-rng] — explicit per-call seed; ablation study, not the op stream
    rng = np.random.default_rng(seed)
    rows = []
    for n_points in points:
        table = CdfTable.from_distribution(source, n_points=n_points)
        draws = table.sample(rng, size=n_samples)
        rows.append(
            [
                n_points,
                ks_distance(draws, source),
                abs(table.mean() - source.mean()) / source.mean(),
                table.memory_bytes,
            ]
        )
    return TableResult(
        ident="Ablation A3",
        title="CDF-table sample count: accuracy vs memory (§4.2 trade-off)",
        headers=["table points", "KS vs analytic", "rel. mean error",
                 "memory (bytes)"],
        rows=rows,
    )
