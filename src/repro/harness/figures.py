"""One function per paper table and figure.

Each function runs the workload generator with the paper's section 5
parameters and returns a structured result carrying both the measured
series/rows and, where the paper states them, the published values for
side-by-side comparison.  The benchmark files under ``benchmarks/`` call
exactly these functions; EXPERIMENTS.md is assembled from their output.

Experiment sizing: the thesis used 600 login sessions for Figures
5.3–5.5 and 50 sessions per measured point elsewhere.  Those are the
defaults here; tests and quick runs pass smaller numbers.

Note on Figures 5.1/5.2: the scanned thesis leaves some panel captions
illegible.  Legible parameters are used verbatim (``exp(22.1, x)``,
``0.4exp(12.7,x)+0.3exp(18.2,x-18)+…``, ``g(1.5,25.4,x-12)``,
``0.7g(1.3,12.3,x)+0.2g(1.5,12.4,x-23)+0.1g(1.3,12.3,x-41)``); the
unreadable panels are reconstructed with parameters of the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import (
    TABLE_5_1,
    TABLE_5_2,
    TABLE_5_4_THINK_TIME_US,
    FileSystemCreator,
    SessionGenerator,
    UsageAnalyzer,
    WorkloadGenerator,
    paper_user_type,
    paper_workload_spec,
)
from ..distributions import (
    MultiStageGamma,
    PhaseTypeExponential,
    RandomStreams,
)
from ..nfs import NfsTiming
from ..vfs import MemoryFileSystem
from .report import format_table

__all__ = [
    "TableResult",
    "FigureResult",
    "table_5_1",
    "table_5_2",
    "table_5_3",
    "table_5_4",
    "figure_5_1",
    "figure_5_2",
    "figure_5_3",
    "figure_5_4",
    "figure_5_5",
    "figure_5_6",
    "figure_5_7",
    "figure_5_8",
    "figure_5_9",
    "figure_5_10",
    "figure_5_11",
    "figure_5_12",
    "response_per_byte_vs_users",
]


@dataclass
class TableResult:
    """A reproduced table: headers + rows, ready to print."""

    ident: str
    title: str
    headers: list[str]
    rows: list[list]

    def formatted(self) -> str:
        """ASCII rendition."""
        return format_table(self.headers, self.rows,
                            title=f"{self.ident}: {self.title}")


@dataclass
class FigureResult:
    """A reproduced figure: one or more named series over a shared x."""

    ident: str
    title: str
    x_label: str
    y_label: str
    xs: list
    series: dict[str, list] = field(default_factory=dict)

    @property
    def ys(self) -> list:
        """The first (or only) series."""
        return next(iter(self.series.values()))

    def formatted(self) -> str:
        """ASCII rendition (one column per series)."""
        headers = [self.x_label] + list(self.series)
        rows = [
            [x] + [self.series[name][i] for name in self.series]
            for i, x in enumerate(self.xs)
        ]
        return format_table(
            headers, rows,
            title=f"{self.ident}: {self.title}  [{self.y_label}]",
        )


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table_5_1(total_files: int = 4000, seed: int = 0) -> TableResult:
    """File characterization: paper's means vs a realised FSC build."""
    spec = paper_workload_spec(n_users=4, total_files=total_files, seed=seed)
    layout = FileSystemCreator(spec).create(MemoryFileSystem())
    measured_sizes = layout.mean_size_by_category()
    counts = layout.count_by_category()
    rows = []
    for row in TABLE_5_1:
        key = row.category.key
        rows.append(
            [
                key,
                row.mean_file_size,
                measured_sizes.get(key, 0.0),
                row.percent_of_files,
                100.0 * counts.get(key, 0) / layout.total_files,
            ]
        )
    return TableResult(
        ident="Table 5.1",
        title="File characterization by file category (paper vs created)",
        headers=["category", "size(paper)", "size(measured)",
                 "%files(paper)", "%files(measured)"],
        rows=rows,
    )


def table_5_2(sessions: int = 300, seed: int = 0) -> TableResult:
    """User characterization: paper's Table 5.2 vs analyzer re-derivation.

    Uses the untimed real-mode executor on an in-memory file system —
    usage characterization does not depend on response times.
    """
    spec = paper_workload_spec(n_users=2, total_files=400, seed=seed)
    generator = WorkloadGenerator(spec)
    result = generator.run_real(
        MemoryFileSystem(),
        sessions_per_user=max(1, sessions // spec.n_users),
    )
    measured = {c.category_key: c
                for c in result.analyzer.characterization()}
    rows = []
    for row in TABLE_5_2:
        key = row.category.key
        got = measured.get(key)
        rows.append(
            [
                key,
                row.mean_accesses_per_byte,
                got.mean_accesses_per_byte if got else 0.0,
                row.mean_files,
                got.mean_files if got else 0.0,
                row.percent_of_users,
                got.percent_of_users if got else 0.0,
            ]
        )
    return TableResult(
        ident="Table 5.2",
        title="User characterization by file category (paper vs measured)",
        headers=["category", "acc/B(paper)", "acc/B(meas)",
                 "files(paper)", "files(meas)",
                 "%users(paper)", "%users(meas)"],
        rows=rows,
    )


_TABLE_5_3_PAPER = {
    1: (946.71, 956.76, 1284.83, 4201.52),
    2: (936.06, 945.16, 1716.26, 7026.62),
    3: (932.80, 946.87, 2120.99, 13308.12),
    4: (956.12, 965.49, 2447.55, 16834.38),
    5: (947.98, 948.53, 2960.32, 16197.86),
    6: (928.66, 935.09, 3494.30, 30059.28),
}


def table_5_3(
    max_users: int = 6,
    sessions_total: int = 50,
    total_files: int = 300,
    seed: int = 0,
    timing: NfsTiming | None = None,
) -> TableResult:
    """Access size and response time vs number of concurrent users.

    Heavy-I/O users (5 000 µs think time) on the simulated NFS, exactly
    the section 5.1 configuration.
    """
    rows = []
    for n_users in range(1, max_users + 1):
        spec = paper_workload_spec(
            n_users=n_users, total_files=total_files, seed=seed
        )
        result = WorkloadGenerator(spec).run_simulated(
            sessions_per_user=max(1, round(sessions_total / n_users)),
            timing=timing,
        )
        analyzer = result.analyzer
        size_stats = analyzer.access_size_stats()
        resp_stats = analyzer.response_time_stats()
        paper = _TABLE_5_3_PAPER.get(n_users, (0, 0, 0, 0))
        rows.append(
            [
                n_users,
                size_stats.mean,
                size_stats.sample_std,
                resp_stats.mean,
                resp_stats.sample_std,
                paper[2],
                paper[3],
            ]
        )
    return TableResult(
        ident="Table 5.3",
        title="Access size & response time (µs) of file access system calls",
        headers=["users", "size mean", "size std",
                 "resp mean", "resp std",
                 "resp mean(paper)", "resp std(paper)"],
        rows=rows,
    )


def table_5_4(sessions: int = 20, seed: int = 0) -> TableResult:
    """The three experiment user types, with measured mean think times."""
    spec = paper_workload_spec(n_users=1, total_files=200, seed=seed)
    layout = FileSystemCreator(spec).create(MemoryFileSystem())
    rows = []
    for name, think_us in TABLE_5_4_THINK_TIME_US.items():
        user_type = paper_user_type(name, think_time_mean_us=think_us)
        generator = SessionGenerator(
            user_type, layout, RandomStreams(seed), user_id=0
        )
        thinks: list[float] = []
        for sid in range(sessions):
            thinks.extend(
                op.size for op in generator.generate_session(sid)
                if op.kind == "think"
            )
        rows.append([name, think_us, float(np.mean(thinks))])
    return TableResult(
        ident="Table 5.4",
        title="Types of users simulated in experiments",
        headers=["user type", "think time (paper, µs)",
                 "mean think (measured, µs)"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figures 5.1 / 5.2 — example distribution panels
# ---------------------------------------------------------------------------


def figure_5_1(n_points: int = 101) -> FigureResult:
    """Example phase-type exponential densities (three panels)."""
    xs = np.linspace(0.0, 100.0, n_points)
    panels = {
        "exp(22.1,x)": PhaseTypeExponential([1.0], [22.1]),
        "0.6exp(15.0,x)+0.4exp(25.0,x-20)": PhaseTypeExponential(
            [0.6, 0.4], [15.0, 25.0], [0.0, 20.0]
        ),
        "0.4exp(12.7,x)+0.3exp(18.2,x-18)+0.3exp(24.5,x-41)":
            PhaseTypeExponential(
                [0.4, 0.3, 0.3], [12.7, 18.2, 24.5], [0.0, 18.0, 41.0]
            ),
    }
    return FigureResult(
        ident="Figure 5.1",
        title="Examples of phase-type exponential distributions",
        x_label="x",
        y_label="f(x)",
        xs=xs.tolist(),
        series={name: np.asarray(dist.pdf(xs)).tolist()
                for name, dist in panels.items()},
    )


def figure_5_2(n_points: int = 101) -> FigureResult:
    """Example multi-stage gamma densities (three panels)."""
    xs = np.linspace(0.0, 100.0, n_points)
    panels = {
        "g(2.0,10.5,x)": MultiStageGamma([1.0], [2.0], [10.5]),
        "g(1.5,25.4,x-12)": MultiStageGamma([1.0], [1.5], [25.4], [12.0]),
        "0.7g(1.3,12.3,x)+0.2g(1.5,12.4,x-23)+0.1g(1.3,12.3,x-41)":
            MultiStageGamma(
                [0.7, 0.2, 0.1], [1.3, 1.5, 1.3], [12.3, 12.4, 12.3],
                [0.0, 23.0, 41.0]
            ),
    }
    return FigureResult(
        ident="Figure 5.2",
        title="Examples of multi-stage gamma distributions",
        x_label="x",
        y_label="f(x)",
        xs=xs.tolist(),
        series={name: np.asarray(dist.pdf(xs)).tolist()
                for name, dist in panels.items()},
    )


# ---------------------------------------------------------------------------
# Figures 5.3–5.5 — system-wide usage distributions over 600 sessions
# ---------------------------------------------------------------------------


def _measure_sessions(sessions: int, seed: int,
                      total_files: int) -> UsageAnalyzer:
    spec = paper_workload_spec(n_users=4, total_files=total_files, seed=seed)
    generator = WorkloadGenerator(spec)
    result = generator.run_real(
        MemoryFileSystem(),
        sessions_per_user=max(1, sessions // spec.n_users),
    )
    return result.analyzer


def _histogram_figure(ident: str, title: str, x_label: str, hist,
                      window: int = 3) -> FigureResult:
    return FigureResult(
        ident=ident,
        title=title,
        x_label=x_label,
        y_label="count",
        xs=hist.centers.tolist(),
        series={
            "before smoothing": hist.counts.tolist(),
            "after smoothing": hist.smoothed(window=window).tolist(),
        },
    )


def figure_5_3(sessions: int = 600, seed: int = 0,
               total_files: int = 400) -> FigureResult:
    """Average access-per-byte histogram, before and after smoothing."""
    analyzer = _measure_sessions(sessions, seed, total_files)
    return _histogram_figure(
        "Figure 5.3", "Average access-per-byte", "access-per-byte",
        analyzer.histogram_access_per_byte(),
    )


def figure_5_4(sessions: int = 600, seed: int = 0,
               total_files: int = 400) -> FigureResult:
    """Average file size histogram, before and after smoothing."""
    analyzer = _measure_sessions(sessions, seed, total_files)
    return _histogram_figure(
        "Figure 5.4", "Average file size (bytes)", "file size",
        analyzer.histogram_file_size(),
    )


def figure_5_5(sessions: int = 600, seed: int = 0,
               total_files: int = 400) -> FigureResult:
    """Average number of files referenced, before and after smoothing."""
    analyzer = _measure_sessions(sessions, seed, total_files)
    return _histogram_figure(
        "Figure 5.5", "Average number of files referenced", "number of files",
        analyzer.histogram_files_referenced(),
    )


# ---------------------------------------------------------------------------
# Figures 5.6–5.11 — response time per byte vs number of users
# ---------------------------------------------------------------------------


def response_per_byte_vs_users(
    heavy_fraction: float,
    heavy_think_us: float = 5000.0,
    light_think_us: float = 20000.0,
    max_users: int = 6,
    sessions_total: int = 50,
    total_files: int = 300,
    seed: int = 0,
    timing: NfsTiming | None = None,
    backend: str = "nfs",
) -> tuple[list[int], list[float]]:
    """The shared sweep behind Figures 5.6–5.11.

    Returns ``(users, response_us_per_byte)`` with each point averaged
    over ~``sessions_total`` login sessions, as in the paper.
    """
    users = list(range(1, max_users + 1))
    values: list[float] = []
    for n_users in users:
        spec = paper_workload_spec(
            n_users=n_users,
            total_files=total_files,
            seed=seed,
            heavy_fraction=heavy_fraction,
            heavy_think_us=heavy_think_us,
            light_think_us=light_think_us,
        )
        result = WorkloadGenerator(spec).run_simulated(
            sessions_per_user=max(1, round(sessions_total / n_users)),
            timing=timing,
            backend=backend,
        )
        values.append(result.analyzer.response_per_byte())
    return users, values


def _population_figure(ident: str, title: str, heavy_fraction: float,
                       heavy_think_us: float = 5000.0,
                       **kwargs) -> FigureResult:
    users, values = response_per_byte_vs_users(
        heavy_fraction, heavy_think_us=heavy_think_us, **kwargs
    )
    return FigureResult(
        ident=ident,
        title=title,
        x_label="users",
        y_label="response time per byte (µs)",
        xs=users,
        series={"response µs/byte": values},
    )


def figure_5_6(**kwargs) -> FigureResult:
    """All extremely-heavy users (zero think time): near-linear growth."""
    return _population_figure(
        "Figure 5.6",
        "Avg response time per byte — all extremely heavy I/O users",
        heavy_fraction=1.0, heavy_think_us=0.0, **kwargs,
    )


def figure_5_7(**kwargs) -> FigureResult:
    """100% heavy I/O users (5 000 µs think time)."""
    return _population_figure(
        "Figure 5.7",
        "Avg response time per byte — 100% heavy I/O users",
        heavy_fraction=1.0, **kwargs,
    )


def figure_5_8(**kwargs) -> FigureResult:
    """80% heavy / 20% light users."""
    return _population_figure(
        "Figure 5.8",
        "Avg response time per byte — 80% heavy, 20% light I/O users",
        heavy_fraction=0.8, **kwargs,
    )


def figure_5_9(**kwargs) -> FigureResult:
    """50% heavy / 50% light users."""
    return _population_figure(
        "Figure 5.9",
        "Avg response time per byte — 50% heavy, 50% light I/O users",
        heavy_fraction=0.5, **kwargs,
    )


def figure_5_10(**kwargs) -> FigureResult:
    """20% heavy / 80% light users."""
    return _population_figure(
        "Figure 5.10",
        "Avg response time per byte — 20% heavy, 80% light I/O users",
        heavy_fraction=0.2, **kwargs,
    )


def figure_5_11(**kwargs) -> FigureResult:
    """100% light I/O users (20 000 µs think time)."""
    return _population_figure(
        "Figure 5.11",
        "Avg response time per byte — 100% light I/O users",
        heavy_fraction=0.0, **kwargs,
    )


# ---------------------------------------------------------------------------
# Figure 5.12 — response per byte vs access size
# ---------------------------------------------------------------------------


def figure_5_12(
    access_sizes: tuple[int, ...] = (128, 256, 512, 1024, 1536, 2048),
    sessions_total: int = 50,
    total_files: int = 300,
    seed: int = 0,
    timing: NfsTiming | None = None,
) -> FigureResult:
    """Per-byte access time vs mean access size, one extremely-heavy user.

    The paper's point: larger access sizes amortise fixed per-call costs,
    "which is why most language libraries want to keep a buffer for each
    file".
    """
    values: list[float] = []
    for mean_size in access_sizes:
        spec = paper_workload_spec(
            n_users=1,
            total_files=total_files,
            seed=seed,
            heavy_think_us=0.0,
            access_size_mean=float(mean_size),
        )
        result = WorkloadGenerator(spec).run_simulated(
            sessions_per_user=sessions_total, timing=timing
        )
        values.append(result.analyzer.response_per_byte())
    return FigureResult(
        ident="Figure 5.12",
        title="Avg access time per byte vs access size of file I/O calls",
        x_label="mean access size (bytes)",
        y_label="response time per byte (µs)",
        xs=list(access_sizes),
        series={"response µs/byte": values},
    )
