"""ASCII table and series formatting for experiment reports.

The benchmark harness prints each reproduced table/figure in the same
row/series form the paper reports, so EXPERIMENTS.md can be assembled by
pasting harness output.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width ASCII table with a separator under the header."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(xs: Sequence, ys: Sequence, x_label: str, y_label: str,
                  title: str = "") -> str:
    """Two-column series (the data behind a paper figure)."""
    return format_table([x_label, y_label], list(zip(xs, ys)), title=title)


def format_kv(pairs: dict, title: str = "") -> str:
    """Key/value block for scalar summaries."""
    lines = [title] if title else []
    width = max((len(str(k)) for k in pairs), default=0)
    for key, value in pairs.items():
        lines.append(f"{str(key).ljust(width)} : {_fmt(value)}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
