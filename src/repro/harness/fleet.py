"""Report formatting for fleet runs.

The report separates the two kinds of result a fleet produces (see
:mod:`repro.fleet.merge`):

* the **aggregate workload statistics** block — shard-invariant integer
  tallies; for a fixed root seed this block is byte-identical no matter
  how many shards or worker processes ran it (the fleet tests compare
  these blocks as strings);
* the **timing** block and per-shard table — each shard is its own
  simulated site, so these legitimately change with the topology.
"""

from __future__ import annotations

from ..fleet import FleetResult
from .report import format_kv, format_table

__all__ = ["fleet_aggregate_block", "fleet_offered_load_block",
           "fleet_recovery_block", "fleet_report"]


def fleet_aggregate_block(result: FleetResult) -> str:
    """The shard-invariant block alone (stable across shard counts)."""
    return format_kv(
        result.aggregate_kv(),
        title="Aggregate workload statistics (shard-invariant)",
    )


def fleet_offered_load_block(result: FleetResult) -> str | None:
    """The windowed ops/s curve (None when the run had no time windows).

    Window starts print in hours because the diurnal profiles live on a
    day-long axis; the rate column is plain ops per second of simulated
    time within the window.
    """
    rows = result.tally.offered_load()
    if not rows:
        return None
    return format_table(
        ["window start (h)", "ops", "ops/s"],
        [
            (start_us / 3_600e6, ops, rate)
            for start_us, ops, rate in rows
        ],
        title="Offered load (windowed ops over simulated time)",
    )


def fleet_recovery_block(result: FleetResult) -> str | None:
    """Retry/resume accounting (None when the run was uneventful).

    Shows only when something recovered or was lost: retried attempts,
    timed-out shards, chunks reused by a resume, and — for partial runs
    — which shards were quarantined and why their last attempt failed.
    """
    eventful = (result.retries or result.timeouts or result.quarantined
                or result.resumed or result.reused_chunks)
    if not eventful:
        return None
    kv: dict = {
        "status": "PARTIAL" if result.partial else "complete",
        "retries": result.retries,
        "timeouts": result.timeouts,
        "quarantined shards": (", ".join(str(s) for s in result.quarantined)
                               or "none"),
    }
    if result.resumed or result.reused_chunks:
        kv["resumed"] = result.resumed
        kv["chunks reused"] = result.reused_chunks
        kv["op rows reused"] = result.reused_rows
    block = format_kv(kv, title="Recovery")
    if result.quarantined:
        failures = [f.describe() for f in result.failures
                    if f.shard_index in result.quarantined]
        if failures:
            block += "\n" + "\n".join(f"  ! {line}" for line in failures)
    return block


def fleet_report(result: FleetResult) -> str:
    """The full human-readable fleet run report."""
    config = result.config
    header = format_kv(
        {
            "scenario": config.scenario or "(explicit spec)",
            "users": config.n_users,
            "shards": config.shards,
            "workers": config.effective_workers(),
            "seed": config.root_seed,
            "backend": config.backend,
        },
        title="Fleet run",
    )
    shard_table = format_table(
        ["shard", "users", "ops", "sessions", "simulated µs", "wall s"],
        [
            (
                outcome.shard_index,
                len(outcome.user_ids),
                outcome.tally.operations,
                outcome.tally.sessions,
                outcome.simulated_us,
                outcome.wall_s,
            )
            for outcome in result.outcomes
        ],
        title="Per-shard (each shard is an independent simulated site)",
    )
    timing = format_kv(
        result.timing_kv(), title="Timing (topology-dependent)"
    )
    blocks = [header, fleet_aggregate_block(result)]
    offered = fleet_offered_load_block(result)
    if offered is not None:
        blocks.append(offered)
    blocks += [shard_table, timing]
    recovery = fleet_recovery_block(result)
    if recovery is not None:
        blocks.append(recovery)
    return "\n\n".join(blocks)
