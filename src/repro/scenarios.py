"""A library of named, ready-to-run workload scenarios.

The thesis drives every experiment from one measured campus
characterization (Tables 5.1/5.2).  This module generalises that into a
*catalog*: each :class:`Scenario` names a complete workload mix — file
categories for the FSC, user types for the USIM, an access pattern, a
phase model — and builds a valid :class:`~repro.core.spec.WorkloadSpec`
for any population size and seed.  The fleet layer (:mod:`repro.fleet`)
and the CLI (``repro-workload fleet run --scenario NAME``) resolve
scenarios by name, which keeps multi-process workers trivially picklable:
a worker ships the *name* and rebuilds the spec locally.

Built-in scenarios
------------------

``paper-campus``      the thesis's 100%-heavy-I/O campus population
``mixed-campus``      70% heavy / 30% light campus mix (section 5.2 style)
``dev-team``          developers + reviewers + a build bot (temp/new heavy)
``batch-heavy``       zero-think batch jobs streaming large new files
``database-random``   OLTP-style uniform-random access inside large files
``interactive-light`` light bursty interactive users (phase-modulated)

Registering your own::

    from repro.scenarios import Scenario, register_scenario

    register_scenario(Scenario(
        name="my-mix",
        description="...",
        build=lambda users, seed, total_files=None: my_spec(...),
    ))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from .core.arrivals import ArrivalModel, get_profile
from .core.datasets import paper_workload_spec
from .core.spec import (
    FileCategory,
    FileCategorySpec,
    FileType,
    Owner,
    UsageSpec,
    UserTypeSpec,
    UseType,
    WorkloadSpec,
)
from .distributions import Constant, ShiftedExponential

__all__ = [
    "Scenario",
    "ScenarioError",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "build_scenario_spec",
    "scenario_from_spec",
    "register_spec_file",
]


class ScenarioError(KeyError):
    """Raised when a scenario name is not in the registry."""


class _SpecBuilder(Protocol):
    def __call__(self, users: int, seed: int,
                 total_files: int | None = None) -> WorkloadSpec: ...


@dataclass(frozen=True)
class Scenario:
    """One named workload mix.

    ``build(users, seed, total_files=None)`` must return a valid
    :class:`~repro.core.spec.WorkloadSpec` with ``n_users == users`` and
    ``seed == seed``; when ``total_files`` is None the builder picks a
    size that scales with the population.  ``access_pattern`` and
    ``use_phase_model`` select the section 6.2 extensions the runs use.
    ``arrival_model`` is the scenario's temporal load model — the
    diurnal/arrival shape a ``fleet run --arrivals`` applies (opt-in;
    it moves session timing only, never the op stream).
    """

    name: str
    description: str
    build: _SpecBuilder
    access_pattern: str = "sequential"
    use_phase_model: bool = False
    default_sessions: int = 1
    tags: tuple[str, ...] = field(default=())
    arrival_model: "ArrivalModel | None" = None

    def __post_init__(self):
        if self.access_pattern not in ("sequential", "random"):
            raise ValueError(
                "access_pattern must be sequential|random, got "
                f"{self.access_pattern!r}"
            )


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (``replace=True`` to overwrite)."""
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ScenarioError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def build_scenario_spec(name: str, users: int, seed: int,
                        total_files: int | None = None) -> WorkloadSpec:
    """Build ``name``'s spec for a population of ``users``."""
    return get_scenario(name).build(users, seed, total_files=total_files)


def scenario_from_spec(name: str, spec: WorkloadSpec, description: str = "",
                       **kwargs) -> Scenario:
    """Wrap a concrete spec (e.g. a trace calibration) as a scenario.

    The scenario's builder rescales the captured spec to any requested
    population and seed — the distributions stay the calibrated ones,
    only ``n_users``/``seed``/``total_files`` are replaced — so a
    calibrated trace behaves exactly like a hand-written library entry.
    """
    from dataclasses import replace

    def build(users: int, seed: int,
              total_files: int | None = None) -> WorkloadSpec:
        return replace(spec, n_users=users, seed=seed,
                       total_files=total_files or spec.total_files)

    return Scenario(name=name, description=description, build=build, **kwargs)


def register_spec_file(path: str, name: str | None = None,
                       replace: bool = False) -> Scenario:
    """Load a spec JSON artefact (``trace calibrate`` output) and register it.

    ``name`` defaults to the file's base name without extensions.  A
    document carrying an ``"arrivals"`` block (``dump_spec(...,
    arrivals=model)``) keeps its temporal shape: the decoded
    :class:`~repro.core.arrivals.ArrivalModel` becomes the scenario's
    ``arrival_model``, so ``fleet run --scenario <name> --arrivals``
    replays the saved timing rather than the default.  Returns the
    registered :class:`Scenario`.
    """
    import os

    from .core.specjson import (
        parse_spec_document,
        spec_arrivals,
        spec_from_jsonable,
        spec_meta,
    )

    with open(path, "r", encoding="utf-8") as stream:
        payload = parse_spec_document(stream.read())
    spec = spec_from_jsonable(payload)
    meta = spec_meta(payload)
    arrivals = spec_arrivals(payload)
    if name is None:
        name = os.path.basename(path).split(".")[0]
    source = meta.get("calibrated_from") or os.path.basename(path)
    scenario = scenario_from_spec(
        name, spec,
        description=f"Calibrated from {source}",
        tags=("calibrated",),
        arrival_model=arrivals,
    )
    return register_scenario(scenario, replace=replace)


# ---------------------------------------------------------------------------
# Building blocks for the custom mixes
# ---------------------------------------------------------------------------


def _cat(file_type: str, owner: str, use: str) -> FileCategory:
    return FileCategory(FileType(file_type), Owner(owner), UseType(use))


def _fsc(category: FileCategory, mean_size: float,
         fraction: float) -> FileCategorySpec:
    return FileCategorySpec(
        category=category,
        size_distribution=ShiftedExponential(mean_size),
        fraction_of_files=fraction,
    )


def _usage(category: FileCategory, apb: float, files: float,
           mean_size: float, fraction: float) -> UsageSpec:
    return UsageSpec(
        category=category,
        access_per_byte=ShiftedExponential(apb),
        file_count=ShiftedExponential(files),
        file_size=ShiftedExponential(mean_size),
        fraction_of_users=fraction,
    )


def _scaled_files(users: int, per_user: int, floor: int = 200) -> int:
    """Default FSC size: a per-user file budget with a small-run floor."""
    return max(floor, per_user * users)


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------


def _paper_campus(users: int, seed: int,
                  total_files: int | None = None) -> WorkloadSpec:
    return paper_workload_spec(
        n_users=users,
        total_files=total_files or _scaled_files(users, 8, floor=400),
        seed=seed,
        heavy_fraction=1.0,
    )


def _mixed_campus(users: int, seed: int,
                  total_files: int | None = None) -> WorkloadSpec:
    return paper_workload_spec(
        n_users=users,
        total_files=total_files or _scaled_files(users, 8, floor=400),
        seed=seed,
        heavy_fraction=0.7,
    )


_DIR_USER = _cat("DIR", "USER", "RDONLY")
_DIR_OTHER = _cat("DIR", "OTHER", "RDONLY")
_REG_RDONLY = _cat("REG", "USER", "RDONLY")
_REG_NEW = _cat("REG", "USER", "NEW")
_REG_RDWRT = _cat("REG", "USER", "RD-WRT")
_REG_TEMP = _cat("REG", "USER", "TEMP")
_REG_SYS = _cat("REG", "OTHER", "RDONLY")


def _dev_team(users: int, seed: int,
              total_files: int | None = None) -> WorkloadSpec:
    """Developers editing/compiling, reviewers reading, one build bot."""
    categories = (
        _fsc(_DIR_USER, 720.0, 0.08),
        _fsc(_REG_RDONLY, 6_000.0, 0.30),   # sources
        _fsc(_REG_RDWRT, 14_000.0, 0.22),   # working files
        _fsc(_REG_NEW, 20_000.0, 0.10),     # build outputs
        _fsc(_REG_TEMP, 30_000.0, 0.15),    # compiler temporaries
        _fsc(_REG_SYS, 24_000.0, 0.15),     # toolchain
    )
    developer = UserTypeSpec(
        name="developer",
        fraction=0.7,
        usage=(
            _usage(_DIR_USER, 3.0, 3.0, 720.0, 0.8),
            _usage(_REG_RDONLY, 1.5, 6.0, 6_000.0, 1.0),
            _usage(_REG_RDWRT, 3.0, 3.0, 14_000.0, 0.9),
            _usage(_REG_NEW, 2.0, 2.5, 20_000.0, 0.8),
            _usage(_REG_TEMP, 2.0, 5.0, 30_000.0, 0.9),
            _usage(_REG_SYS, 1.2, 2.0, 24_000.0, 0.6),
        ),
        think_time=ShiftedExponential(2_000.0),
        access_size=ShiftedExponential(2_048.0),
    )
    reviewer = UserTypeSpec(
        name="reviewer",
        fraction=0.2,
        usage=(
            _usage(_DIR_USER, 3.5, 4.0, 720.0, 0.9),
            _usage(_REG_RDONLY, 2.5, 10.0, 6_000.0, 1.0),
            _usage(_REG_RDWRT, 1.0, 1.5, 14_000.0, 0.4),
        ),
        think_time=ShiftedExponential(12_000.0),
        access_size=ShiftedExponential(1_024.0),
    )
    build_bot = UserTypeSpec(
        name="build-bot",
        fraction=0.1,
        usage=(
            _usage(_REG_RDONLY, 1.0, 14.0, 6_000.0, 1.0),
            _usage(_REG_NEW, 1.5, 6.0, 40_000.0, 1.0),
            _usage(_REG_TEMP, 2.0, 10.0, 30_000.0, 1.0),
        ),
        think_time=Constant(0.0),
        access_size=ShiftedExponential(8_192.0),
    )
    return WorkloadSpec(
        file_categories=categories,
        user_types=(developer, reviewer, build_bot),
        total_files=total_files or _scaled_files(users, 10),
        n_users=users,
        seed=seed,
    )


def _batch_heavy(users: int, seed: int,
                 total_files: int | None = None) -> WorkloadSpec:
    """Zero-think batch jobs streaming large inputs into large outputs."""
    categories = (
        _fsc(_REG_RDONLY, 96_000.0, 0.45),  # job inputs
        _fsc(_REG_NEW, 64_000.0, 0.25),
        _fsc(_REG_TEMP, 48_000.0, 0.20),
        _fsc(_REG_SYS, 16_000.0, 0.10),
    )
    batch = UserTypeSpec(
        name="batch",
        fraction=1.0,
        usage=(
            _usage(_REG_RDONLY, 1.0, 3.0, 96_000.0, 1.0),
            _usage(_REG_NEW, 1.2, 2.0, 64_000.0, 1.0),
            _usage(_REG_TEMP, 1.5, 3.0, 48_000.0, 0.9),
            _usage(_REG_SYS, 1.0, 1.5, 16_000.0, 0.5),
        ),
        think_time=Constant(0.0),
        access_size=ShiftedExponential(16_384.0),
    )
    return WorkloadSpec(
        file_categories=categories,
        user_types=(batch,),
        total_files=total_files or _scaled_files(users, 6),
        n_users=users,
        seed=seed,
    )


def _database_random(users: int, seed: int,
                     total_files: int | None = None) -> WorkloadSpec:
    """OLTP-style clients hammering a few large files at random offsets.

    This is exactly the database-type workload the thesis's section 6.2
    lists as future work: the scenario runs with ``access_pattern
    ="random"``, so every chunk is preceded by a seek to a uniform offset.
    """
    categories = (
        _fsc(_REG_RDWRT, 64_000.0, 0.55),   # table files
        _fsc(_REG_RDONLY, 32_000.0, 0.25),  # indexes, read-mostly
        _fsc(_REG_SYS, 8_000.0, 0.20),      # catalogs
    )
    oltp = UserTypeSpec(
        name="oltp-client",
        fraction=1.0,
        usage=(
            _usage(_REG_RDWRT, 1.5, 2.5, 64_000.0, 1.0),
            _usage(_REG_RDONLY, 1.0, 2.0, 32_000.0, 0.8),
            _usage(_REG_SYS, 0.8, 1.2, 8_000.0, 0.5),
        ),
        think_time=ShiftedExponential(1_000.0),
        access_size=ShiftedExponential(4_096.0),
    )
    return WorkloadSpec(
        file_categories=categories,
        user_types=(oltp,),
        total_files=total_files or _scaled_files(users, 5),
        n_users=users,
        seed=seed,
    )


def _interactive_light(users: int, seed: int,
                       total_files: int | None = None) -> WorkloadSpec:
    """Light interactive users with bursty (phase-modulated) think time."""
    return paper_workload_spec(
        n_users=users,
        total_files=total_files or _scaled_files(users, 6),
        seed=seed,
        heavy_fraction=0.0,
    )


register_scenario(Scenario(
    name="paper-campus",
    description="Thesis section 5.2 campus population, 100% heavy I/O "
                "(Tables 5.1/5.2).",
    build=_paper_campus,
    tags=("paper",),
))
register_scenario(Scenario(
    name="mixed-campus",
    description="Campus population, 70% heavy / 30% light I/O users.",
    build=_mixed_campus,
    tags=("paper", "mixed"),
    # Campus users keep office hours: the 9-to-5 double hump.
    arrival_model=ArrivalModel(profile=get_profile("office-hours")),
))
register_scenario(Scenario(
    name="dev-team",
    description="Software team: developers (temp/new heavy), reviewers "
                "(read heavy), a zero-think build bot.",
    build=_dev_team,
    tags=("custom",),
    arrival_model=ArrivalModel(profile=get_profile("office-hours")),
))
register_scenario(Scenario(
    name="batch-heavy",
    description="Zero-think batch jobs streaming large files; saturates "
                "the server.",
    build=_batch_heavy,
    tags=("custom", "throughput"),
    # Batch jobs land in the overnight window.
    arrival_model=ArrivalModel(profile=get_profile("nightly")),
))
register_scenario(Scenario(
    name="database-random",
    description="OLTP clients, uniform-random offsets in large RD-WRT "
                "files (section 6.2 extension).",
    build=_database_random,
    access_pattern="random",
    tags=("custom", "random-access"),
))
register_scenario(Scenario(
    name="interactive-light",
    description="Light interactive users with bursty CPU/I-O phases "
                "(PhaseModel think-time modulation).",
    build=_interactive_light,
    use_phase_model=True,
    tags=("custom", "phases"),
    arrival_model=ArrivalModel(profile=get_profile("evening")),
))
