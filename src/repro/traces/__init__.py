"""Trace ingestion, spec calibration, and closed-loop validation.

This subsystem turns the reproduction into a tool you can point at any
real-world trace:

* **Ingestion** (:mod:`~repro.traces.adapters`): pluggable adapters
  parse external formats (generic CSV/JSONL, strace syscall logs,
  nfsdump-style packet logs, the native usage-log format) into a
  canonical event stream, line by line with explicit error reporting.
* **Sessionization** (:mod:`~repro.traces.sessionize`): events become
  the repo's ``OpRecord``/``SessionRecord`` stream — explicit session
  records when the source has them, idle-gap reconstruction when not,
  plus heuristic file-category inference.
* **Calibration** (:mod:`~repro.traces.calibrate`): the existing
  characterisation machinery fits a :class:`~repro.core.spec.WorkloadSpec`
  to the ingested trace; specs serialise to JSON artefacts
  (:mod:`repro.core.specjson`) and register as scenarios.
* **Validation** (:mod:`~repro.traces.validate`): the closed loop —
  regenerate from the calibrated spec, re-measure, and report KS
  distance plus mean relative error per usage measure.

CLI: ``repro trace import | calibrate | validate | formats``.
"""

from .adapters import (
    CsvTraceAdapter,
    JsonlTraceAdapter,
    NfsDumpAdapter,
    StraceAdapter,
    TraceAdapter,
    UsageLogAdapter,
    adapter_names,
    detect_format,
    export_csv,
    get_adapter,
)
from .calibrate import (
    CalibrationResult,
    calibrate_log,
    calibrate_trace_file,
    ingest_trace_file,
    ingest_trace_lines,
)
from .events import (
    CANONICAL_OPS,
    IngestStats,
    IssueCollector,
    ParseIssue,
    TraceError,
    TraceEvent,
    TraceParseError,
)
from .measures import MEASURES, measure_samples, think_time_samples
from .sessionize import (
    DEFAULT_GAP_US,
    CategoryInferencer,
    PathSizeIndex,
    SessionizeResult,
    sessionize_events,
)
from .validate import (
    DEFAULT_KS_THRESHOLD,
    FidelityReport,
    MeasureFidelity,
    regenerate,
    validate_spec,
)

__all__ = [
    "CANONICAL_OPS",
    "DEFAULT_GAP_US",
    "DEFAULT_KS_THRESHOLD",
    "MEASURES",
    "CalibrationResult",
    "CategoryInferencer",
    "CsvTraceAdapter",
    "FidelityReport",
    "IngestStats",
    "IssueCollector",
    "JsonlTraceAdapter",
    "MeasureFidelity",
    "NfsDumpAdapter",
    "ParseIssue",
    "PathSizeIndex",
    "SessionizeResult",
    "StraceAdapter",
    "TraceAdapter",
    "TraceError",
    "TraceEvent",
    "TraceParseError",
    "UsageLogAdapter",
    "adapter_names",
    "calibrate_log",
    "calibrate_trace_file",
    "detect_format",
    "export_csv",
    "get_adapter",
    "ingest_trace_file",
    "ingest_trace_lines",
    "measure_samples",
    "regenerate",
    "sessionize_events",
    "think_time_samples",
    "validate_spec",
]
