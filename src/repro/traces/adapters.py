"""Trace adapters: external formats → canonical :class:`TraceEvent` streams.

Each adapter parses one source format, line by line (constant memory —
an adapter never buffers the trace), reporting malformed lines through
an :class:`~repro.traces.events.IssueCollector`.  Formats:

``csv``
    Generic header-driven CSV.  Recognised columns (synonyms in
    parentheses): ``timestamp_us`` (``time_us``, ``ts_us``) or
    ``timestamp`` (``time``, ``ts``; seconds), ``op`` (``operation``,
    ``syscall``), ``path`` (``file``, ``filename``), and optionally
    ``user`` (``uid``, ``client``, ``pid``), ``size`` (``bytes``,
    ``count``), ``duration_us`` (``latency_us``, ``response_us``),
    ``session`` (``session_id``), ``file_size`` (``fsize``), and
    ``category`` (``category_key``).
``jsonl``
    One JSON object per line, same field names as ``csv``.
``strace``
    ``strace -f -ttt -T -y`` style syscall logs: absolute timestamps,
    call durations in ``<...>``, and fd paths in ``fd</path>`` form.
    Path-less fd calls (plain ``read(3, ...)``) are reported as issues,
    since without ``-y`` the file identity is unrecoverable.
``nfsdump``
    nfsdump-style NFS packet logs:
    ``<epoch.frac> <client> <server> <proto> <C|R><vers> <xid> <op> [key value]...``.
    Calls carry ``fh <hex>`` (used as the path identity) and ``count``;
    ``size`` attributes on replies are remembered per file handle and
    attached to subsequent events as file-size hints.
``usagelog``
    The repo's native :class:`~repro.core.oplog.UsageLog` text format,
    so an imported/archived log can feed calibration and validation.

:func:`detect_format` sniffs a sample of lines; :func:`get_adapter`
resolves by name.
"""

from __future__ import annotations

import csv
import json
import re
from typing import Callable, Iterable, Iterator, Sequence

from ..core.oplog import OpRecord, SessionRecord, UsageLog
from .events import CANONICAL_OPS, IssueCollector, TraceEvent

__all__ = [
    "TraceAdapter",
    "CsvTraceAdapter",
    "JsonlTraceAdapter",
    "StraceAdapter",
    "NfsDumpAdapter",
    "UsageLogAdapter",
    "adapter_names",
    "get_adapter",
    "detect_format",
    "export_csv",
]

# Synonyms for the generic tabular formats (csv / jsonl).
_FIELD_SYNONYMS: dict[str, tuple[str, ...]] = {
    "timestamp_us": ("timestamp_us", "time_us", "ts_us"),
    "timestamp_s": ("timestamp", "time", "ts", "epoch"),
    "op": ("op", "operation", "syscall", "call"),
    "path": ("path", "file", "filename", "name", "fh"),
    "user": ("user", "uid", "client", "pid", "host", "user_id"),
    "size": ("size", "bytes", "count", "nbytes", "len"),
    "duration_us": ("duration_us", "latency_us", "elapsed_us", "response_us"),
    "session": ("session", "session_id", "login"),
    "file_size": ("file_size", "filesize", "fsize"),
    "category": ("category", "category_key"),
}

# Source-op aliases → the canonical USIM vocabulary.
_OP_ALIASES: dict[str, str] = {
    "openat": "open",
    "open64": "open",
    "create": "creat",
    "pread": "read",
    "pread64": "read",
    "pwrite": "write",
    "pwrite64": "write",
    "readdir": "listdir",
    "readdirplus": "listdir",
    "getdents": "listdir",
    "getdents64": "listdir",
    "lookup": "open",
    "getattr": "stat",
    "setattr": "stat",
    "access": "stat",
    "lstat": "stat",
    "fstat": "stat",
    "statx": "stat",
    "newfstatat": "stat",
    "remove": "unlink",
    "unlinkat": "unlink",
    "mkdirat": "mkdir",
    "llseek": "lseek",
    "_llseek": "lseek",
    "lseek64": "lseek",
}


def normalize_op(op: str) -> str | None:
    """Map a source operation name onto the canonical vocabulary."""
    name = op.strip().lower()
    name = _OP_ALIASES.get(name, name)
    return name if name in CANONICAL_OPS else None


class TraceAdapter:
    """Base class: the line loop, issue reporting, and the adapter registry.

    Subclasses set ``name``/``description``, implement
    ``parse_line(line) -> TraceEvent | None`` (``None`` means "skip
    silently", e.g. comments or out-of-scope records; raise
    ``ValueError`` for malformed lines), and ``sniff(lines) -> bool``.
    """

    name: str = ""
    description: str = ""

    @classmethod
    def sniff(cls, lines: Sequence[str]) -> bool:
        """True when ``lines`` look like this adapter's format."""
        raise NotImplementedError

    def parse_line(self, line: str) -> TraceEvent | None:
        raise NotImplementedError

    def iter_events(
        self, lines: Iterable[str], issues: IssueCollector | None = None
    ) -> Iterator[TraceEvent]:
        """Stream events out of ``lines``; malformed lines become issues."""
        issues = issues if issues is not None else IssueCollector()
        for line_no, line in enumerate(lines, 1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                event = self.parse_line(line)
            except ValueError as exc:
                issues.add(line_no, str(exc), line)
                continue
            if event is not None:
                yield event


class CsvTraceAdapter(TraceAdapter):
    """Generic CSV schema with a mandatory header row."""

    name = "csv"
    description = "header-driven CSV (timestamp/op/path + optional columns)"

    def __init__(self) -> None:
        self._columns: dict[str, int] | None = None

    @staticmethod
    def _resolve_header(cells: Sequence[str]) -> dict[str, int]:
        names = [c.strip().lower() for c in cells]
        columns: dict[str, int] = {}
        for field, synonyms in _FIELD_SYNONYMS.items():
            for synonym in synonyms:
                if synonym in names:
                    columns[field] = names.index(synonym)
                    break
        if "timestamp_us" not in columns and "timestamp_s" not in columns:
            raise ValueError(f"CSV header lacks a timestamp column: {names}")
        for required in ("op", "path"):
            if required not in columns:
                raise ValueError(f"CSV header lacks a {required!r} column: {names}")
        return columns

    @classmethod
    def sniff(cls, lines: Sequence[str]) -> bool:
        for line in lines:
            if not line.strip():
                continue
            try:
                cls._resolve_header(next(csv.reader([line])))
            except (ValueError, StopIteration):
                return False
            return True
        return False

    def parse_line(self, line: str) -> TraceEvent | None:
        cells = next(csv.reader([line]))
        if self._columns is None:
            self._columns = self._resolve_header(cells)
            return None
        return _event_from_mapping(_row_to_mapping(cells, self._columns))


class JsonlTraceAdapter(TraceAdapter):
    """One JSON object per line, same field names as the CSV schema."""

    name = "jsonl"
    description = "JSON-lines objects (timestamp/op/path + optional keys)"

    @classmethod
    def sniff(cls, lines: Sequence[str]) -> bool:
        for line in lines:
            if not line.strip():
                continue
            if not line.lstrip().startswith("{"):
                return False
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                return False
            try:
                _event_from_mapping(_normalize_keys(obj))
            except ValueError:
                return False
            return True
        return False

    def parse_line(self, line: str) -> TraceEvent | None:
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise ValueError("JSONL record is not an object")
        return _event_from_mapping(_normalize_keys(obj))


def _normalize_keys(obj: dict) -> dict[str, object]:
    """Resolve synonym keys of a JSON object onto canonical field names."""
    lowered = {str(k).strip().lower(): v for k, v in obj.items()}
    out: dict[str, object] = {}
    for field, synonyms in _FIELD_SYNONYMS.items():
        for synonym in synonyms:
            if synonym in lowered:
                out[field] = lowered[synonym]
                break
    return out


def _row_to_mapping(cells: Sequence[str], columns: dict[str, int]) -> dict[str, object]:
    out: dict[str, object] = {}
    for field, index in columns.items():
        if index < len(cells):
            value = cells[index].strip()
            if value != "":
                out[field] = value
    return out


def _event_from_mapping(fields: dict[str, object]) -> TraceEvent:
    """Build a TraceEvent from canonical field names (shared csv/jsonl path)."""
    if "timestamp_us" in fields:
        timestamp_us = float(fields["timestamp_us"])  # type: ignore[arg-type]
    elif "timestamp_s" in fields:
        timestamp_us = float(fields["timestamp_s"]) * 1e6  # type: ignore[arg-type]
    else:
        raise ValueError("record lacks a timestamp")
    for required in ("op", "path"):
        if required not in fields:
            raise ValueError(f"record lacks {required!r}")
    op = normalize_op(str(fields["op"]))
    if op is None:
        raise ValueError(f"unknown operation {fields['op']!r}")
    path = str(fields["path"])
    if not path:
        raise ValueError("record has an empty path")
    size = int(float(fields.get("size", 0) or 0))
    duration = float(fields.get("duration_us", 0.0) or 0.0)
    session = fields.get("session")
    file_size = fields.get("file_size")
    category = fields.get("category")
    return TraceEvent(
        timestamp_us=timestamp_us,
        user=str(fields.get("user", "0")),
        op=op,
        path=path,
        size=max(size, 0),
        duration_us=max(duration, 0.0),
        session=None if session is None else str(session),
        file_size=None if file_size in (None, "") else int(float(file_size)),  # type: ignore[arg-type]
        category=None if category in (None, "") else str(category),
    )


# strace: "[pid] [epoch.frac] name(args) = ret [<dur>]"
_STRACE_HEAD = re.compile(
    r"^(?:\[pid\s+(?P<bpid>\d+)\]\s+|(?P<pid>\d+)\s+)?"
    r"(?:(?P<ts>\d{6,}\.\d+)\s+)?"
    r"(?P<call>[a-z_][a-z0-9_]*)\("
)
_STRACE_TAIL = re.compile(
    r"\)\s*=\s*(?P<ret>-?\d+|\?)(?:\s+[A-Z][A-Z0-9_]*(?:\s+\([^)]*\))?)?"
    r"(?:\s+<(?P<dur>\d+\.\d+)>)?\s*$"
)
_STRACE_QUOTED = re.compile(r'"((?:[^"\\]|\\.)*)"')
_STRACE_FD_PATH = re.compile(r"\d+<([^<>]*)>")

# Syscalls whose first quoted argument is the path.
_STRACE_PATH_CALLS = frozenset(
    {
        "open",
        "openat",
        "open64",
        "creat",
        "stat",
        "lstat",
        "statx",
        "newfstatat",
        "access",
        "unlink",
        "unlinkat",
        "mkdir",
        "mkdirat",
        "rmdir",
    }
)
# fd-based syscalls resolved through strace -y's fd</path> annotations.
_STRACE_FD_CALLS = frozenset(
    {
        "read",
        "pread",
        "pread64",
        "write",
        "pwrite",
        "pwrite64",
        "close",
        "fstat",
        "lseek",
        "llseek",
        "_llseek",
        "lseek64",
        "getdents",
        "getdents64",
    }
)


class StraceAdapter(TraceAdapter):
    """``strace -f -ttt -T -y`` style syscall logs."""

    name = "strace"
    description = "strace syscall log (-ttt timestamps, -T durations, -y fd paths)"

    def __init__(self) -> None:
        self._synthetic_clock_us = 0.0

    @classmethod
    def sniff(cls, lines: Sequence[str]) -> bool:
        for line in lines:
            if not line.strip():
                continue
            head = _STRACE_HEAD.match(line.strip())
            return bool(head and _STRACE_TAIL.search(line))
        return False

    def parse_line(self, line: str) -> TraceEvent | None:
        text = line.strip()
        # Signal deliveries, exits, and split syscalls are strace noise,
        # not file operations; skip them without reporting issues.
        if text.startswith(("---", "+++")) or "<unfinished" in text or "resumed>" in text:
            return None
        head = _STRACE_HEAD.match(text)
        if head is None:
            raise ValueError("not an strace syscall line")
        tail = _STRACE_TAIL.search(text)
        if tail is None:
            raise ValueError("strace line lacks a '= ret' tail")
        call = head.group("call")
        if call not in _STRACE_PATH_CALLS and call not in _STRACE_FD_CALLS:
            return None  # not a file-system call we model
        ret = tail.group("ret")
        if ret == "?" or int(ret) < 0:
            return None  # interrupted or failed call
        args = text[head.end() : tail.start()]

        if call in _STRACE_PATH_CALLS:
            quoted = _STRACE_QUOTED.search(args)
            if quoted is None:
                raise ValueError(f"{call}() line has no quoted path")
            path = quoted.group(1)
        else:
            fd_path = _STRACE_FD_PATH.search(args)
            if fd_path is None:
                raise ValueError(
                    f"{call}() line has no fd</path> annotation (need strace -y)"
                )
            path = fd_path.group(1)

        op = normalize_op(call)
        if op == "open" and "O_CREAT" in args:
            op = "creat"
        if op is None:
            return None

        if head.group("ts") is not None:
            timestamp_us = float(head.group("ts")) * 1e6
        else:
            # No -ttt timestamps: keep events ordered on a synthetic clock.
            self._synthetic_clock_us += 1.0
            timestamp_us = self._synthetic_clock_us
        size = int(ret) if op in ("read", "write", "listdir") else 0
        duration = float(tail.group("dur") or 0.0) * 1e6
        pid = head.group("pid") or head.group("bpid") or "0"
        return TraceEvent(
            timestamp_us=timestamp_us,
            user=pid,
            op=op,
            path=path,
            size=size,
            duration_us=duration,
        )


_NFS_DIRECTION = re.compile(r"^(?P<dir>[CR])(?P<vers>\d*)$")
_NFS_OPS = frozenset(
    {
        "read",
        "write",
        "create",
        "remove",
        "mkdir",
        "rmdir",
        "readdir",
        "readdirplus",
        "getattr",
        "setattr",
        "lookup",
        "access",
    }
)


class NfsDumpAdapter(TraceAdapter):
    """nfsdump-style packet logs (see module docstring for the shape)."""

    name = "nfsdump"
    description = "nfsdump-style NFS packet log (calls + attribute replies)"

    _MAX_PENDING = 4096

    def __init__(self) -> None:
        self._fh_sizes: dict[str, int] = {}
        self._pending_fh: dict[str, str] = {}  # xid -> fh of the call

    @classmethod
    def sniff(cls, lines: Sequence[str]) -> bool:
        for line in lines:
            tokens = line.split()
            if not tokens:
                continue
            try:
                float(tokens[0])
            except ValueError:
                return False
            return len(tokens) >= 7 and any(
                _NFS_DIRECTION.match(t) for t in tokens[1:6]
            )
        return False

    @staticmethod
    def _keyvalues(tokens: Sequence[str]) -> dict[str, str]:
        out: dict[str, str] = {}
        for i in range(0, len(tokens) - 1):
            key = tokens[i]
            if key in ("fh", "count", "off", "size", "fn") and key not in out:
                out[key] = tokens[i + 1]
        return out

    def parse_line(self, line: str) -> TraceEvent | None:
        tokens = line.split()
        if len(tokens) < 7:
            raise ValueError("too few fields for an nfsdump record")
        try:
            timestamp_us = float(tokens[0]) * 1e6
        except ValueError as exc:
            raise ValueError(f"bad timestamp {tokens[0]!r}") from exc

        direction = xid = None
        direction_at = None
        for i, token in enumerate(tokens[1:6], 1):
            match = _NFS_DIRECTION.match(token)
            if match:
                direction = match.group("dir")
                direction_at = i
                break
        if direction is None or direction_at is None:
            raise ValueError("no C/R direction marker")
        rest = tokens[direction_at + 1 :]
        if not rest:
            raise ValueError("record ends after the direction marker")
        xid = rest[0]
        op_token = None
        for token in rest[1:4]:
            if token.lower() in _NFS_OPS:
                op_token = token.lower()
                break
        if op_token is None:
            raise ValueError("no recognised NFS operation")
        kv = self._keyvalues(rest)

        if direction == "R":
            # Attribute replies tell us the file's size; remember it per
            # file handle so later events carry a file-size hint.
            fh = self._pending_fh.pop(xid, kv.get("fh"))
            if fh is not None and "size" in kv:
                try:
                    self._fh_sizes[fh] = int(kv["size"])
                except ValueError:
                    pass
            return None

        fh = kv.get("fh")
        if fh is None:
            raise ValueError(f"{op_token} call without an fh field")
        if len(self._pending_fh) >= self._MAX_PENDING:
            self._pending_fh.clear()
        self._pending_fh[xid] = fh
        op = normalize_op(op_token)
        if op is None:
            return None
        try:
            size = int(kv.get("count", "0"))
        except ValueError as exc:
            raise ValueError(f"bad count {kv.get('count')!r}") from exc
        client = tokens[1]
        host = client.rsplit(".", 1)[0] if "." in client else client
        path = f"nfs:{fh}"
        if kv.get("fn"):
            path = f"nfs:{fh}/{kv['fn']}"
        return TraceEvent(
            timestamp_us=timestamp_us,
            user=host,
            op=op,
            path=path,
            size=size,
            file_size=self._fh_sizes.get(fh),
        )


class UsageLogAdapter(TraceAdapter):
    """The repo's native usage-log text format as a trace source."""

    name = "usagelog"
    description = "native UsageLog text format (OP/SESSION lines)"

    @classmethod
    def sniff(cls, lines: Sequence[str]) -> bool:
        for line in lines:
            if not line.strip():
                continue
            return line.startswith(("OP\t", "SESSION\t"))
        return False

    def parse_line(self, line: str) -> TraceEvent | None:
        text = line.rstrip("\n")
        if text.startswith("SESSION\t"):
            SessionRecord.from_line(text)  # validate, but ops carry the ids
            return None
        if not text.startswith("OP\t"):
            raise ValueError("not an OP/SESSION line")
        record = OpRecord.from_line(text)
        return TraceEvent(
            timestamp_us=record.start_us,
            user=str(record.user_id),
            op=record.op,
            path=record.path,
            size=record.size,
            duration_us=record.response_us,
            session=str(record.session_id),
            category=record.category_key or None,
        )


_ADAPTERS: dict[str, Callable[[], TraceAdapter]] = {
    CsvTraceAdapter.name: CsvTraceAdapter,
    JsonlTraceAdapter.name: JsonlTraceAdapter,
    StraceAdapter.name: StraceAdapter,
    NfsDumpAdapter.name: NfsDumpAdapter,
    UsageLogAdapter.name: UsageLogAdapter,
}

# Sniffing order: most specific first (csv accepts the broadest inputs).
_SNIFF_ORDER = ("usagelog", "strace", "nfsdump", "jsonl", "csv")


def adapter_names() -> tuple[str, ...]:
    """Registered adapter names, sorted."""
    return tuple(sorted(_ADAPTERS))


def get_adapter(name: str) -> TraceAdapter:
    """A fresh adapter instance for ``name`` (adapters keep parse state)."""
    try:
        factory = _ADAPTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown trace format {name!r}; known: {', '.join(adapter_names())}"
        ) from None
    return factory()


def detect_format(sample_lines: Sequence[str]) -> str:
    """Sniff which adapter understands ``sample_lines``.

    Raises ``ValueError`` when no adapter recognises the sample.
    """
    candidates = [line for line in sample_lines if line.strip()]
    if not candidates:
        raise ValueError("cannot sniff an empty trace")
    for name in _SNIFF_ORDER:
        if _ADAPTERS[name].sniff(candidates):
            return name
    raise ValueError(
        "could not detect the trace format; pass one of "
        f"{', '.join(adapter_names())} explicitly"
    )


_EXPORT_COLUMNS = (
    "timestamp_us",
    "user",
    "session",
    "op",
    "path",
    "size",
    "duration_us",
    "file_size",
    "category",
)


def _export_safe(path: str) -> str:
    """Escape line breaks so every exported record stays one physical line.

    The CSV adapter parses line by line (constant memory), so a quoted
    field spanning physical lines would be truncated on re-import.
    Escaped paths stay self-consistent identities within the trace,
    which is all the characterisation needs.
    """
    return path.replace("\\", "\\\\").replace("\n", "\\n").replace("\r", "\\r")


def export_csv(log: UsageLog, stream, layout=None) -> int:
    """Write ``log`` as a generic CSV trace; returns the row count.

    ``layout`` (anything with ``size_of(path)``) supplies file-size
    hints, mirroring what attribute-carrying formats like NFS dumps
    expose.  The output re-imports through :class:`CsvTraceAdapter` with
    one record per operation; line breaks in paths are escaped (see
    :func:`_export_safe`).
    """
    writer = csv.writer(stream, lineterminator="\n")
    writer.writerow(_EXPORT_COLUMNS)
    rows = 0
    for op in log.operations:
        known_size = layout.size_of(op.path) if layout is not None else None
        writer.writerow(
            (
                repr(op.start_us),
                op.user_id,
                op.session_id,
                op.op,
                _export_safe(op.path),
                op.size,
                repr(op.response_us),
                "" if known_size is None else known_size,
                op.category_key,
            )
        )
        rows += 1
    return rows
