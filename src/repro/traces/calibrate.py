"""Trace calibration: any ingested trace → a shareable :class:`WorkloadSpec`.

The pipeline is adapter → :func:`sessionize_events` → the existing
:func:`~repro.core.characterize.characterize_log` machinery, with two
trace-specific refinements:

* the population size and file-system size default to what the trace
  actually showed (observed users / distinct paths);
* the think-time distribution is re-fitted from *service-time-corrected*
  gaps (:func:`~repro.traces.measures.think_time_samples`) whenever the
  source carries per-call durations — the raw inter-request gaps
  ``characterize_log`` uses include service time, which double-counts
  latency once the synthetic workload adds its own.

The result carries the spec, the reconstructed usage log, and ingestion
provenance; ``repro trace calibrate`` writes the spec as a JSON artefact
(see :mod:`repro.core.specjson`) ready for ``repro trace validate`` or a
:func:`~repro.scenarios.register_spec_file` scenario entry.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from ..core.characterize import characterize_log, fit_measure
from ..core.oplog import OpSink, UsageLog
from ..core.spec import WorkloadSpec
from .adapters import detect_format, get_adapter
from .events import IngestStats, IssueCollector, TraceError
from .measures import think_time_samples
from .sessionize import DEFAULT_GAP_US, PathSizeIndex, sessionize_events

__all__ = [
    "CalibrationResult",
    "ingest_trace_lines",
    "ingest_trace_file",
    "calibrate_log",
    "calibrate_trace_file",
]

_SNIFF_LINES = 50


@dataclass
class CalibrationResult:
    """A calibrated spec plus how it was obtained."""

    spec: WorkloadSpec
    log: UsageLog
    size_index: PathSizeIndex
    stats: IngestStats
    method: str
    gap_us: float

    def meta(self, source: str = "") -> dict:
        """Provenance block for the spec JSON artefact."""
        return {
            "calibrated_from": os.path.basename(source) if source else "",
            "adapter": self.stats.adapter,
            "method": self.method,
            "gap_us": self.gap_us,
            "events": self.stats.events,
            "sessions": self.stats.sessions,
            "users": self.stats.users,
            "distinct_paths": self.stats.distinct_paths,
            "parse_issues": self.stats.issues_total,
        }


def _resolve_adapter(lines: Iterator[str], fmt: str | None):
    """(adapter, line iterator) — sniffing re-chains the consumed sample."""
    if fmt is not None:
        return get_adapter(fmt), lines
    sample = list(itertools.islice(lines, _SNIFF_LINES))
    try:
        name = detect_format(sample)
    except ValueError as exc:
        raise TraceError(str(exc)) from exc
    return get_adapter(name), itertools.chain(sample, lines)


def ingest_trace_lines(
    lines: Iterable[str],
    sink: OpSink,
    fmt: str | None = None,
    gap_us: float = DEFAULT_GAP_US,
    strict: bool = False,
    source_name: str = "",
) -> tuple[IngestStats, PathSizeIndex]:
    """Parse + sessionize ``lines`` into ``sink``; returns (stats, sizes).

    ``fmt`` names an adapter (see :func:`~repro.traces.adapters.adapter_names`)
    or ``None`` to sniff.  ``strict`` turns the first malformed line into
    a :class:`~repro.traces.events.TraceParseError`.
    """
    adapter, line_iter = _resolve_adapter(iter(lines), fmt)
    issues = IssueCollector(strict=strict, source=source_name)
    events = adapter.iter_events(line_iter, issues)
    result = sessionize_events(events, sink, gap_us=gap_us, issues=issues)
    result.stats.adapter = adapter.name
    return result.stats, result.size_index


def ingest_trace_file(
    path: str,
    sink: OpSink,
    fmt: str | None = None,
    gap_us: float = DEFAULT_GAP_US,
    strict: bool = False,
) -> tuple[IngestStats, PathSizeIndex]:
    """:func:`ingest_trace_lines` over a file, streaming."""
    with open(path, "r", encoding="utf-8", errors="replace") as stream:
        return ingest_trace_lines(
            stream,
            sink,
            fmt=fmt,
            gap_us=gap_us,
            strict=strict,
            source_name=os.path.basename(path),
        )


def calibrate_log(
    log: UsageLog,
    size_index: PathSizeIndex | None = None,
    method: str = "fit",
    seed: int = 0,
    n_users: int | None = None,
    total_files: int | None = None,
    user_type_name: str = "calibrated",
) -> WorkloadSpec:
    """Characterize a reconstructed log into a generator-ready spec.

    Defaults derive from the log itself: the population is the number of
    distinct users observed and the file-system size the number of
    distinct paths (floored at 50 so tiny traces still generate).
    """
    if not log.operations:
        raise TraceError("trace produced no operations to calibrate from")
    observed_users = len({op.user_id for op in log.operations})
    observed_paths = len({op.path for op in log.operations})
    spec = characterize_log(
        log,
        layout=size_index,
        method=method,
        user_type_name=user_type_name,
        total_files=total_files or max(50, observed_paths),
        n_users=n_users or observed_users,
        seed=seed,
    )
    gaps = think_time_samples(log)
    if len(gaps) >= 2:
        think_time = fit_measure([float(g) for g in gaps], method)
        spec = replace(
            spec,
            user_types=tuple(replace(ut, think_time=think_time) for ut in spec.user_types),
        )
    return spec


def calibrate_trace_file(
    path: str,
    fmt: str | None = None,
    gap_us: float = DEFAULT_GAP_US,
    method: str = "fit",
    seed: int = 0,
    n_users: int | None = None,
    total_files: int | None = None,
    user_type_name: str = "calibrated",
    strict: bool = False,
) -> CalibrationResult:
    """The full measure→characterise pipeline over one trace file."""
    log = UsageLog()
    stats, size_index = ingest_trace_file(
        path, log, fmt=fmt, gap_us=gap_us, strict=strict
    )
    try:
        spec = calibrate_log(
            log,
            size_index=size_index,
            method=method,
            seed=seed,
            n_users=n_users,
            total_files=total_files,
            user_type_name=user_type_name,
        )
    except ValueError as exc:
        raise TraceError(f"{os.path.basename(path)}: {exc}") from exc
    return CalibrationResult(
        spec=spec,
        log=log,
        size_index=size_index,
        stats=stats,
        method=method,
        gap_us=gap_us,
    )
