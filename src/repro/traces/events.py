"""Canonical trace events and ingestion error reporting.

Every adapter (:mod:`repro.traces.adapters`) parses its source format
into a stream of :class:`TraceEvent` — the subsystem's narrow waist.
Downstream, the sessionizer turns events into the repo's canonical
:class:`~repro.core.oplog.OpRecord`/:class:`~repro.core.oplog.SessionRecord`
stream, after which the whole existing characterisation machinery
applies unchanged.

Error handling is explicit: adapters never silently drop a malformed
line.  Each problem becomes a :class:`ParseIssue` (with its line number
and a clipped copy of the offending text) collected by an
:class:`IssueCollector`; in strict mode the first issue raises
:class:`TraceParseError` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CANONICAL_OPS",
    "TraceEvent",
    "TraceError",
    "TraceParseError",
    "ParseIssue",
    "IssueCollector",
]

# The op vocabulary the sessionizer understands — the same system-call
# names the USIM emits (see repro.core.usim).
CANONICAL_OPS = frozenset(
    {
        "open",
        "creat",
        "read",
        "write",
        "close",
        "stat",
        "lseek",
        "unlink",
        "listdir",
        "mkdir",
        "rmdir",
    }
)


class TraceError(ValueError):
    """Base error for the trace subsystem."""


@dataclass(frozen=True)
class ParseIssue:
    """One malformed / unusable trace record.

    ``unit`` names what ``line_no`` counts: adapters report physical
    ``"line"`` numbers; post-parse stages (the sessionizer) count parsed
    ``"event"`` ordinals, which drift from line numbers whenever the
    adapter skipped lines.
    """

    line_no: int
    reason: str
    line: str = ""
    unit: str = "line"

    def __str__(self) -> str:
        clipped = self.line if len(self.line) <= 120 else self.line[:117] + "..."
        suffix = f": {clipped!r}" if clipped else ""
        return f"{self.unit} {self.line_no}: {self.reason}{suffix}"


class TraceParseError(TraceError):
    """Raised in strict mode for the first malformed line."""

    def __init__(self, issue: ParseIssue, source: str = ""):
        prefix = f"{source}: " if source else ""
        super().__init__(f"{prefix}{issue}")
        self.issue = issue


class IssueCollector:
    """Accumulates parse issues, keeping a bounded sample of them.

    ``strict=True`` turns the first issue into a :class:`TraceParseError`.
    ``total`` always counts every issue; only the first ``keep`` are
    retained verbatim for reporting.
    """

    def __init__(self, strict: bool = False, keep: int = 20, source: str = ""):
        self.strict = strict
        self.keep = keep
        self.source = source
        self.total = 0
        self.issues: list[ParseIssue] = []

    def add(self, line_no: int, reason: str, line: str = "", unit: str = "line") -> None:
        """Record one issue (raises immediately in strict mode)."""
        issue = ParseIssue(
            line_no=line_no, reason=reason, line=line.rstrip("\n"), unit=unit
        )
        if self.strict:
            raise TraceParseError(issue, source=self.source)
        self.total += 1
        if len(self.issues) < self.keep:
            self.issues.append(issue)

    def summary(self) -> str:
        """Human-readable digest of what went wrong."""
        if self.total == 0:
            return "no parse issues"
        lines = [f"{self.total} line(s) could not be parsed; first {len(self.issues)}:"]
        lines.extend(f"  {issue}" for issue in self.issues)
        return "\n".join(lines)


@dataclass(frozen=True)
class TraceEvent:
    """One file-system operation observed in an external trace.

    ``user`` is an opaque source identifier (uid, pid, NFS client host,
    CSV column value, ...); the sessionizer maps distinct values to dense
    integer user ids.  Optional fields carry information only some
    formats provide: ``session`` (explicit session/login records),
    ``file_size`` (NFS attribute replies, CSV columns), ``category`` (a
    pre-classified ``REG:USER:RDONLY``-style key), and ``duration_us``
    (per-call latency, used to separate think time from service time).
    """

    timestamp_us: float
    user: str
    op: str
    path: str
    size: int = 0
    duration_us: float = 0.0
    session: str | None = None
    file_size: int | None = None
    category: str | None = None


@dataclass
class IngestStats:
    """What one ingestion pass saw."""

    adapter: str = ""
    events: int = 0
    users: int = 0
    sessions: int = 0
    distinct_paths: int = 0
    issues_total: int = 0
    issue_sample: list[ParseIssue] = field(default_factory=list)

    def as_kv(self) -> dict[str, object]:
        """Key/value form for CLI summaries."""
        return {
            "adapter": self.adapter,
            "events": self.events,
            "users": self.users,
            "sessions": self.sessions,
            "distinct paths": self.distinct_paths,
            "lines with issues": self.issues_total,
        }
