"""Closed-loop validation: does the calibrated spec reproduce its trace?

The thesis's correctness argument is a loop — measure → characterise →
synthesise → measure — whose two characterisations must agree.  This
module runs that loop mechanically:

1. regenerate a synthetic workload from the calibrated spec (one engine,
   or sharded through :mod:`repro.fleet` for large traces);
2. extract the same measure samples from source and synthetic logs
   (:mod:`repro.traces.measures`, one shared code path);
3. compare each measure with a two-sample KS distance and a mean
   relative error.

The fidelity report renders as text (CLI) and JSON (automation);
``passed`` applies one KS threshold across all measures.  The default
threshold of 0.35 is deliberately loose: bootstrap-level agreement for a
moderate trace lands near 0.05–0.15 per measure, and a mis-calibrated
spec typically blows past 0.5, so 0.35 separates "the loop closed" from
"it did not" without flagging sampling noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from ..core.generator import WorkloadGenerator
from ..core.oplog import UsageLog
from ..core.spec import WorkloadSpec
from ..distributions import ks_two_sample
from ..vfs import MemoryFileSystem
from .measures import MEASURES, measure_samples

__all__ = [
    "DEFAULT_KS_THRESHOLD",
    "MeasureFidelity",
    "FidelityReport",
    "regenerate",
    "validate_spec",
]

DEFAULT_KS_THRESHOLD = 0.35


@dataclass(frozen=True)
class MeasureFidelity:
    """Source-vs-synthetic agreement for one usage measure."""

    measure: str
    ks: float
    source_mean: float
    synthetic_mean: float
    mean_relative_error: float
    n_source: int
    n_synthetic: int

    def as_row(self) -> tuple:
        return (
            self.measure,
            self.n_source,
            self.n_synthetic,
            self.source_mean,
            self.synthetic_mean,
            self.ks,
            self.mean_relative_error,
        )


@dataclass
class FidelityReport:
    """The closed-loop comparison across every measure."""

    measures: list[MeasureFidelity]
    threshold: float
    source_sessions: int
    synthetic_sessions: int
    source_ops: int
    synthetic_ops: int
    sessions_per_user: int
    shards: int
    seed: int

    @property
    def worst_ks(self) -> float:
        """The largest KS distance across measures."""
        return max((m.ks for m in self.measures), default=0.0)

    @property
    def passed(self) -> bool:
        """True when every measure's KS distance is within the threshold."""
        return all(m.ks <= self.threshold for m in self.measures)

    def formatted(self) -> str:
        """Human-readable report."""
        from ..harness import format_kv, format_table

        header = format_kv(
            {
                "source sessions": self.source_sessions,
                "synthetic sessions": self.synthetic_sessions,
                "source ops": self.source_ops,
                "synthetic ops": self.synthetic_ops,
                "sessions per user": self.sessions_per_user,
                "shards": self.shards,
                "seed": self.seed,
                "KS threshold": self.threshold,
            },
            title="Closed-loop validation",
        )
        table = format_table(
            ["measure", "n src", "n syn", "mean src", "mean syn", "KS", "rel err"],
            [m.as_row() for m in self.measures],
            title="Fidelity by measure (two-sample KS, mean relative error)",
        )
        verdict = (
            f"PASS: all {len(self.measures)} measures within KS {self.threshold}"
            if self.passed
            else f"FAIL: worst KS {self.worst_ks:.4f} exceeds {self.threshold}"
        )
        return "\n\n".join([header, table, verdict])

    def to_jsonable(self) -> dict[str, Any]:
        """Machine-readable report."""
        return {
            "passed": self.passed,
            "threshold": self.threshold,
            "worst_ks": self.worst_ks,
            "source_sessions": self.source_sessions,
            "synthetic_sessions": self.synthetic_sessions,
            "source_ops": self.source_ops,
            "synthetic_ops": self.synthetic_ops,
            "sessions_per_user": self.sessions_per_user,
            "shards": self.shards,
            "seed": self.seed,
            "measures": {
                m.measure: {
                    "ks": m.ks,
                    "source_mean": m.source_mean,
                    "synthetic_mean": m.synthetic_mean,
                    "mean_relative_error": _json_number(m.mean_relative_error),
                    "n_source": m.n_source,
                    "n_synthetic": m.n_synthetic,
                }
                for m in self.measures
            },
        }

    def to_json(self) -> str:
        # allow_nan=False guarantees the artefact is strict JSON (no
        # bare Infinity/NaN tokens that non-Python parsers reject).
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True, allow_nan=False)


def _json_number(value: float) -> float | None:
    """Strict-JSON-safe number: non-finite values become null."""
    import math

    return value if math.isfinite(value) else None


def regenerate(
    spec: WorkloadSpec,
    sessions_per_user: int,
    shards: int = 1,
    backend: str = "nfs",
):
    """Run the spec's synthetic workload; returns ``(log, layout)``.

    ``shards > 1`` routes through :func:`repro.fleet.run_fleet` (the
    merged content is shard-count-invariant, so the fidelity numbers do
    not depend on this choice — only wall-clock does).  ``backend``
    accepts any execution backend, including ``fast``: the regenerated
    op stream is backend-invariant, so a ``fast`` validation differs
    only in the service-time component of recorded timings.
    """
    if shards > 1:
        from ..fleet import FleetConfig, run_fleet

        result = run_fleet(
            FleetConfig(
                spec=spec,
                shards=min(shards, spec.n_users),
                sessions_per_user=sessions_per_user,
                backend=backend,
                collect_ops=True,
            )
        )
        layout = WorkloadGenerator(spec).create_file_system(MemoryFileSystem())
        return result.log, layout
    run = WorkloadGenerator(spec).run_simulated(
        sessions_per_user=sessions_per_user, backend=backend
    )
    return run.log, run.layout


def _has_sizes(layout) -> bool:
    """True unless ``layout`` is a visibly empty size index."""
    try:
        return len(layout) > 0
    except TypeError:
        return True  # no length protocol (e.g. FileSystemLayout): trust it


def _compare(measure: str, source: np.ndarray, synthetic: np.ndarray) -> MeasureFidelity:
    n_source, n_synthetic = len(source), len(synthetic)
    if n_source == 0 and n_synthetic == 0:
        ks = 0.0
    elif n_source == 0 or n_synthetic == 0:
        ks = 1.0  # one side never observed the measure: maximal mismatch
    else:
        ks = ks_two_sample(source, synthetic)
    source_mean = float(np.mean(source)) if n_source else 0.0
    synthetic_mean = float(np.mean(synthetic)) if n_synthetic else 0.0
    if source_mean != 0.0:
        rel_err = abs(synthetic_mean - source_mean) / abs(source_mean)
    else:
        rel_err = 0.0 if synthetic_mean == 0.0 else float("inf")
    return MeasureFidelity(
        measure=measure,
        ks=ks,
        source_mean=source_mean,
        synthetic_mean=synthetic_mean,
        mean_relative_error=rel_err,
        n_source=n_source,
        n_synthetic=n_synthetic,
    )


def validate_spec(
    spec: WorkloadSpec,
    source_log: UsageLog,
    source_layout=None,
    sessions_per_user: int | None = None,
    shards: int = 1,
    backend: str = "nfs",
    threshold: float = DEFAULT_KS_THRESHOLD,
    seed: int | None = None,
) -> FidelityReport:
    """Run the closed loop and report per-measure fidelity.

    ``sessions_per_user`` defaults to matching the source's session
    count across the spec's population.  ``seed`` overrides the spec's
    seed for the regeneration (the loop is deterministic either way).
    ``source_layout`` is anything with ``size_of(path)`` — typically the
    :class:`~repro.traces.sessionize.PathSizeIndex` from ingestion.
    """
    if seed is not None:
        spec = replace(spec, seed=seed)
    if sessions_per_user is None:
        sessions = max(len(source_log.sessions), 1)
        sessions_per_user = max(1, round(sessions / spec.n_users))
    synthetic_log, synthetic_layout = regenerate(
        spec, sessions_per_user=sessions_per_user, shards=shards, backend=backend
    )
    # Symmetry: file sizes must resolve the same way on both sides.  A
    # source with no size information falls back to write-accumulation,
    # so the synthetic side must too — otherwise the file-size measure
    # compares "true layout sizes" against "bytes written" and reports a
    # mismatch the calibration did not cause.
    if source_layout is None or not _has_sizes(source_layout):
        synthetic_layout = None
    source = measure_samples(source_log, source_layout)
    synthetic = measure_samples(synthetic_log, synthetic_layout)
    comparisons = [
        _compare(measure, source[measure], synthetic[measure]) for measure in MEASURES
    ]
    return FidelityReport(
        measures=comparisons,
        threshold=threshold,
        source_sessions=len(source_log.sessions),
        synthetic_sessions=len(synthetic_log.sessions),
        source_ops=len(source_log.operations),
        synthetic_ops=len(synthetic_log.operations),
        sessions_per_user=sessions_per_user,
        shards=shards,
        seed=spec.seed,
    )
