"""Sessionization: canonical trace events → the usage-log record stream.

The thesis's characterisation is *per login session*, but most external
traces carry no session records.  This module reconstructs them:

* when events carry an explicit ``session`` value, a change of value
  (per user) is a session boundary;
* otherwise a user going idle for more than ``gap_us`` closes the
  session (the classic idle-gap heuristic).

Events stream straight into any :class:`~repro.core.oplog.OpSink` —
memory stays proportional to the number of *users and open-session
paths*, never the number of operations — and each closed session emits a
best-effort :class:`~repro.core.oplog.SessionRecord` summary.

Traces also rarely carry the thesis's ``(file type, owner, use)``
category labels.  :class:`CategoryInferencer` derives them: directory
ops mark DIR files, path prefixes pick the owner, and each path's
observed create/write history picks the type of use (``/tmp`` paths are
TEMP, created paths NEW, written paths RD-WRT, the rest RDONLY).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.oplog import OpRecord, OpSink, SessionRecord
from ..core.spec import FileCategory, SpecError
from .events import IngestStats, IssueCollector, TraceEvent

__all__ = [
    "DEFAULT_GAP_US",
    "TRACE_USER_TYPE",
    "PathSizeIndex",
    "CategoryInferencer",
    "SessionizeResult",
    "sessionize_events",
]

# 30 minutes of idle time ends a session — the conventional boundary in
# session-reconstruction literature; override per trace via ``gap_us``.
DEFAULT_GAP_US = 30 * 60 * 1_000_000.0

# All reconstructed users share one user-type label; calibration builds a
# single characterized user type from them.
TRACE_USER_TYPE = "trace"

_DATA_OPS = ("read", "write", "listdir")
_REFERENCE_OPS = ("open", "creat", "stat", "read", "write")
_DIR_OPS = ("listdir", "mkdir", "rmdir")


class PathSizeIndex:
    """Observed file sizes by path — a duck-typed ``FileSystemLayout``.

    Only *explicit* size observations (``TraceEvent.file_size``) are
    stored; paths whose size is unknown return ``None`` so that the
    characterisation's write-accumulation fallback applies.
    """

    def __init__(self) -> None:
        self._sizes: dict[str, int] = {}

    def observe(self, path: str, size: int) -> None:
        """Record the most recent size observation for ``path``."""
        self._sizes[path] = int(size)

    def size_of(self, path: str) -> int | None:
        """The last observed size of ``path``, or None."""
        return self._sizes.get(path)

    def __len__(self) -> int:
        return len(self._sizes)


class CategoryInferencer:
    """Heuristic ``(file type, owner, type of use)`` labels for raw paths."""

    USER_PREFIXES = ("/home/", "/users/", "/u/", "/export/home/", "~")
    TEMP_PREFIXES = ("/tmp/", "/var/tmp/", "/private/tmp/")

    def __init__(self) -> None:
        self._created: set[str] = set()
        self._written: set[str] = set()

    def key_for(self, event: TraceEvent) -> str:
        """The inferred category key for one event."""
        path = event.path
        if event.op == "creat":
            self._created.add(path)
        elif event.op == "write":
            self._written.add(path)

        file_type = "DIR" if event.op in _DIR_OPS else "REG"
        if any(path.startswith(p) for p in self.USER_PREFIXES):
            owner = "USER"
        elif "/notes" in path:
            owner = "NOTES"
        else:
            owner = "OTHER"
        if file_type == "DIR":
            use = "RDONLY"  # directories are read-only special files
        elif any(path.startswith(p) for p in self.TEMP_PREFIXES):
            use = "TEMP"
        elif path in self._created:
            use = "NEW"
        elif path in self._written:
            use = "RD-WRT"
        else:
            use = "RDONLY"
        return f"{file_type}:{owner}:{use}"


@dataclass
class _OpenSession:
    """Accumulator for one in-progress reconstructed session."""

    session_id: int
    source_session: str | None
    start_us: float
    last_us: float
    last_end_us: float
    bytes_accessed: int = 0
    referenced: dict[str, int] = field(default_factory=dict)
    categories: set[str] = field(default_factory=set)


@dataclass
class SessionizeResult:
    """Everything a sessionization pass produced besides the records."""

    stats: IngestStats
    size_index: PathSizeIndex
    user_ids: dict[str, int]


def sessionize_events(
    events: Iterable[TraceEvent],
    sink: OpSink,
    gap_us: float = DEFAULT_GAP_US,
    issues: IssueCollector | None = None,
) -> SessionizeResult:
    """Stream ``events`` into ``sink`` as OpRecords + SessionRecords.

    Events must be in (roughly) timestamp order per user; small
    inversions are clamped to the user's last-seen time.  Distinct
    ``event.user`` values become dense integer user ids in order of
    first appearance (deterministic for a fixed trace).
    """
    if gap_us <= 0:
        raise ValueError(f"gap_us must be positive, got {gap_us!r}")
    issues = issues if issues is not None else IssueCollector()
    inferencer = CategoryInferencer()
    size_index = PathSizeIndex()
    user_ids: dict[str, int] = {}
    open_sessions: dict[int, _OpenSession] = {}
    session_counts: dict[int, int] = {}
    stats = IngestStats()
    paths_seen: set[str] = set()

    def close(user_id: int, state: _OpenSession) -> None:
        file_bytes = 0
        for path, write_bytes in state.referenced.items():
            known = size_index.size_of(path)
            file_bytes += known if known is not None else write_bytes
        sink.record_session(
            SessionRecord(
                user_id=user_id,
                user_type=TRACE_USER_TYPE,
                session_id=state.session_id,
                start_us=state.start_us,
                end_us=max(state.last_end_us, state.start_us),
                files_referenced=len(state.referenced),
                bytes_accessed=state.bytes_accessed,
                file_bytes_referenced=file_bytes,
                categories=tuple(sorted(state.categories)),
            )
        )
        stats.sessions += 1

    for index, event in enumerate(events, 1):
        user_id = user_ids.setdefault(event.user, len(user_ids))
        state = open_sessions.get(user_id)

        timestamp = event.timestamp_us
        if state is not None and timestamp < state.last_us:
            timestamp = state.last_us  # clamp small out-of-order inversions

        boundary = state is not None and (
            (event.session is not None and event.session != state.source_session)
            or (event.session is None and timestamp - state.last_us > gap_us)
        )
        if boundary:
            assert state is not None
            close(user_id, state)
            state = None
        if state is None:
            session_id = session_counts.get(user_id, 0)
            session_counts[user_id] = session_id + 1
            state = _OpenSession(
                session_id=session_id,
                source_session=event.session,
                start_us=timestamp,
                last_us=timestamp,
                last_end_us=timestamp,
            )
            open_sessions[user_id] = state

        category = event.category
        if category is not None:
            try:
                FileCategory.from_key(category)
            except SpecError:
                issues.add(
                    index,
                    f"invalid category key {category!r}; inferring",
                    unit="event",
                )
                category = None
        if category is None:
            category = inferencer.key_for(event)
        else:
            # Keep the inferencer's create/write history warm so later
            # unlabelled events on the same path classify consistently.
            inferencer.key_for(event)

        if event.file_size is not None:
            size_index.observe(event.path, event.file_size)

        sink.record_op(
            OpRecord(
                user_id=user_id,
                user_type=TRACE_USER_TYPE,
                session_id=state.session_id,
                op=event.op,
                path=event.path,
                category_key=category,
                size=event.size,
                start_us=timestamp,
                response_us=event.duration_us,
            )
        )
        stats.events += 1
        paths_seen.add(event.path)
        state.last_us = timestamp
        state.last_end_us = max(state.last_end_us, timestamp + event.duration_us)
        state.categories.add(category)
        if event.op in _DATA_OPS:
            state.bytes_accessed += event.size
        if event.op in _REFERENCE_OPS:
            accumulated = state.referenced.get(event.path, 0)
            if event.op == "write":
                accumulated += event.size
            state.referenced[event.path] = accumulated

    for user_id, state in sorted(open_sessions.items()):
        close(user_id, state)

    stats.users = len(user_ids)
    stats.distinct_paths = len(paths_seen)
    stats.issues_total = issues.total
    stats.issue_sample = list(issues.issues)
    return SessionizeResult(stats=stats, size_index=size_index, user_ids=user_ids)
