"""The Table 5.2 measure samples used on both sides of the closed loop.

Calibration fits distributions to these samples from the *source* trace;
validation extracts the same samples from the *synthetic* regeneration
and compares the two with KS distances.  Keeping the extraction in one
place guarantees the comparison is apples-to-apples: whatever bias the
extraction has, it has on both sides.
"""

from __future__ import annotations

import numpy as np

from ..core.characterize import extract_samples
from ..core.oplog import UsageLog

__all__ = ["MEASURES", "think_time_samples", "measure_samples"]

# The five usage measures of the thesis's characterization (Table 5.2
# plus the two global distributions of section 5.1).
MEASURES = (
    "access_size",
    "file_size",
    "files_referenced",
    "access_per_byte",
    "think_time",
)


def think_time_samples(log: UsageLog) -> np.ndarray:
    """Per-gap think times: next start minus previous call's *end*.

    Subtracting the recorded per-call response isolates think time from
    service time wherever the source trace carries durations; without
    durations this degrades gracefully to inter-request gaps (an upper
    bound on think time), identically on both sides of the comparison.
    """
    per_session: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for op in log.operations:
        per_session.setdefault((op.user_id, op.session_id), []).append(
            (op.start_us, op.response_us)
        )
    gaps: list[float] = []
    for entries in per_session.values():
        entries.sort()
        for (start, response), (next_start, _) in zip(entries, entries[1:]):
            gaps.append(max(next_start - (start + response), 0.0))
    return np.asarray(gaps, dtype=float)


def measure_samples(log: UsageLog, layout=None) -> dict[str, np.ndarray]:
    """Sample arrays for every measure in :data:`MEASURES`.

    Per-category samples are pooled across categories: the closed-loop
    fidelity check compares whole-workload marginals, which stays
    meaningful even when source and synthetic category taxonomies differ
    slightly (e.g. heuristically inferred categories).  ``layout`` is
    anything with ``size_of(path)`` for resolving referenced-file sizes.
    """
    by_category, access_sizes, _ = extract_samples(log, layout)
    pooled: dict[str, list[float]] = {
        "file_size": [],
        "files_referenced": [],
        "access_per_byte": [],
    }
    for samples in by_category.values():
        pooled["file_size"].extend(samples.file_sizes)
        pooled["files_referenced"].extend(samples.files_per_session)
        pooled["access_per_byte"].extend(samples.accesses_per_byte)
    return {
        "access_size": np.asarray(access_sizes, dtype=float),
        "file_size": np.asarray(pooled["file_size"], dtype=float),
        "files_referenced": np.asarray(pooled["files_referenced"], dtype=float),
        "access_per_byte": np.asarray(pooled["access_per_byte"], dtype=float),
        "think_time": think_time_samples(log),
    }
