"""repro — a reproduction of Kao's user-oriented synthetic workload generator.

Reference: Wei-Lun Kao, *A User-Oriented Synthetic Workload Generator*,
M.S. thesis, University of Illinois at Urbana-Champaign, 1991
(CRHC-91-19); published at ICDCS 1992.

The package provides:

* :mod:`repro.distributions` — phase-type exponential and multi-stage
  gamma families, tabular PDF/CDF input, Simpson-rule CDF tables;
* :mod:`repro.vfs` — a syscall-level file-system substrate (in-memory
  Unix-like FS plus a sandboxed real-directory backend);
* :mod:`repro.sim` — a deterministic discrete-event simulation engine;
* :mod:`repro.nfs` — simulated SUN-NFS / local-disk / AFS-like backends;
* :mod:`repro.core` — the workload generator itself (GDS, FSC, USIM),
  the paper's measured tables, the usage log and the analyzer;
* :mod:`repro.scenarios` — a registry of named, ready-to-run workload
  mixes (campus, dev team, batch, database, ...);
* :mod:`repro.fleet` — sharded multi-process generation for large
  populations, with deterministic merged statistics, supervised retry,
  and checkpoint/resume;
* :mod:`repro.faults` — deterministic fault injection (worker kills,
  stalls, ENOSPC, bit-flips) proving the recovery paths;
* :mod:`repro.traces` — external-trace ingestion (CSV/JSONL/strace/
  nfsdump), spec calibration, and closed-loop fidelity validation;
* :mod:`repro.obs` — zero-overhead-when-off run observability: metrics
  registry, stage spans, live progress, run-manifest artifacts;
* :mod:`repro.harness` — one function per paper table and figure.

Quickstart::

    from repro import paper_workload_spec, WorkloadGenerator

    spec = paper_workload_spec(n_users=3, total_files=200, seed=42)
    result = WorkloadGenerator(spec).run_simulated(sessions_per_user=5)
    print(result.analyzer.response_time_stats().summary())

Scaling out::

    from repro import FleetConfig, run_fleet

    result = run_fleet(FleetConfig(scenario="mixed-campus",
                                   users=1000, shards=4, seed=7))
    print(result.aggregate_kv())

Calibrating from a trace::

    from repro.traces import calibrate_trace_file, validate_spec

    cal = calibrate_trace_file("examples/example_trace.csv", seed=5)
    report = validate_spec(cal.spec, cal.log, cal.size_index)
    print(report.formatted())
"""

from .core import (
    ArrivalModel,
    DEFAULT_ARRIVALS,
    DistributionSpecifier,
    ExecutionBackend,
    FastReplayBackend,
    FileCategory,
    FileCategorySpec,
    FileSystemCreator,
    FileSystemLayout,
    LoadProfile,
    OpRecord,
    PhaseModel,
    RealRunner,
    RunResult,
    SessionGenerator,
    SessionRecord,
    UsageAnalyzer,
    UsageLog,
    UsageSpec,
    UserTypeSpec,
    WorkloadGenerator,
    WorkloadSpec,
    get_profile,
    paper_file_categories,
    paper_usage_specs,
    paper_user_type,
    paper_workload_spec,
    profile_names,
)
from .distributions import (
    CdfTable,
    Constant,
    Distribution,
    EmpiricalDistribution,
    MultiStageGamma,
    PhaseTypeExponential,
    RandomStreams,
    ShiftedExponential,
    ShiftedGamma,
    TabulatedCdf,
    TabulatedPdf,
    Uniform,
)
from .faults import FaultSpec, parse_fault
from .fleet import (
    FleetConfig,
    FleetPartialError,
    FleetResult,
    WorkloadTally,
    resume_fleet_config,
    run_fleet,
)
from .obs import (
    MetricsRegistry,
    NULL_OBSERVER,
    ProgressMeter,
    RunObserver,
    build_manifest,
    merge_snapshots,
    snapshot_jsonl,
    snapshot_prometheus,
    write_manifest,
)
from .scenarios import (
    Scenario,
    build_scenario_spec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .vfs import LocalFileSystem, MemoryFileSystem, OpenFlags

__version__ = "1.3.0"

__all__ = [
    "ArrivalModel",
    "DEFAULT_ARRIVALS",
    "LoadProfile",
    "get_profile",
    "profile_names",
    "DistributionSpecifier",
    "FileCategory",
    "FileCategorySpec",
    "FileSystemCreator",
    "FileSystemLayout",
    "OpRecord",
    "ExecutionBackend",
    "FastReplayBackend",
    "PhaseModel",
    "RealRunner",
    "RunResult",
    "SessionGenerator",
    "SessionRecord",
    "UsageAnalyzer",
    "UsageLog",
    "UsageSpec",
    "UserTypeSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "paper_file_categories",
    "paper_usage_specs",
    "paper_user_type",
    "paper_workload_spec",
    "CdfTable",
    "Constant",
    "Distribution",
    "EmpiricalDistribution",
    "MultiStageGamma",
    "PhaseTypeExponential",
    "RandomStreams",
    "ShiftedExponential",
    "ShiftedGamma",
    "TabulatedCdf",
    "TabulatedPdf",
    "Uniform",
    "FaultSpec",
    "parse_fault",
    "FleetConfig",
    "FleetPartialError",
    "FleetResult",
    "WorkloadTally",
    "resume_fleet_config",
    "run_fleet",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "ProgressMeter",
    "RunObserver",
    "build_manifest",
    "merge_snapshots",
    "snapshot_jsonl",
    "snapshot_prometheus",
    "write_manifest",
    "Scenario",
    "build_scenario_spec",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "LocalFileSystem",
    "MemoryFileSystem",
    "OpenFlags",
    "__version__",
]
