"""repro — a reproduction of Kao's user-oriented synthetic workload generator.

Reference: Wei-Lun Kao, *A User-Oriented Synthetic Workload Generator*,
M.S. thesis, University of Illinois at Urbana-Champaign, 1991
(CRHC-91-19); published at ICDCS 1992.

The package provides:

* :mod:`repro.distributions` — phase-type exponential and multi-stage
  gamma families, tabular PDF/CDF input, Simpson-rule CDF tables;
* :mod:`repro.vfs` — a syscall-level file-system substrate (in-memory
  Unix-like FS plus a sandboxed real-directory backend);
* :mod:`repro.sim` — a deterministic discrete-event simulation engine;
* :mod:`repro.nfs` — simulated SUN-NFS / local-disk / AFS-like backends;
* :mod:`repro.core` — the workload generator itself (GDS, FSC, USIM),
  the paper's measured tables, the usage log and the analyzer;
* :mod:`repro.harness` — one function per paper table and figure.

Quickstart::

    from repro import paper_workload_spec, WorkloadGenerator

    spec = paper_workload_spec(n_users=3, total_files=200, seed=42)
    result = WorkloadGenerator(spec).run_simulated(sessions_per_user=5)
    print(result.analyzer.response_time_stats().summary())
"""

from .core import (
    DistributionSpecifier,
    FileCategory,
    FileCategorySpec,
    FileSystemCreator,
    FileSystemLayout,
    OpRecord,
    PhaseModel,
    RealRunner,
    RunResult,
    SessionGenerator,
    SessionRecord,
    UsageAnalyzer,
    UsageLog,
    UsageSpec,
    UserTypeSpec,
    WorkloadGenerator,
    WorkloadSpec,
    paper_file_categories,
    paper_usage_specs,
    paper_user_type,
    paper_workload_spec,
)
from .distributions import (
    CdfTable,
    Constant,
    Distribution,
    EmpiricalDistribution,
    MultiStageGamma,
    PhaseTypeExponential,
    RandomStreams,
    ShiftedExponential,
    ShiftedGamma,
    TabulatedCdf,
    TabulatedPdf,
    Uniform,
)
from .vfs import LocalFileSystem, MemoryFileSystem, OpenFlags

__version__ = "1.0.0"

__all__ = [
    "DistributionSpecifier",
    "FileCategory",
    "FileCategorySpec",
    "FileSystemCreator",
    "FileSystemLayout",
    "OpRecord",
    "PhaseModel",
    "RealRunner",
    "RunResult",
    "SessionGenerator",
    "SessionRecord",
    "UsageAnalyzer",
    "UsageLog",
    "UsageSpec",
    "UserTypeSpec",
    "WorkloadGenerator",
    "WorkloadSpec",
    "paper_file_categories",
    "paper_usage_specs",
    "paper_user_type",
    "paper_workload_spec",
    "CdfTable",
    "Constant",
    "Distribution",
    "EmpiricalDistribution",
    "MultiStageGamma",
    "PhaseTypeExponential",
    "RandomStreams",
    "ShiftedExponential",
    "ShiftedGamma",
    "TabulatedCdf",
    "TabulatedPdf",
    "Uniform",
    "LocalFileSystem",
    "MemoryFileSystem",
    "OpenFlags",
    "__version__",
]
