"""Multi-process fleet execution.

``run_fleet`` shards a population across worker processes: each shard
rebuilds the workload (same root seed → same FSC layout, same per-user
streams), simulates only its slice of users on its own discrete-event
engine, and ships back an online :class:`~repro.fleet.merge.WorkloadTally`
plus timing.  The coordinator merges shard results in shard order.

Execution model
---------------

* ``shards`` is a **semantic** knob: how many independent simulated
  sites the population is split across.  Each shard has its own engine,
  server and network, so users only contend with users in their shard.
* ``workers`` is a **mechanical** knob: how many OS processes execute
  shards.  ``workers=1`` runs every shard in-process (no multiprocessing
  involved); results are identical either way, which is the property the
  fleet tests pin down.

Workers are handed plain picklable data: the resolved
:class:`~repro.core.spec.WorkloadSpec` (frozen dataclasses of floats),
the execution options, and a :class:`~repro.fleet.sharding.ShardPlan`.
Scenario resolution happens **once, in the coordinator** — so custom
scenarios registered by the calling script work under any
multiprocessing start method, including spawn, where workers re-import
a fresh registry.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field

from ..core.arrivals import (
    DEFAULT_ARRIVALS,
    HOUR_US,
    ArrivalError,
    ArrivalModel,
    get_profile,
)
from ..core.generator import FAST_BACKENDS, RUN_BACKENDS, WorkloadGenerator
from ..core.oplog import UsageLog
from ..core.spec import SpecError, WorkloadSpec
from ..core.streamfile import (
    DEFAULT_MEMORY_BUDGET,
    StreamFileSink,
    TeeSink,
    merge_stream_files,
)
from ..core.synthesis import PhaseModel
from ..obs import (
    ProgressMeter,
    QueueProgressSender,
    RunObserver,
    build_manifest,
    merge_snapshots,
    write_manifest,
)
from ..sim import RunningStats
from .merge import ShardAccumulator, WorkloadTally
from .sharding import ShardPlan, plan_shards

__all__ = ["FleetConfig", "ShardOutcome", "FleetResult", "run_fleet"]

_BACKENDS = RUN_BACKENDS


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet run needs; plain data, safe to pickle.

    Exactly one of ``scenario`` (a name in :mod:`repro.scenarios`) or
    ``spec`` (an explicit :class:`~repro.core.spec.WorkloadSpec`) must be
    set.  With an explicit spec, the population size and seed come from
    the spec itself and ``users``/``seed``/``total_files`` are ignored.
    ``access_pattern`` and ``use_phase_model`` default to the scenario's
    settings (scenario configs) or to ``sequential``/off (explicit-spec
    configs); set them to override either way.

    Temporal load: ``use_arrivals=True`` enables the scenario's
    :class:`~repro.core.arrivals.ArrivalModel` (or the default one);
    ``arrival_model`` supplies an explicit model; ``profile`` names a
    registered load profile and overrides the model's (implying
    arrivals).  With arrivals on, ops are also bucketed into
    ``window_us``-wide time windows (one hour unless set explicitly)
    so the merged tally carries the offered-load curve.  Arrival schedules are per-user
    draws from the root seed, so the curve is shard-count-invariant on
    the engine-free backends.

    Observability: ``metrics_out`` writes a run-manifest JSON artifact
    (merged per-shard metric snapshots, per-stage spans, versions, peak
    RSS) after the run; ``progress`` paints a one-line live status to
    stderr aggregated across shards.  Both ride the
    :mod:`repro.obs` observer, which never touches RNG streams or
    recorded bytes — enabling them cannot change any artifact or tally.

    Caveat: ``time_limit_us`` truncates each shard at its *own* simulated
    clock, and simulated time depends on per-site queueing — so with a
    time limit the merged aggregate is **not** shard-count-invariant.
    The bit-for-bit guarantee holds only for run-to-completion fleets
    (``time_limit_us=None``).
    """

    scenario: str | None = None
    spec: WorkloadSpec | None = None
    users: int = 100
    shards: int = 1
    workers: int | None = None
    sessions_per_user: int | None = None
    seed: int = 0
    backend: str = "nfs"
    total_files: int | None = None
    collect_ops: bool = False
    time_limit_us: float | None = None
    access_pattern: str | None = None
    use_phase_model: bool | None = None
    use_arrivals: bool = False
    arrival_model: ArrivalModel | None = None
    profile: str | None = None
    window_us: float | None = None
    out_stream: str | None = None
    stream_budget_bytes: int | None = None
    metrics_out: str | None = None
    progress: bool = False

    def __post_init__(self):
        if (self.scenario is None) == (self.spec is None):
            raise SpecError(
                "set exactly one of FleetConfig.scenario or FleetConfig.spec"
            )
        if self.access_pattern not in (None, "sequential", "random"):
            raise SpecError(
                f"access_pattern must be sequential|random, got "
                f"{self.access_pattern!r}"
            )
        if self.backend not in _BACKENDS:
            raise SpecError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.shards < 1:
            raise SpecError(f"shards must be >= 1, got {self.shards}")
        if self.workers is not None and self.workers < 1:
            raise SpecError(f"workers must be >= 1, got {self.workers}")
        if self.sessions_per_user is not None and self.sessions_per_user < 1:
            raise SpecError("sessions_per_user must be >= 1")
        if self.profile is not None:
            try:  # resolve eagerly: fail before any worker starts
                get_profile(self.profile)
            except ArrivalError as exc:
                raise SpecError(str(exc)) from None
        if self.window_us is not None and not self.window_us > 0:
            raise SpecError(
                f"window_us must be > 0, got {self.window_us}"
            )
        if self.stream_budget_bytes is not None:
            if self.stream_budget_bytes < 1:
                raise SpecError(
                    f"stream_budget_bytes must be >= 1, got "
                    f"{self.stream_budget_bytes}"
                )
            if self.out_stream is None:
                raise SpecError(
                    "stream_budget_bytes needs out_stream to be set"
                )
        if (self.out_stream is not None and self.shards > 1
                and self.backend not in FAST_BACKENDS):
            raise SpecError(
                "out_stream with shards > 1 needs an engine-free backend "
                f"({FAST_BACKENDS}): the streaming shard merge relies on "
                "user-contiguous artifacts, and the DES interleaves users "
                "on a shared clock"
            )

    @property
    def arrivals_enabled(self) -> bool:
        """Whether this config runs with a temporal load model."""
        return (self.use_arrivals or self.arrival_model is not None
                or self.profile is not None)

    @property
    def n_users(self) -> int:
        """Population size (from the spec when one is given)."""
        return self.spec.n_users if self.spec is not None else self.users

    @property
    def root_seed(self) -> int:
        """Root seed (from the spec when one is given)."""
        return self.spec.seed if self.spec is not None else self.seed

    def effective_workers(self) -> int:
        """Worker process count: ``workers`` capped by shards and cores."""
        if self.workers is not None:
            return min(self.workers, self.shards)
        return min(self.shards, os.cpu_count() or 1)


@dataclass
class ShardOutcome:
    """What one shard sends back to the coordinator."""

    shard_index: int
    shard_seed: int
    user_ids: tuple[int, ...]
    tally: WorkloadTally
    response_us: RunningStats
    simulated_us: float
    wall_s: float
    log: UsageLog | None = None
    metrics: dict | None = None


@dataclass
class FleetResult:
    """Merged outcome of a fleet run."""

    config: FleetConfig
    outcomes: list[ShardOutcome]
    tally: WorkloadTally
    response_us: RunningStats
    wall_s: float
    log: UsageLog | None = None
    plans: tuple[ShardPlan, ...] = field(default=())
    out_stream: str | None = None
    metrics: dict | None = None
    metrics_out: str | None = None

    @property
    def simulated_us(self) -> float:
        """Fleet-level simulated duration: the slowest shard's clock."""
        return max((o.simulated_us for o in self.outcomes), default=0.0)

    def aggregate_kv(self) -> dict[str, int]:
        """The shard-invariant aggregate (bit-for-bit across shard counts)."""
        return self.tally.as_kv()

    def timing_kv(self) -> dict[str, float]:
        """Topology-dependent timing summary (NOT shard-invariant)."""
        summary = self.response_us.summary()
        return {
            "wall clock (s)": self.wall_s,
            "simulated duration (µs)": self.simulated_us,
            "mean response (µs)": summary["mean"],
            "response std (µs)": summary["std"],
            "ops per wall second": (
                self.tally.operations / self.wall_s if self.wall_s > 0 else 0.0
            ),
        }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ShardTask:
    """Fully resolved work order for one shard — no registry lookups left."""

    spec: WorkloadSpec
    plan: ShardPlan
    backend: str
    access_pattern: str
    use_phase_model: bool
    sessions_per_user: int
    collect_ops: bool
    time_limit_us: float | None
    arrival_model: ArrivalModel | None = None
    window_us: float | None = None
    stream_path: str | None = None
    stream_budget_bytes: int = DEFAULT_MEMORY_BUDGET
    stream_metadata: "dict | None" = None
    metrics: bool = False
    progress: bool = False


def _resolve_arrivals(config: FleetConfig,
                      scenario_model: "ArrivalModel | None"):
    """The run's ``(arrival model, window)``, resolved in the coordinator.

    Precedence: an explicit ``config.arrival_model`` wins; otherwise an
    enabled run takes the scenario's model, falling back to
    ``DEFAULT_ARRIVALS``.  A ``config.profile`` name then overrides the
    model's profile.  The window defaults to one hour when arrivals are
    on and no explicit ``window_us`` is given.
    """
    model = config.arrival_model
    if model is None and config.arrivals_enabled:
        model = scenario_model or DEFAULT_ARRIVALS
    if model is not None and config.profile is not None:
        model = model.with_profile(get_profile(config.profile))
    window_us = config.window_us
    if window_us is None and model is not None:
        window_us = HOUR_US
    return model, window_us


def _resolve_run_inputs(config: FleetConfig):
    """Spec + execution options, resolved once in the coordinator."""
    if config.spec is not None:
        spec = config.spec
        pattern = config.access_pattern or "sequential"
        phases = bool(config.use_phase_model)
        sessions = config.sessions_per_user or 1
        scenario_model = None
    else:
        from ..scenarios import get_scenario  # deferred: scenarios import core

        scenario = get_scenario(config.scenario)
        spec = scenario.build(
            config.users, config.seed, total_files=config.total_files
        )
        pattern = config.access_pattern or scenario.access_pattern
        phases = (scenario.use_phase_model if config.use_phase_model is None
                  else config.use_phase_model)
        sessions = config.sessions_per_user or scenario.default_sessions
        scenario_model = scenario.arrival_model
    model, window_us = _resolve_arrivals(config, scenario_model)
    return spec, pattern, phases, sessions, model, window_us


_PROGRESS_QUEUE = None
"""Worker-side progress channel, installed by the pool initializer.

Module-level because pool *tasks* must stay plain picklable data; the
queue rides into each worker once, at fork/spawn time."""


def _init_worker_progress(queue) -> None:
    """Pool initializer: give this worker the coordinator's queue."""
    global _PROGRESS_QUEUE
    _PROGRESS_QUEUE = queue


class _MeterQueue:
    """Queue-shaped adapter driving a ProgressMeter directly (in-process).

    Lets the ``workers == 1`` path reuse the exact worker-side sender
    code: the "queue" is this object, and every put paints the meter.
    """

    def __init__(self, meter: ProgressMeter):
        self.meter = meter

    def put_nowait(self, item) -> None:
        shard, users, ops, _done = item
        self.meter.update_shard(shard, users, ops)


_GENERATOR_CACHE: "list[tuple[WorkloadSpec, WorkloadGenerator]]" = []
"""Per-process generator reuse: at most one ``(spec, generator)`` pair.

Module-level (like ``_PROGRESS_QUEUE``) because pool tasks must stay
plain data; the cache lives for the worker process and is keyed on the
spec *object*, so it only ever hits when one process executes several
shards of the same resolved run."""


def _shard_generator(spec: WorkloadSpec, backend: str) -> WorkloadGenerator:
    """The shard's :class:`WorkloadGenerator`, pooled per process.

    A process that executes several shards of one fleet run receives the
    identical resolved spec in every task; rebuilding the generator per
    shard repeats the GDS tabulation and — on the engine-free backends —
    the whole-population manifest redraw that
    :meth:`~repro.core.generator.WorkloadGenerator.run_simulated`
    memoizes.  Reuse is byte-identical for the engine-free backends:
    they never advance generator-held stream state across runs (the
    manifest is a pure function of the seed, and every user draw comes
    from a fresh ``user-{id}`` fork).  The DES backends *do* consume the
    stateful ``fsc`` stream each time they materialise a store, so they
    always get a fresh generator.
    """
    if backend not in FAST_BACKENDS:
        return WorkloadGenerator(spec)
    if _GENERATOR_CACHE and _GENERATOR_CACHE[0][0] is spec:
        return _GENERATOR_CACHE[0][1]
    generator = WorkloadGenerator(spec)
    _GENERATOR_CACHE[:] = [(spec, generator)]
    return generator


def _run_shard(task: _ShardTask) -> ShardOutcome:
    """Execute one shard (runs inside a worker process or in-process)."""
    plan = task.plan
    started = time.perf_counter()
    observer = None
    if task.metrics or task.progress:
        sender = None
        if task.progress and _PROGRESS_QUEUE is not None:
            sender = QueueProgressSender(plan.shard_index, _PROGRESS_QUEUE)
        observer = RunObserver(progress=sender)
    sink = ShardAccumulator(collect_ops=task.collect_ops,
                            window_us=task.window_us)
    log_sink = sink
    stream_sink = None
    if task.stream_path is not None:
        # Spill this shard's op stream to its own artifact file; the
        # coordinator merges shard files into the run-level artifact.
        # Metadata is run-level (identical across shards) so the merged
        # header is bit-identical to a 1-shard run's.
        stream_sink = StreamFileSink(
            task.stream_path,
            memory_budget_bytes=task.stream_budget_bytes,
            metadata=task.stream_metadata,
            observer=observer,
        )
        log_sink = TeeSink(sink, stream_sink)
    generator = _shard_generator(task.spec, task.backend)
    try:
        result = generator.run_simulated(
            sessions_per_user=task.sessions_per_user,
            backend=task.backend,
            access_pattern=task.access_pattern,
            phase_model_factory=PhaseModel if task.use_phase_model else None,
            time_limit_us=task.time_limit_us,
            user_ids=plan.user_ids,
            log=log_sink,
            arrivals=task.arrival_model,
            observer=observer,
        )
    finally:
        if stream_sink is not None:
            stream_sink.close()
    metrics = None
    if observer is not None:
        observer.metrics.gauge("shard.wall_s").set(
            time.perf_counter() - started)
        if observer.progress is not None:
            observer.progress.finish(
                observer.metrics.counter("users").value,
                observer.metrics.counter("ops").value,
            )
        if task.metrics:
            metrics = observer.snapshot()
    return ShardOutcome(
        shard_index=plan.shard_index,
        shard_seed=plan.shard_seed,
        user_ids=plan.user_ids,
        tally=sink.tally,
        response_us=sink.response_us,
        simulated_us=result.simulated_duration_us,
        wall_s=time.perf_counter() - started,
        log=sink.log,
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


def _pool_context():
    """Prefer fork (fast, inherits sys.path); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _run_shards_inline(tasks: "list[_ShardTask]",
                       meter: "ProgressMeter | None"):
    """Run every shard in this process, painting progress directly."""
    global _PROGRESS_QUEUE
    if meter is None:
        return [_run_shard(task) for task in tasks]
    previous = _PROGRESS_QUEUE
    _PROGRESS_QUEUE = _MeterQueue(meter)
    try:
        return [_run_shard(task) for task in tasks]
    finally:
        _PROGRESS_QUEUE = previous


def _run_shards_pooled(tasks: "list[_ShardTask]", workers: int,
                       meter: "ProgressMeter | None"):
    """Run shards on a worker pool, draining progress while they go."""
    ctx = _pool_context()
    progress_queue = ctx.Queue() if meter is not None else None
    initializer = _init_worker_progress if progress_queue is not None else None
    initargs = (progress_queue,) if progress_queue is not None else ()
    with ctx.Pool(processes=workers, initializer=initializer,
                  initargs=initargs) as pool:
        if meter is None:
            return pool.map(_run_shard, tasks)
        pending = pool.map_async(_run_shard, tasks)
        while True:
            done = pending.ready()
            # Drain whatever the workers sent since the last pass, then
            # block briefly on the queue so the poll loop is not a spin.
            while True:
                try:
                    shard, users, ops, _fin = progress_queue.get(
                        timeout=0.0 if done else 0.2)
                except queue_mod.Empty:
                    break
                meter.update_shard(shard, users, ops)
            if done:
                return pending.get()


def run_fleet(config: FleetConfig) -> FleetResult:
    """Run a sharded fleet and merge the per-shard results.

    Raises :class:`~repro.core.spec.SpecError` for inconsistent configs
    and :class:`~repro.scenarios.ScenarioError` for unknown scenario
    names (resolved eagerly, before any worker starts).
    """
    # Resolve the scenario/spec once, before spawning anything: workers
    # receive the built spec, never a registry name.
    spec, pattern, phases, sessions, model, window_us = _resolve_run_inputs(
        config
    )
    if config.spec is None and spec.n_users != config.users:
        raise SpecError(
            f"scenario {config.scenario!r} built {spec.n_users} users, "
            f"expected {config.users}"
        )
    plans = plan_shards(spec.n_users, config.shards, config.root_seed)
    stream_budget = config.stream_budget_bytes or DEFAULT_MEMORY_BUDGET
    shard_paths: list[str] = []
    stream_metadata = None
    if config.out_stream is not None:
        # Run-level metadata only — anything shard-specific here would
        # make the merged artifact's header differ from a 1-shard run's.
        stream_metadata = {
            "tool": "repro-fleet",
            "scenario": config.scenario or "custom-spec",
            "backend": config.backend,
            "seed": config.root_seed,
            "users": spec.n_users,
            "sessions_per_user": sessions,
            "access_pattern": pattern,
            "phases": phases,
            "arrivals": model is not None,
        }
        shard_paths = (
            [config.out_stream] if config.shards == 1
            else [f"{config.out_stream}.shard{plan.shard_index:04d}"
                  for plan in plans]
        )
    tasks = [
        _ShardTask(
            spec=spec,
            plan=plan,
            backend=config.backend,
            access_pattern=pattern,
            use_phase_model=phases,
            sessions_per_user=sessions,
            collect_ops=config.collect_ops,
            time_limit_us=config.time_limit_us,
            arrival_model=model,
            window_us=window_us,
            stream_path=(shard_paths[plan.shard_index]
                         if shard_paths else None),
            stream_budget_bytes=stream_budget,
            stream_metadata=stream_metadata,
            metrics=config.metrics_out is not None,
            progress=config.progress,
        )
        for plan in plans
    ]
    workers = config.effective_workers()
    meter = None
    if config.progress:
        meter = ProgressMeter(
            total_users=sum(len(p.user_ids) for p in plans),
            label=f"fleet[{config.backend}]",
        )

    started = time.perf_counter()
    try:
        if workers == 1:
            outcomes = _run_shards_inline(tasks, meter)
        else:
            outcomes = _run_shards_pooled(tasks, workers, meter)
        if meter is not None:
            meter.finish()
        if config.out_stream is not None and config.shards > 1:
            # Streaming k-way merge by user id: holds one user's events
            # per shard plus one chunk buffer, never the run.  The
            # result is bit-identical to the artifact a 1-shard run
            # writes (same events, same deterministic chunk boundaries).
            merge_stream_files(config.out_stream, shard_paths,
                               metadata=stream_metadata)
    finally:
        if config.shards > 1:
            for path in shard_paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass
    wall_s = time.perf_counter() - started

    outcomes.sort(key=lambda o: o.shard_index)
    merged_log = None
    if config.collect_ops:
        merged_log = UsageLog.merged(o.log for o in outcomes)
    merged_metrics = None
    if config.metrics_out is not None:
        merged_metrics = merge_snapshots(
            o.metrics for o in outcomes if o.metrics is not None
        )
    result = FleetResult(
        config=config,
        outcomes=outcomes,
        tally=WorkloadTally.merge_all(o.tally for o in outcomes),
        response_us=RunningStats.merge_all(o.response_us for o in outcomes),
        wall_s=wall_s,
        log=merged_log,
        plans=plans,
        out_stream=config.out_stream,
        metrics=merged_metrics,
        metrics_out=config.metrics_out,
    )
    if config.metrics_out is not None:
        manifest = build_manifest(
            merged_metrics,
            seed=config.root_seed,
            backend=config.backend,
            scenario=config.scenario or "custom-spec",
            spec=spec,
            n_users=spec.n_users,
            wall_s=wall_s,
            simulated_us=result.simulated_us,
            extra={
                "shards": config.shards,
                "workers": workers,
                "sessions_per_user": sessions,
                "access_pattern": pattern,
                "phases": phases,
                "arrivals": model is not None,
                "time_limit_us": config.time_limit_us,
                "out_stream": config.out_stream,
            },
        )
        write_manifest(config.metrics_out, manifest)
    return result
