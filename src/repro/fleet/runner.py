"""Multi-process fleet execution.

``run_fleet`` shards a population across worker processes: each shard
rebuilds the workload (same root seed → same FSC layout, same per-user
streams), simulates only its slice of users on its own discrete-event
engine, and ships back an online :class:`~repro.fleet.merge.WorkloadTally`
plus timing.  The coordinator merges shard results in shard order.

Execution model
---------------

* ``shards`` is a **semantic** knob: how many independent simulated
  sites the population is split across.  Each shard has its own engine,
  server and network, so users only contend with users in their shard.
* ``workers`` is a **mechanical** knob: how many OS processes execute
  shards.  ``workers=1`` runs every shard in-process (no multiprocessing
  involved); results are identical either way, which is the property the
  fleet tests pin down.

Workers are handed plain picklable data: the resolved
:class:`~repro.core.spec.WorkloadSpec` (frozen dataclasses of floats),
the execution options, and a :class:`~repro.fleet.sharding.ShardPlan`.
Scenario resolution happens **once, in the coordinator** — so custom
scenarios registered by the calling script work under any
multiprocessing start method, including spawn, where workers re-import
a fresh registry.

Fault tolerance
---------------

Shard execution is supervised (see :mod:`repro.fleet.supervisor`): a
worker that dies, hangs past ``shard_timeout_s``, raises, or hands back
a corrupt stream artifact fails only that shard's *attempt*.  The shard
is retried with exponential backoff up to ``max_retries`` times — and
because shard generation is a pure function of (spec, seed, shard
range), the retry reproduces the lost bytes exactly.  A shard that
exhausts its retries is quarantined: the rest of the fleet completes,
the manifest records the casualties, and ``run_fleet`` raises
:class:`FleetPartialError` (or returns the partial result when
``allow_partial`` is set).

Stream-writing runs keep every per-shard temp under a run-scoped
directory (``<out_stream>.run``) that is swept on *every* exit path;
the final artifact appears at ``out_stream`` only through an atomic
rename, never half-written.  On the engine-free backends the temps
checkpoint at each chunk flush, so a killed run can be continued with
``resume_fleet_config`` / ``fleet run --resume``: completed chunks are
CRC-verified and reused, and only the tail is regenerated — the resumed
artifact is bit-for-bit identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import time
from dataclasses import dataclass, field, replace

from ..core.arrivals import (
    DEFAULT_ARRIVALS,
    HOUR_US,
    ArrivalError,
    ArrivalModel,
    arrival_model_from_jsonable,
    arrival_model_to_jsonable,
    get_profile,
)
from ..core.generator import FAST_BACKENDS, RUN_BACKENDS, WorkloadGenerator
from ..core.oplog import UsageLog
from ..core.spec import SpecError, WorkloadSpec
from ..core.specjson import spec_from_jsonable, spec_to_jsonable
from ..core.streamfile import (
    CHECKPOINT_SUFFIX,
    DEFAULT_MEMORY_BUDGET,
    StreamFileSink,
    TeeSink,
    merge_stream_files,
    resume_stream_sink,
    verify_stream,
)
from ..core.synthesis import PhaseModel
from ..faults import FaultSpec, build_injector
from ..obs import (
    ProgressMeter,
    QueueProgressSender,
    RunObserver,
    build_manifest,
    merge_snapshots,
    spec_fingerprint,
    write_manifest,
)
from ..sim import RunningStats
from .merge import ShardAccumulator, WorkloadTally
from .sharding import ShardPlan, plan_shards
from .supervisor import ShardFailure, ShardSupervisor

__all__ = [
    "FleetConfig",
    "FleetPartialError",
    "ShardOutcome",
    "FleetResult",
    "run_fleet",
    "resume_fleet_config",
]

_BACKENDS = RUN_BACKENDS

RUN_RECORD_NAME = "fleet-run.json"
"""Resume record inside a run directory: the resolved run, as data."""

RUN_RECORD_FORMAT = "repro.fleet-run"
RUN_RECORD_VERSION = 1


class FleetPartialError(RuntimeError):
    """The fleet finished, but one or more shards were quarantined.

    Carries the partial :class:`FleetResult` (completed shards merged,
    manifest written) so callers can inspect what *did* finish.
    """

    def __init__(self, result: "FleetResult"):
        self.result = result
        names = ", ".join(str(s) for s in result.quarantined)
        super().__init__(
            f"fleet run is partial: shard(s) {names} quarantined after "
            f"{result.config.max_retries} retries "
            "(pass allow_partial=True / --allow-partial to accept)"
        )


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet run needs; plain data, safe to pickle.

    Exactly one of ``scenario`` (a name in :mod:`repro.scenarios`) or
    ``spec`` (an explicit :class:`~repro.core.spec.WorkloadSpec`) must be
    set.  With an explicit spec, the population size and seed come from
    the spec itself and ``users``/``seed``/``total_files`` are ignored.
    ``access_pattern`` and ``use_phase_model`` default to the scenario's
    settings (scenario configs) or to ``sequential``/off (explicit-spec
    configs); set them to override either way.

    Temporal load: ``use_arrivals=True`` enables the scenario's
    :class:`~repro.core.arrivals.ArrivalModel` (or the default one);
    ``arrival_model`` supplies an explicit model; ``profile`` names a
    registered load profile and overrides the model's (implying
    arrivals).  With arrivals on, ops are also bucketed into
    ``window_us``-wide time windows (one hour unless set explicitly)
    so the merged tally carries the offered-load curve.  Arrival schedules are per-user
    draws from the root seed, so the curve is shard-count-invariant on
    the engine-free backends.

    Observability: ``metrics_out`` writes a run-manifest JSON artifact
    (merged per-shard metric snapshots, per-stage spans, versions, peak
    RSS) after the run; ``progress`` paints a one-line live status to
    stderr aggregated across shards.  Both ride the
    :mod:`repro.obs` observer, which never touches RNG streams or
    recorded bytes — enabling them cannot change any artifact or tally.

    Robustness: failed shard attempts retry up to ``max_retries`` times
    with ``retry_backoff_s`` exponential backoff; ``shard_timeout_s``
    kills and retries a shard whose heartbeats go silent that long;
    shards still failing are quarantined and surface through
    :class:`FleetPartialError` unless ``allow_partial`` accepts partial
    results.  ``faults`` arms deterministic failures
    (:class:`~repro.faults.FaultSpec`) for tests and chaos runs;
    ``verify_shard_streams`` CRC-walks each shard artifact in the
    coordinator (default: only when faults are armed).  ``resume_dir``
    continues a killed run from its run directory (``keep_run_dir``
    preserves that directory when a run fails so it *can* be resumed).

    Caveat: ``time_limit_us`` truncates each shard at its *own* simulated
    clock, and simulated time depends on per-site queueing — so with a
    time limit the merged aggregate is **not** shard-count-invariant.
    The bit-for-bit guarantee holds only for run-to-completion fleets
    (``time_limit_us=None``).
    """

    scenario: str | None = None
    spec: WorkloadSpec | None = None
    users: int = 100
    shards: int = 1
    workers: int | None = None
    sessions_per_user: int | None = None
    seed: int = 0
    backend: str = "nfs"
    total_files: int | None = None
    collect_ops: bool = False
    time_limit_us: float | None = None
    access_pattern: str | None = None
    use_phase_model: bool | None = None
    use_arrivals: bool = False
    arrival_model: ArrivalModel | None = None
    profile: str | None = None
    window_us: float | None = None
    out_stream: str | None = None
    stream_budget_bytes: int | None = None
    metrics_out: str | None = None
    progress: bool = False
    max_retries: int = 2
    retry_backoff_s: float = 0.25
    shard_timeout_s: float | None = None
    faults: tuple = ()
    resume_dir: str | None = None
    allow_partial: bool = False
    keep_run_dir: bool = False
    verify_shard_streams: bool | None = None

    def __post_init__(self) -> None:
        if (self.scenario is None) == (self.spec is None):
            raise SpecError(
                "set exactly one of FleetConfig.scenario or FleetConfig.spec"
            )
        if self.access_pattern not in (None, "sequential", "random"):
            raise SpecError(
                "access_pattern must be sequential|random, got "
                f"{self.access_pattern!r}"
            )
        if self.backend not in _BACKENDS:
            raise SpecError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.shards < 1:
            raise SpecError(f"shards must be >= 1, got {self.shards}")
        if self.workers is not None and self.workers < 1:
            raise SpecError(f"workers must be >= 1, got {self.workers}")
        if self.sessions_per_user is not None and self.sessions_per_user < 1:
            raise SpecError("sessions_per_user must be >= 1")
        if self.profile is not None:
            try:  # resolve eagerly: fail before any worker starts
                get_profile(self.profile)
            except ArrivalError as exc:
                raise SpecError(str(exc)) from None
        if self.window_us is not None and not self.window_us > 0:
            raise SpecError(
                f"window_us must be > 0, got {self.window_us}"
            )
        if self.stream_budget_bytes is not None:
            if self.stream_budget_bytes < 1:
                raise SpecError(
                    "stream_budget_bytes must be >= 1, got "
                    f"{self.stream_budget_bytes}"
                )
            if self.out_stream is None:
                raise SpecError(
                    "stream_budget_bytes needs out_stream to be set"
                )
        if (self.out_stream is not None and self.shards > 1
                and self.backend not in FAST_BACKENDS):
            raise SpecError(
                "out_stream with shards > 1 needs an engine-free backend "
                f"({FAST_BACKENDS}): the streaming shard merge relies on "
                "user-contiguous artifacts, and the DES interleaves users "
                "on a shared clock"
            )
        if self.max_retries < 0:
            raise SpecError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise SpecError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.shard_timeout_s is not None and not self.shard_timeout_s > 0:
            raise SpecError(
                f"shard_timeout_s must be > 0, got {self.shard_timeout_s}"
            )
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise SpecError(
                    f"faults entries must be FaultSpec, got {fault!r}"
                )
            if fault.shard >= self.shards:
                raise SpecError(
                    f"fault {fault.describe()!r} targets shard "
                    f"{fault.shard}, but the run has {self.shards} shard(s)"
                )
            if fault.needs_stream and self.out_stream is None:
                raise SpecError(
                    f"fault {fault.describe()!r} needs out_stream: it "
                    "fires in the stream spill/artifact path"
                )
        if self.resume_dir is not None:
            if self.out_stream is None:
                raise SpecError("resume_dir needs out_stream to be set")
            if self.backend not in FAST_BACKENDS:
                raise SpecError(
                    "resume needs an engine-free backend "
                    f"({FAST_BACKENDS}): checkpointed chunks are only "
                    "reusable when users are generated contiguously"
                )

    @property
    def arrivals_enabled(self) -> bool:
        """Whether this config runs with a temporal load model."""
        return (self.use_arrivals or self.arrival_model is not None
                or self.profile is not None)

    @property
    def n_users(self) -> int:
        """Population size (from the spec when one is given)."""
        return self.spec.n_users if self.spec is not None else self.users

    @property
    def root_seed(self) -> int:
        """Root seed (from the spec when one is given)."""
        return self.spec.seed if self.spec is not None else self.seed

    @property
    def run_dir(self) -> str | None:
        """Run-scoped temp directory for stream runs (else None)."""
        if self.out_stream is None:
            return None
        return self.out_stream + ".run"

    def effective_workers(self) -> int:
        """Worker process count: ``workers`` capped by shards and cores."""
        if self.workers is not None:
            return min(self.workers, self.shards)
        return min(self.shards, os.cpu_count() or 1)


@dataclass
class ShardOutcome:
    """What one shard sends back to the coordinator."""

    shard_index: int
    shard_seed: int
    user_ids: tuple[int, ...]
    tally: WorkloadTally
    response_us: RunningStats
    simulated_us: float
    wall_s: float
    log: UsageLog | None = None
    metrics: dict | None = None
    attempt: int = 1
    reused_chunks: int = 0
    reused_rows: int = 0


@dataclass
class FleetResult:
    """Merged outcome of a fleet run."""

    config: FleetConfig
    outcomes: list[ShardOutcome]
    tally: WorkloadTally
    response_us: RunningStats
    wall_s: float
    log: UsageLog | None = None
    plans: tuple[ShardPlan, ...] = field(default=())
    out_stream: str | None = None
    metrics: dict | None = None
    metrics_out: str | None = None
    quarantined: tuple[int, ...] = ()
    failures: tuple[ShardFailure, ...] = ()
    retries: int = 0
    timeouts: int = 0
    reused_chunks: int = 0
    reused_rows: int = 0
    resumed: bool = False

    @property
    def partial(self) -> bool:
        """Whether any shard was quarantined (result covers the rest)."""
        return bool(self.quarantined)

    @property
    def simulated_us(self) -> float:
        """Fleet-level simulated duration: the slowest shard's clock."""
        return max((o.simulated_us for o in self.outcomes), default=0.0)

    def aggregate_kv(self) -> dict[str, int]:
        """The shard-invariant aggregate (bit-for-bit across shard counts)."""
        return self.tally.as_kv()

    def timing_kv(self) -> dict[str, float]:
        """Topology-dependent timing summary (NOT shard-invariant)."""
        summary = self.response_us.summary()
        return {
            "wall clock (s)": self.wall_s,
            "simulated duration (µs)": self.simulated_us,
            "mean response (µs)": summary["mean"],
            "response std (µs)": summary["std"],
            "ops per wall second": (
                self.tally.operations / self.wall_s if self.wall_s > 0 else 0.0
            ),
        }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ShardTask:
    """Fully resolved work order for one shard — no registry lookups left."""

    spec: WorkloadSpec
    plan: ShardPlan
    backend: str
    access_pattern: str
    use_phase_model: bool
    sessions_per_user: int
    collect_ops: bool
    time_limit_us: float | None
    arrival_model: ArrivalModel | None = None
    window_us: float | None = None
    stream_path: str | None = None
    stream_budget_bytes: int = DEFAULT_MEMORY_BUDGET
    stream_metadata: "dict | None" = None
    metrics: bool = False
    progress: bool = False
    attempt: int = 1
    resume: bool = False
    checkpoint: bool = False
    heartbeat: bool = False
    faults: tuple = ()


def _resolve_arrivals(config: FleetConfig,
                      scenario_model: "ArrivalModel | None"):
    """The run's ``(arrival model, window)``, resolved in the coordinator.

    Precedence: an explicit ``config.arrival_model`` wins; otherwise an
    enabled run takes the scenario's model, falling back to
    ``DEFAULT_ARRIVALS``.  A ``config.profile`` name then overrides the
    model's profile.  The window defaults to one hour when arrivals are
    on and no explicit ``window_us`` is given.
    """
    model = config.arrival_model
    if model is None and config.arrivals_enabled:
        model = scenario_model or DEFAULT_ARRIVALS
    if model is not None and config.profile is not None:
        model = model.with_profile(get_profile(config.profile))
    window_us = config.window_us
    if window_us is None and model is not None:
        window_us = HOUR_US
    return model, window_us


def _resolve_run_inputs(config: FleetConfig):
    """Spec + execution options, resolved once in the coordinator."""
    if config.spec is not None:
        spec = config.spec
        pattern = config.access_pattern or "sequential"
        phases = bool(config.use_phase_model)
        sessions = config.sessions_per_user or 1
        scenario_model = None
    else:
        from ..scenarios import get_scenario  # deferred: scenarios import core

        scenario = get_scenario(config.scenario)
        spec = scenario.build(
            config.users, config.seed, total_files=config.total_files
        )
        pattern = config.access_pattern or scenario.access_pattern
        phases = (scenario.use_phase_model if config.use_phase_model is None
                  else config.use_phase_model)
        sessions = config.sessions_per_user or scenario.default_sessions
        scenario_model = scenario.arrival_model
    model, window_us = _resolve_arrivals(config, scenario_model)
    return spec, pattern, phases, sessions, model, window_us


_PROGRESS_QUEUE = None
"""Worker-side progress channel, installed by the pool initializer.

Module-level because pool *tasks* must stay plain picklable data; the
queue rides into each worker once, at fork/spawn time."""


def _init_worker_progress(queue) -> None:
    """Pool initializer: give this worker the coordinator's queue."""
    global _PROGRESS_QUEUE
    _PROGRESS_QUEUE = queue


class _MeterQueue:
    """Queue-shaped adapter driving a ProgressMeter directly (in-process).

    Lets the ``workers == 1`` path reuse the exact worker-side sender
    code: the "queue" is this object, and every put paints the meter.
    """

    def __init__(self, meter: ProgressMeter):
        self.meter = meter

    def put_nowait(self, item) -> None:
        shard, users, ops, _done = item
        self.meter.update_shard(shard, users, ops)


class _SkipSink:
    """Drop the first N op rows / M session records, forward the rest.

    The resume path regenerates the boundary user from scratch but has
    that user's prefix already salvaged on disk — the regenerated
    stream's first ``skip_rows`` rows and ``skip_sessions`` session
    records are exactly that prefix (generation is deterministic), so
    dropping them makes the continued stream pick up at the crash point.
    """

    def __init__(self, inner, skip_rows: int, skip_sessions: int):
        self.inner = inner
        self._rows = int(skip_rows)
        self._sessions = int(skip_sessions)
        self._inner_batch = getattr(inner, "record_batch", None)

    def record_op(self, record) -> None:
        if self._rows > 0:
            self._rows -= 1
            return
        self.inner.record_op(record)

    def record_batch(self, batch) -> None:
        if self._rows > 0:
            n = len(batch)
            if n <= self._rows:
                self._rows -= n
                return
            batch = batch.select(slice(self._rows, n))
            self._rows = 0
        if self._inner_batch is not None:
            self._inner_batch(batch)
        else:
            for record in batch.to_records():
                self.inner.record_op(record)

    def record_session(self, record) -> None:
        if self._sessions > 0:
            self._sessions -= 1
            return
        self.inner.record_session(record)


_GENERATOR_CACHE: "list[tuple[WorkloadSpec, WorkloadGenerator]]" = []
"""Per-process generator reuse: at most one ``(spec, generator)`` pair.

Module-level (like ``_PROGRESS_QUEUE``) because pool tasks must stay
plain data; the cache lives for the worker process and is keyed on the
spec *object*, so it only ever hits when one process executes several
shards of the same resolved run."""


def _shard_generator(spec: WorkloadSpec, backend: str) -> WorkloadGenerator:
    """The shard's :class:`WorkloadGenerator`, pooled per process.

    A process that executes several shards of one fleet run receives the
    identical resolved spec in every task; rebuilding the generator per
    shard repeats the GDS tabulation and — on the engine-free backends —
    the whole-population manifest redraw that
    :meth:`~repro.core.generator.WorkloadGenerator.run_simulated`
    memoizes.  Reuse is byte-identical for the engine-free backends:
    they never advance generator-held stream state across runs (the
    manifest is a pure function of the seed, and every user draw comes
    from a fresh ``user-{id}`` fork).  The DES backends *do* consume the
    stateful ``fsc`` stream each time they materialise a store, so they
    always get a fresh generator.
    """
    if backend not in FAST_BACKENDS:
        return WorkloadGenerator(spec)
    if _GENERATOR_CACHE and _GENERATOR_CACHE[0][0] is spec:
        return _GENERATOR_CACHE[0][1]
    generator = WorkloadGenerator(spec)
    _GENERATOR_CACHE[:] = [(spec, generator)]
    return generator


def _run_shard(task: _ShardTask) -> ShardOutcome:
    """Execute one shard (runs inside a worker process or in-process)."""
    plan = task.plan
    started = time.perf_counter()
    injector = build_injector(task.faults, plan.shard_index, task.attempt)
    observer = None
    if task.metrics or task.progress or task.heartbeat:
        sender = None
        if ((task.progress or task.heartbeat)
                and _PROGRESS_QUEUE is not None):
            sender = QueueProgressSender(plan.shard_index, _PROGRESS_QUEUE)
        observer = RunObserver(progress=sender)
    sink = ShardAccumulator(collect_ops=task.collect_ops,
                            window_us=task.window_us)
    log_sink = sink
    stream_sink = None
    salvaged = None
    flush_hook = injector.spill_hook if injector is not None else None
    if task.stream_path is not None:
        # Spill this shard's op stream to its own artifact file; the
        # coordinator merges shard files into the run-level artifact.
        # Metadata is run-level (identical across shards) so the merged
        # header is bit-identical to a 1-shard run's.
        if task.resume:
            stream_sink, salvaged = resume_stream_sink(
                task.stream_path,
                memory_budget_bytes=task.stream_budget_bytes,
                metadata=task.stream_metadata,
                observer=observer,
                checkpoint=task.checkpoint,
                flush_hook=flush_hook,
            )
        else:
            stream_sink = StreamFileSink(
                task.stream_path,
                memory_budget_bytes=task.stream_budget_bytes,
                metadata=task.stream_metadata,
                observer=observer,
                checkpoint=task.checkpoint,
                flush_hook=flush_hook,
            )
        if stream_sink is not None:
            log_sink = TeeSink(sink, stream_sink)
    prefix = None
    if salvaged is not None:
        # The salvaged chunks are already on disk — replay them into the
        # accumulator only.  The tally is an order-invariant exact sum,
        # so feeding the prefix first and the regenerated tail second
        # reproduces the uninterrupted aggregate exactly.
        prefix = salvaged.replay(sink)
    simulated_us = prefix.max_end_us if prefix is not None else 0.0
    if task.stream_path is not None and task.resume and stream_sink is None:
        # The artifact was already complete: nothing to regenerate.
        pass
    else:
        remaining = plan.user_ids
        if prefix is not None and prefix.last_user is not None:
            # Everything the crash lost belongs to the last salvaged
            # user or later (user-contiguous artifact + flush rule), so
            # regenerate from that boundary user and skip its salvaged
            # prefix.
            remaining = tuple(u for u in plan.user_ids
                              if u >= prefix.last_user)
            log_sink = _SkipSink(log_sink, prefix.last_user_rows,
                                 prefix.last_user_sessions)
        if injector is not None:
            log_sink = injector.wrap_sink(log_sink)
        generator = _shard_generator(task.spec, task.backend)
        try:
            result = generator.run_simulated(
                sessions_per_user=task.sessions_per_user,
                backend=task.backend,
                access_pattern=task.access_pattern,
                phase_model_factory=(PhaseModel if task.use_phase_model
                                     else None),
                time_limit_us=task.time_limit_us,
                user_ids=remaining,
                log=log_sink,
                arrivals=task.arrival_model,
                observer=observer,
            )
            if stream_sink is not None:
                stream_sink.close()
        except BaseException:
            if stream_sink is not None:
                # Crash semantics: leave whatever chunks are durable for
                # salvage, but never write a footer over a partial run.
                stream_sink.abort()
            raise
        simulated_us = max(simulated_us, result.simulated_duration_us)
    if injector is not None and task.stream_path is not None:
        injector.corrupt_artifact(task.stream_path)
    metrics = None
    if observer is not None:
        observer.metrics.gauge("shard.wall_s").set(
            time.perf_counter() - started)
        if observer.progress is not None:
            observer.progress.finish(
                observer.metrics.counter("users").value,
                observer.metrics.counter("ops").value,
            )
        if task.metrics:
            metrics = observer.snapshot()
    return ShardOutcome(
        shard_index=plan.shard_index,
        shard_seed=plan.shard_seed,
        user_ids=plan.user_ids,
        tally=sink.tally,
        response_us=sink.response_us,
        simulated_us=simulated_us,
        wall_s=time.perf_counter() - started,
        log=sink.log,
        metrics=metrics,
        attempt=task.attempt,
        reused_chunks=len(salvaged.index) if salvaged is not None else 0,
        reused_rows=salvaged.rows if salvaged is not None else 0,
    )


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


def _pool_context():
    """Prefer fork (fast, inherits sys.path); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _ShardCorrupt(RuntimeError):
    """Inline-path marker: a shard's artifact failed verification."""


def _verify_outcome(task: _ShardTask, outcome) -> str | None:
    """Coordinator-side acceptance check: CRC-walk the shard artifact."""
    del outcome
    if task.stream_path is None or not os.path.exists(task.stream_path):
        return None
    report = verify_stream(task.stream_path)
    if report.ok:
        return None
    # A condemned artifact must not survive: it carries a footer, so a
    # resumed retry would salvage it as "complete" and re-serve the
    # corruption instead of regenerating.
    for stale in (task.stream_path,
                  task.stream_path + CHECKPOINT_SUFFIX):
        try:
            os.unlink(stale)
        except OSError:
            pass
    return "; ".join(report.errors[:3]) or "stream artifact corrupt"


def _backoff_delay(backoff_s: float, attempt: int) -> float:
    """Backoff before retry attempt ``attempt`` (2, 3, ...)."""
    if attempt <= 1 or backoff_s <= 0.0:
        return 0.0
    return min(backoff_s * (2.0 ** (attempt - 2)), 30.0)


def _run_shards_inline(tasks: "list[_ShardTask]",
                       meter: "ProgressMeter | None", *,
                       max_retries: int = 0, backoff_s: float = 0.0,
                       retask=None, verify=None):
    """Run every shard in this process, with the same retry semantics.

    Covers the ``workers == 1`` path (including catchable injected
    faults — ENOSPC, errors, bitflips); faults that kill or hang a
    process route through the supervisor instead.  Returns the same
    ``(outcomes, failures, quarantined, retries, recovery_s)`` shape.
    """
    global _PROGRESS_QUEUE
    previous = _PROGRESS_QUEUE
    if meter is not None:
        _PROGRESS_QUEUE = _MeterQueue(meter)
    outcomes = []
    failures: list[ShardFailure] = []
    quarantined: list[int] = []
    retries = 0
    recovery_s = 0.0
    try:
        for task in tasks:
            shard = task.plan.shard_index
            attempt = 1
            while True:
                current = retask(task, attempt) if retask is not None \
                    else task
                try:
                    outcome = _run_shard(current)
                    if verify is not None:
                        detail = verify(current, outcome)
                        if detail is not None:
                            raise _ShardCorrupt(detail)
                except Exception as exc:
                    reason = ("corrupt" if isinstance(exc, _ShardCorrupt)
                              else "error")
                    failures.append(ShardFailure(
                        shard_index=shard, attempt=attempt, reason=reason,
                        detail=f"{type(exc).__name__}: {exc}"))
                    if attempt > max_retries:
                        quarantined.append(shard)
                        break
                    retries += 1
                    delay = _backoff_delay(backoff_s, attempt + 1)
                    recovery_s += delay
                    if delay:
                        time.sleep(delay)
                    attempt += 1
                    continue
                outcomes.append(outcome)
                break
    finally:
        _PROGRESS_QUEUE = previous
    return outcomes, failures, quarantined, retries, recovery_s


# ---------------------------------------------------------------------------
# Run records (checkpoint/resume)
# ---------------------------------------------------------------------------


def _build_run_record(config: FleetConfig, spec, pattern, phases, sessions,
                      model, window_us, stream_budget,
                      stream_metadata) -> dict:
    """The resolved run as plain data — everything a resume must match."""
    return {
        "format": RUN_RECORD_FORMAT,
        "version": RUN_RECORD_VERSION,
        "spec": spec_to_jsonable(spec),
        "spec_sha256": spec_fingerprint(spec),
        "scenario": config.scenario,
        "seed": config.root_seed,
        "users": spec.n_users,
        "shards": config.shards,
        "backend": config.backend,
        "access_pattern": pattern,
        "use_phase_model": phases,
        "sessions_per_user": sessions,
        "arrival_model": (arrival_model_to_jsonable(model)
                          if model is not None else None),
        "window_us": window_us,
        "collect_ops": config.collect_ops,
        "time_limit_us": config.time_limit_us,
        "out_stream": os.path.abspath(config.out_stream),
        "stream_budget_bytes": stream_budget,
        "stream_metadata": stream_metadata,
    }


def _load_run_record(run_dir: str) -> dict:
    path = os.path.join(run_dir, RUN_RECORD_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SpecError(
            f"cannot resume from {run_dir!r}: no readable run record "
            f"({exc})"
        ) from None
    if record.get("format") != RUN_RECORD_FORMAT:
        raise SpecError(
            f"{path!r} is not a fleet run record "
            f"(format {record.get('format')!r})"
        )
    if int(record.get("version", 0)) > RUN_RECORD_VERSION:
        raise SpecError(
            f"{path!r} was written by a newer version "
            f"({record.get('version')})"
        )
    return record


def _validate_resume(record: dict, config: FleetConfig, spec, pattern,
                     phases, sessions, model, window_us,
                     stream_budget) -> None:
    """Resuming must describe byte-for-byte the run that was recorded."""
    expected = {
        "spec_sha256": spec_fingerprint(spec),
        "seed": config.root_seed,
        "shards": config.shards,
        "backend": config.backend,
        "access_pattern": pattern,
        "use_phase_model": phases,
        "sessions_per_user": sessions,
        "arrival_model": (arrival_model_to_jsonable(model)
                          if model is not None else None),
        "window_us": window_us,
        "time_limit_us": config.time_limit_us,
        "stream_budget_bytes": stream_budget,
    }
    for key, want in expected.items():
        have = record.get(key)
        if have != want:
            raise SpecError(
                f"cannot resume: recorded {key} {have!r} does not match "
                f"this config's {want!r} — a resumed run must regenerate "
                "the exact same bytes"
            )


def resume_fleet_config(run_dir: str, *, workers: int | None = None,
                        progress: bool = False,
                        metrics_out: str | None = None,
                        max_retries: int = 2,
                        retry_backoff_s: float = 0.25,
                        shard_timeout_s: float | None = None,
                        allow_partial: bool = False,
                        keep_run_dir: bool = True,
                        faults: tuple = ()) -> FleetConfig:
    """Rebuild the :class:`FleetConfig` for ``fleet run --resume <dir>``.

    Everything that shapes the artifact's bytes (spec, seed, shards,
    backend, budget, execution options) comes from the run record and
    cannot be overridden; only mechanical knobs (workers, progress,
    retry policy, output of the manifest) are parameters.
    ``keep_run_dir`` defaults to True so a resume that fails again can
    itself be resumed.
    """
    record = _load_run_record(run_dir)
    spec = spec_from_jsonable(record["spec"])
    model = (arrival_model_from_jsonable(record["arrival_model"])
             if record.get("arrival_model") is not None else None)
    return FleetConfig(
        spec=spec,
        shards=int(record["shards"]),
        workers=workers,
        sessions_per_user=int(record["sessions_per_user"]),
        backend=record["backend"],
        collect_ops=bool(record.get("collect_ops", False)),
        time_limit_us=record.get("time_limit_us"),
        access_pattern=record["access_pattern"],
        use_phase_model=bool(record["use_phase_model"]),
        arrival_model=model,
        window_us=record.get("window_us"),
        out_stream=record["out_stream"],
        stream_budget_bytes=int(record["stream_budget_bytes"]),
        metrics_out=metrics_out,
        progress=progress,
        max_retries=max_retries,
        retry_backoff_s=retry_backoff_s,
        shard_timeout_s=shard_timeout_s,
        faults=tuple(faults),
        resume_dir=run_dir,
        allow_partial=allow_partial,
        keep_run_dir=keep_run_dir,
    )


# ---------------------------------------------------------------------------
# The fleet run
# ---------------------------------------------------------------------------


def run_fleet(config: FleetConfig) -> FleetResult:
    """Run a sharded fleet under supervision and merge per-shard results.

    Raises :class:`~repro.core.spec.SpecError` for inconsistent configs,
    :class:`~repro.scenarios.ScenarioError` for unknown scenario names
    (both resolved eagerly, before any worker starts), and
    :class:`FleetPartialError` when shards were quarantined and
    ``allow_partial`` is off — the partial result (with its manifest
    already written) rides on the exception.
    """
    # Resolve the scenario/spec once, before spawning anything: workers
    # receive the built spec, never a registry name.
    spec, pattern, phases, sessions, model, window_us = _resolve_run_inputs(
        config
    )
    if config.spec is None and spec.n_users != config.users:
        raise SpecError(
            f"scenario {config.scenario!r} built {spec.n_users} users, "
            f"expected {config.users}"
        )
    plans = plan_shards(spec.n_users, config.shards, config.root_seed)
    workers = config.effective_workers()
    stream_budget = config.stream_budget_bytes or DEFAULT_MEMORY_BUDGET
    resumable = (config.out_stream is not None
                 and config.backend in FAST_BACKENDS)
    run_dir = config.run_dir
    shard_paths: list[str] = []
    stream_metadata = None
    resuming = False
    if config.out_stream is not None:
        if config.resume_dir is not None:
            if (os.path.abspath(config.resume_dir)
                    != os.path.abspath(run_dir)):
                raise SpecError(
                    f"resume_dir {config.resume_dir!r} does not belong to "
                    f"out_stream {config.out_stream!r} (expected "
                    f"{run_dir!r})"
                )
            record = _load_run_record(run_dir)
            _validate_resume(record, config, spec, pattern, phases,
                             sessions, model, window_us, stream_budget)
            # The recorded metadata is authoritative: headers of resumed
            # shard temps must match it byte for byte.
            stream_metadata = record["stream_metadata"]
            resuming = True
        else:
            # Run-level metadata only — anything shard-specific here
            # would make the merged artifact's header differ from a
            # 1-shard run's.
            stream_metadata = {
                "tool": "repro-fleet",
                "scenario": config.scenario or "custom-spec",
                "backend": config.backend,
                "seed": config.root_seed,
                "users": spec.n_users,
                "sessions_per_user": sessions,
                "access_pattern": pattern,
                "phases": phases,
                "arrivals": model is not None,
            }
            if os.path.isdir(run_dir):
                shutil.rmtree(run_dir)  # stale leftovers from a dead run
            os.makedirs(run_dir, exist_ok=True)
            record = _build_run_record(config, spec, pattern, phases,
                                       sessions, model, window_us,
                                       stream_budget, stream_metadata)
            with open(os.path.join(run_dir, RUN_RECORD_NAME), "w",
                      encoding="utf-8") as fh:
                json.dump(record, fh, indent=2, sort_keys=True)
                fh.write("\n")
        shard_paths = [
            os.path.join(run_dir, f"shard{plan.shard_index:04d}.opstream")
            for plan in plans
        ]
    tasks = [
        _ShardTask(
            spec=spec,
            plan=plan,
            backend=config.backend,
            access_pattern=pattern,
            use_phase_model=phases,
            sessions_per_user=sessions,
            collect_ops=config.collect_ops,
            time_limit_us=config.time_limit_us,
            arrival_model=model,
            window_us=window_us,
            stream_path=(shard_paths[plan.shard_index]
                         if shard_paths else None),
            stream_budget_bytes=stream_budget,
            stream_metadata=stream_metadata,
            metrics=config.metrics_out is not None,
            progress=config.progress,
            resume=resuming,
            checkpoint=resumable,
            heartbeat=config.shard_timeout_s is not None,
            faults=config.faults,
        )
        for plan in plans
    ]
    meter = None
    if config.progress:
        meter = ProgressMeter(
            total_users=sum(len(p.user_ids) for p in plans),
            label=f"fleet[{config.backend}]",
        )

    def _retask(task: _ShardTask, attempt: int) -> _ShardTask:
        """Stamp the attempt; retries of resumable shards salvage."""
        return replace(
            task,
            attempt=attempt,
            resume=task.resume or (attempt > 1 and task.checkpoint),
        )

    verify_streams = config.verify_shard_streams
    if verify_streams is None:
        verify_streams = bool(config.faults)
    verifier = (_verify_outcome
                if verify_streams and config.out_stream is not None else None)
    needs_isolation = any(f.needs_isolation for f in config.faults)
    supervised = (workers > 1 or needs_isolation
                  or config.shard_timeout_s is not None)

    started = time.perf_counter()
    complete = False
    try:
        timeouts = 0
        if not supervised:
            outcomes, failures, quarantined, retries, recovery_s = \
                _run_shards_inline(
                    tasks, meter, max_retries=config.max_retries,
                    backoff_s=config.retry_backoff_s, retask=_retask,
                    verify=verifier,
                )
        else:
            supervisor = ShardSupervisor(
                tasks,
                ctx=_pool_context(),
                run_shard=_run_shard,
                workers=workers,
                max_retries=config.max_retries,
                backoff_s=config.retry_backoff_s,
                timeout_s=config.shard_timeout_s,
                meter=meter,
                verify=verifier,
                retask=_retask,
                initializer=_init_worker_progress,
            )
            report = supervisor.run()
            outcomes = report.outcomes
            failures = report.failures
            quarantined = report.quarantined
            retries = report.retries
            timeouts = report.timeouts
            recovery_s = report.recovery_wall_s
        if meter is not None:
            meter.finish()
        if config.out_stream is not None and (
                not quarantined or config.allow_partial):
            done_paths = [shard_paths[o.shard_index]
                          for o in sorted(outcomes,
                                          key=lambda o: o.shard_index)]
            if done_paths:
                publish_metadata = stream_metadata
                if quarantined:
                    # A partial artifact must say so in its own header.
                    publish_metadata = dict(stream_metadata)
                    publish_metadata["partial"] = True
                    publish_metadata["quarantined_shards"] = list(quarantined)
                if len(shard_paths) == 1 and not quarantined:
                    os.replace(done_paths[0], config.out_stream)
                else:
                    # Streaming k-way merge by user id: holds one user's
                    # events per shard plus one chunk buffer, never the
                    # run.  The result is bit-identical to the artifact
                    # a 1-shard run writes (same events, same
                    # deterministic chunk boundaries); publication is an
                    # atomic rename, so out_stream never holds a
                    # half-written file.
                    merged_tmp = os.path.join(run_dir, "merged.opstream")
                    merge_stream_files(merged_tmp, done_paths,
                                       metadata=publish_metadata)
                    os.replace(merged_tmp, config.out_stream)
        complete = not quarantined
    finally:
        # Satellite of the supervision work: per-shard temps live in the
        # run directory and are swept on *every* exit path — success,
        # worker crash, merge failure, KeyboardInterrupt — except when
        # the caller asked to keep a failed run around to resume it.
        if run_dir is not None and not (config.keep_run_dir
                                        and not complete):
            shutil.rmtree(run_dir, ignore_errors=True)
    wall_s = time.perf_counter() - started

    outcomes.sort(key=lambda o: o.shard_index)
    merged_log = None
    if config.collect_ops:
        merged_log = UsageLog.merged(o.log for o in outcomes)
    reused_chunks = sum(o.reused_chunks for o in outcomes)
    reused_rows = sum(o.reused_rows for o in outcomes)
    merged_metrics = None
    if config.metrics_out is not None:
        parts = [o.metrics for o in outcomes if o.metrics is not None]
        # The coordinator contributes the recovery telemetry as one more
        # snapshot part; merge_snapshots sums it like any shard's.
        parts.append({
            "counters": {
                "fleet.retries": retries,
                "fleet.timeouts": timeouts,
                "fleet.quarantined_shards": len(quarantined),
                "fleet.resume.chunks_reused": reused_chunks,
                "fleet.resume.rows_reused": reused_rows,
            },
            "stages": {
                "recovery": {
                    "wall_s": recovery_s, "cpu_s": 0.0,
                    "calls": int(retries), "rows": 0, "bytes": 0,
                },
            },
        })
        merged_metrics = merge_snapshots(parts)
    result = FleetResult(
        config=config,
        outcomes=outcomes,
        tally=WorkloadTally.merge_all(o.tally for o in outcomes),
        response_us=RunningStats.merge_all(o.response_us for o in outcomes),
        wall_s=wall_s,
        log=merged_log,
        plans=plans,
        out_stream=(config.out_stream if not quarantined
                    or config.allow_partial else None),
        metrics=merged_metrics,
        metrics_out=config.metrics_out,
        quarantined=tuple(quarantined),
        failures=tuple(failures),
        retries=retries,
        timeouts=timeouts,
        reused_chunks=reused_chunks,
        reused_rows=reused_rows,
        resumed=resuming,
    )
    if config.metrics_out is not None:
        manifest = build_manifest(
            merged_metrics,
            seed=config.root_seed,
            backend=config.backend,
            scenario=config.scenario or "custom-spec",
            spec=spec,
            n_users=spec.n_users,
            wall_s=wall_s,
            simulated_us=result.simulated_us,
            extra={
                "shards": config.shards,
                "workers": workers,
                "sessions_per_user": sessions,
                "access_pattern": pattern,
                "phases": phases,
                "arrivals": model is not None,
                "time_limit_us": config.time_limit_us,
                "out_stream": config.out_stream,
                "status": "partial" if quarantined else "complete",
                "quarantined_shards": list(quarantined),
                "retries": retries,
                "timeouts": timeouts,
                "max_retries": config.max_retries,
                "shard_timeout_s": config.shard_timeout_s,
                "resumed": resuming,
                "resume_chunks_reused": reused_chunks,
            },
        )
        write_manifest(config.metrics_out, manifest)
    if quarantined and not config.allow_partial:
        raise FleetPartialError(result)
    return result
