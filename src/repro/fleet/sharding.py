"""Shard planning: who runs where, with which seeds.

A fleet run splits a population of ``users`` virtual users into
``shards`` independent simulated sites.  The plan is pure data computed
up front in the coordinating process:

* user ids are dealt round-robin
  (:func:`repro.core.spec.partition_user_ids`), so every shard gets a
  representative slice of the user-type mix; with more shards than
  users the surplus shards are empty (zero users, zero tally) and merge
  harmlessly;
* every shard gets a *derived* seed spawned from the root seed via
  :meth:`repro.distributions.RandomStreams.spawn_seed` — shard-local
  randomness (e.g. future fault injection, arrival jitter) must draw
  from this family, **never** from the root streams, so that adding
  shard-local draws can never perturb the workload content;
* the workload spec itself is always built from the **root** seed inside
  each worker, because user streams and the FSC layout must be identical
  across all shards for the merged tally to match the single-process run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.spec import partition_user_ids
from ..distributions import RandomStreams

__all__ = ["ShardPlan", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """One shard's identity: index, user slice, derived seed."""

    shard_index: int
    n_shards: int
    user_ids: tuple[int, ...]
    root_seed: int
    shard_seed: int

    @property
    def n_users(self) -> int:
        """Users simulated by this shard."""
        return len(self.user_ids)


def plan_shards(n_users: int, n_shards: int, seed: int) -> tuple[ShardPlan, ...]:
    """Compute the full fleet plan for a population and shard count."""
    streams = RandomStreams(seed)
    slices = partition_user_ids(n_users, n_shards)
    return tuple(
        ShardPlan(
            shard_index=index,
            n_shards=n_shards,
            user_ids=user_ids,
            root_seed=seed,
            shard_seed=streams.spawn_seed(f"shard-{index}"),
        )
        for index, user_ids in enumerate(slices)
    )
