"""Shard-result aggregation: what merges exactly, and what cannot.

A fleet run produces one result per shard.  Two kinds of quantity come
back:

* **Workload content** — how many sessions ran, which system calls were
  issued, how many bytes moved, per category and per user type.  These
  are integer counts determined solely by ``(root seed, user id)`` (see
  :class:`repro.core.synthesis.SessionGenerator`'s determinism contract), so
  summing them across shards reproduces the single-process totals
  **bit-for-bit** for any shard count.
* **Timing** — response times and simulated duration.  Each shard is an
  independent simulated site (its own engine, server and network), so
  queueing contention — and therefore timing — legitimately depends on
  the shard topology.  Timing is merged for reporting but is *not* part
  of the invariant aggregate.

:class:`WorkloadTally` accumulates the first kind online;
:class:`ShardAccumulator` is the :class:`~repro.core.oplog.OpSink` a
shard records into, optionally retaining the full :class:`UsageLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..core.opbatch import KIND_READ, KIND_WRITE, OP_KIND_NAMES, OpBatch
from ..core.oplog import OpRecord, SessionRecord, UsageLog
from ..sim import RunningStats

__all__ = ["WorkloadTally", "ShardAccumulator"]

_DATA_OPS = ("read", "write")


@dataclass(eq=True)
class WorkloadTally:
    """Online, order-invariant tally of a run's workload content.

    Every field is an exact integer count (or a dict of them), so
    equality between two tallies is bitwise, and merging is plain
    addition — associative and commutative, hence independent of shard
    count and completion order.

    ``window_us`` (optional) turns on temporal bucketing: every op also
    counts into ``ops_by_window[int(start_us // window_us)]``, the
    offered-load curve of the run.  On the engine-free backends op start
    clocks are per-user and shard-independent, so the windowed counts
    share the shard-invariance guarantee; on the DES they depend on
    per-site queueing, like all timing.
    """

    sessions: int = 0
    operations: int = 0
    ops_by_kind: dict[str, int] = field(default_factory=dict)
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_by_category: dict[str, int] = field(default_factory=dict)
    files_referenced: int = 0
    file_bytes_referenced: int = 0
    sessions_by_type: dict[str, int] = field(default_factory=dict)
    window_us: float | None = None
    ops_by_window: dict[int, int] = field(default_factory=dict)

    # -- OpSink-shaped recording ---------------------------------------------

    def record_op(self, record: OpRecord) -> None:
        """Fold one executed system call into the tally."""
        self.operations += 1
        kind = record.op
        self.ops_by_kind[kind] = self.ops_by_kind.get(kind, 0) + 1
        if kind == "read":
            self.bytes_read += record.size
        elif kind == "write":
            self.bytes_written += record.size
        if kind in _DATA_OPS and record.category_key:
            key = record.category_key
            self.bytes_by_category[key] = (
                self.bytes_by_category.get(key, 0) + record.size
            )
        if self.window_us is not None:
            bucket = int(record.start_us // self.window_us)
            self.ops_by_window[bucket] = (
                self.ops_by_window.get(bucket, 0) + 1
            )

    def record_session(self, record: SessionRecord) -> None:
        """Fold one login session's summary into the tally."""
        self.sessions += 1
        self.files_referenced += record.files_referenced
        self.file_bytes_referenced += record.file_bytes_referenced
        self.sessions_by_type[record.user_type] = (
            self.sessions_by_type.get(record.user_type, 0) + 1
        )

    def record_batch(self, batch: OpBatch) -> None:
        """Fold a columnar batch — ``np.bincount`` over the kind and
        category code columns instead of one dict update per op.

        Exact-integer equivalent of calling :meth:`record_op` on every
        row (including the quirk that a data op *creates* its category
        key even when it moves zero bytes), which is what keeps columnar
        and scalar tallies bit-for-bit equal.
        """
        n = len(batch)
        if n == 0:
            return
        self.operations += n
        kinds = batch.kinds
        sizes = batch.sizes
        by_kind = self.ops_by_kind
        counts = np.bincount(kinds, minlength=len(OP_KIND_NAMES))
        for code in np.flatnonzero(counts).tolist():
            name = OP_KIND_NAMES[code]
            by_kind[name] = by_kind.get(name, 0) + int(counts[code])
        read_mask = kinds == KIND_READ
        write_mask = kinds == KIND_WRITE
        self.bytes_read += int(sizes[read_mask].sum())
        self.bytes_written += int(sizes[write_mask].sum())
        data_rows = np.flatnonzero(
            (read_mask | write_mask) & (batch.category_idx >= 0)
        )
        if len(data_rows):
            per_category = np.zeros(len(batch.categories), dtype=np.int64)
            np.add.at(per_category, batch.category_idx[data_rows],
                      sizes[data_rows])
            names = batch.categories.values()
            by_category = self.bytes_by_category
            for i in np.unique(batch.category_idx[data_rows]).tolist():
                key = names[i]
                if key:
                    by_category[key] = (
                        by_category.get(key, 0) + int(per_category[i])
                    )
        if self.window_us is not None:
            # float floor-division then int cast: the same IEEE floor as
            # the scalar ``int(start_us // window_us)`` per element.
            buckets = (batch.start_us // self.window_us).astype(np.int64)
            uniq, per_bucket = np.unique(buckets, return_counts=True)
            by_window = self.ops_by_window
            for bucket, count in zip(uniq.tolist(), per_bucket.tolist()):
                by_window[bucket] = by_window.get(bucket, 0) + count

    # -- merging / reporting ---------------------------------------------------

    def _accumulate(self, other: "WorkloadTally") -> None:
        """Add ``other`` into self, in place (no dict rebuilding)."""
        if self.window_us != other.window_us:
            # A window may only cross a side that has folded no ops yet:
            # ops recorded without a window were never bucketed, so
            # adopting one silently would under-report the curve.
            if self.window_us is None and self.operations == 0:
                self.window_us = other.window_us
            elif not (other.window_us is None and other.operations == 0):
                raise ValueError(
                    "cannot merge tallies with different windows: "
                    f"{self.window_us} vs {other.window_us}"
                )
        self.sessions += other.sessions
        self.operations += other.operations
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.files_referenced += other.files_referenced
        self.file_bytes_referenced += other.file_bytes_referenced
        for attr in ("ops_by_kind", "bytes_by_category", "sessions_by_type",
                     "ops_by_window"):
            mine = getattr(self, attr)
            for key, value in getattr(other, attr).items():
                mine[key] = mine.get(key, 0) + value

    def merge(self, other: "WorkloadTally") -> "WorkloadTally":
        """Sum of two tallies (new object; operands untouched)."""
        merged = WorkloadTally()
        merged._accumulate(self)
        merged._accumulate(other)
        return merged

    @classmethod
    def merge_all(cls, parts: Iterable["WorkloadTally"]) -> "WorkloadTally":
        """Sum many tallies into one fresh accumulator.

        Accumulates in place — one dict update per key per part —
        instead of the old fold over :meth:`merge`, which rebuilt all
        three dicts (and re-copied every previously merged shard's keys)
        at each step.  :meth:`merge` itself stays pure.
        """
        merged = cls()
        for part in parts:
            merged._accumulate(part)
        return merged

    @classmethod
    def from_log(cls, log: UsageLog,
                 window_us: float | None = None) -> "WorkloadTally":
        """Replay an archived log into a tally."""
        tally = cls(window_us=window_us)
        for op in log.operations:
            tally.record_op(op)
        for session in log.sessions:
            tally.record_session(session)
        return tally

    def offered_load(self) -> list[tuple[float, int, float]]:
        """The windowed ops curve: ``(window start µs, ops, ops/s)`` rows.

        Empty unless the tally was built with a ``window_us``.
        """
        if self.window_us is None:
            return []
        seconds = self.window_us / 1e6
        return [
            (bucket * self.window_us, count, count / seconds)
            for bucket, count in sorted(self.ops_by_window.items())
        ]

    def as_kv(self) -> dict[str, int]:
        """Flat, deterministically ordered dict (report and test surface).

        Contains only the *content* counts, which are shard- and
        backend-invariant.  The windowed offered-load buckets stay out:
        they are keyed by op start clock, which on the DES depends on
        per-site queueing — report them via :meth:`offered_load`.
        """
        kv: dict[str, int] = {
            "sessions": self.sessions,
            "operations": self.operations,
            "bytes read": self.bytes_read,
            "bytes written": self.bytes_written,
            "files referenced": self.files_referenced,
            "file bytes referenced": self.file_bytes_referenced,
        }
        for kind in sorted(self.ops_by_kind):
            kv[f"ops[{kind}]"] = self.ops_by_kind[kind]
        for key in sorted(self.bytes_by_category):
            kv[f"bytes[{key}]"] = self.bytes_by_category[key]
        for name in sorted(self.sessions_by_type):
            kv[f"sessions[{name}]"] = self.sessions_by_type[name]
        return kv


class ShardAccumulator:
    """The :class:`~repro.core.oplog.OpSink` one shard records into.

    Always maintains the :class:`WorkloadTally` and a response-time
    :class:`~repro.sim.RunningStats` online; retains the raw
    :class:`UsageLog` only when ``collect_ops=True`` (memory grows with
    operation count, so fleet runs default to stats-only).
    """

    def __init__(self, collect_ops: bool = False,
                 window_us: float | None = None):
        self.tally = WorkloadTally(window_us=window_us)
        self.response_us = RunningStats()
        self.log: UsageLog | None = UsageLog() if collect_ops else None

    def record_op(self, record: OpRecord) -> None:
        self.tally.record_op(record)
        self.response_us.add(record.response_us)
        if self.log is not None:
            self.log.record_op(record)

    def record_session(self, record: SessionRecord) -> None:
        self.tally.record_session(record)
        if self.log is not None:
            self.log.record_session(record)

    def record_batch(self, batch: OpBatch) -> None:
        """Fold a columnar batch: vectorized tally + batch Welford."""
        self.tally.record_batch(batch)
        self.response_us.add_array(batch.response_us)
        if self.log is not None:
            self.log.record_batch(batch)
