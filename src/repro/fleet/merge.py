"""Shard-result aggregation: what merges exactly, and what cannot.

A fleet run produces one result per shard.  Two kinds of quantity come
back:

* **Workload content** — how many sessions ran, which system calls were
  issued, how many bytes moved, per category and per user type.  These
  are integer counts determined solely by ``(root seed, user id)`` (see
  :class:`repro.core.synthesis.SessionGenerator`'s determinism contract), so
  summing them across shards reproduces the single-process totals
  **bit-for-bit** for any shard count.
* **Timing** — response times and simulated duration.  Each shard is an
  independent simulated site (its own engine, server and network), so
  queueing contention — and therefore timing — legitimately depends on
  the shard topology.  Timing is merged for reporting but is *not* part
  of the invariant aggregate.

:class:`WorkloadTally` accumulates the first kind online;
:class:`ShardAccumulator` is the :class:`~repro.core.oplog.OpSink` a
shard records into, optionally retaining the full :class:`UsageLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.oplog import OpRecord, SessionRecord, UsageLog
from ..sim import RunningStats

__all__ = ["WorkloadTally", "ShardAccumulator"]

_DATA_OPS = ("read", "write")


@dataclass(eq=True)
class WorkloadTally:
    """Online, order-invariant tally of a run's workload content.

    Every field is an exact integer count (or a dict of them), so
    equality between two tallies is bitwise, and merging is plain
    addition — associative and commutative, hence independent of shard
    count and completion order.
    """

    sessions: int = 0
    operations: int = 0
    ops_by_kind: dict[str, int] = field(default_factory=dict)
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_by_category: dict[str, int] = field(default_factory=dict)
    files_referenced: int = 0
    file_bytes_referenced: int = 0
    sessions_by_type: dict[str, int] = field(default_factory=dict)

    # -- OpSink-shaped recording ---------------------------------------------

    def record_op(self, record: OpRecord) -> None:
        """Fold one executed system call into the tally."""
        self.operations += 1
        kind = record.op
        self.ops_by_kind[kind] = self.ops_by_kind.get(kind, 0) + 1
        if kind == "read":
            self.bytes_read += record.size
        elif kind == "write":
            self.bytes_written += record.size
        if kind in _DATA_OPS and record.category_key:
            key = record.category_key
            self.bytes_by_category[key] = (
                self.bytes_by_category.get(key, 0) + record.size
            )

    def record_session(self, record: SessionRecord) -> None:
        """Fold one login session's summary into the tally."""
        self.sessions += 1
        self.files_referenced += record.files_referenced
        self.file_bytes_referenced += record.file_bytes_referenced
        self.sessions_by_type[record.user_type] = (
            self.sessions_by_type.get(record.user_type, 0) + 1
        )

    # -- merging / reporting ---------------------------------------------------

    def merge(self, other: "WorkloadTally") -> "WorkloadTally":
        """Sum of two tallies (new object; operands untouched)."""
        merged = WorkloadTally(
            sessions=self.sessions + other.sessions,
            operations=self.operations + other.operations,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            files_referenced=self.files_referenced + other.files_referenced,
            file_bytes_referenced=(
                self.file_bytes_referenced + other.file_bytes_referenced
            ),
        )
        for attr in ("ops_by_kind", "bytes_by_category", "sessions_by_type"):
            combined = dict(getattr(self, attr))
            for key, value in getattr(other, attr).items():
                combined[key] = combined.get(key, 0) + value
            setattr(merged, attr, combined)
        return merged

    @classmethod
    def merge_all(cls, parts: Iterable["WorkloadTally"]) -> "WorkloadTally":
        """Sum many tallies."""
        merged = cls()
        for part in parts:
            merged = merged.merge(part)
        return merged

    @classmethod
    def from_log(cls, log: UsageLog) -> "WorkloadTally":
        """Replay an archived log into a tally."""
        tally = cls()
        for op in log.operations:
            tally.record_op(op)
        for session in log.sessions:
            tally.record_session(session)
        return tally

    def as_kv(self) -> dict[str, int]:
        """Flat, deterministically ordered dict (report and test surface)."""
        kv: dict[str, int] = {
            "sessions": self.sessions,
            "operations": self.operations,
            "bytes read": self.bytes_read,
            "bytes written": self.bytes_written,
            "files referenced": self.files_referenced,
            "file bytes referenced": self.file_bytes_referenced,
        }
        for kind in sorted(self.ops_by_kind):
            kv[f"ops[{kind}]"] = self.ops_by_kind[kind]
        for key in sorted(self.bytes_by_category):
            kv[f"bytes[{key}]"] = self.bytes_by_category[key]
        for name in sorted(self.sessions_by_type):
            kv[f"sessions[{name}]"] = self.sessions_by_type[name]
        return kv


class ShardAccumulator:
    """The :class:`~repro.core.oplog.OpSink` one shard records into.

    Always maintains the :class:`WorkloadTally` and a response-time
    :class:`~repro.sim.RunningStats` online; retains the raw
    :class:`UsageLog` only when ``collect_ops=True`` (memory grows with
    operation count, so fleet runs default to stats-only).
    """

    def __init__(self, collect_ops: bool = False):
        self.tally = WorkloadTally()
        self.response_us = RunningStats()
        self.log: UsageLog | None = UsageLog() if collect_ops else None

    def record_op(self, record: OpRecord) -> None:
        self.tally.record_op(record)
        self.response_us.add(record.response_us)
        if self.log is not None:
            self.log.record_op(record)

    def record_session(self, record: SessionRecord) -> None:
        self.tally.record_session(record)
        if self.log is not None:
            self.log.record_session(record)
