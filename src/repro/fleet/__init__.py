"""Sharded multi-process workload generation (the fleet layer).

Scales the single-engine USIM to large populations by splitting users
across independent simulated sites executed by a process pool, then
merging results:

* :mod:`~repro.fleet.sharding` — deterministic shard plans (round-robin
  user slices, spawned per-shard seeds);
* :mod:`~repro.fleet.merge` — the order-invariant
  :class:`~repro.fleet.merge.WorkloadTally` and the per-shard
  :class:`~repro.fleet.merge.ShardAccumulator` sink;
* :mod:`~repro.fleet.supervisor` — owned worker processes with death
  and hang detection, deterministic retry, and quarantine;
* :mod:`~repro.fleet.runner` — :func:`~repro.fleet.runner.run_fleet`
  and its config/result types, plus checkpoint/resume
  (:func:`~repro.fleet.runner.resume_fleet_config`).

The headline guarantee: for a fixed root seed, the merged workload tally
is **bit-for-bit identical for any shard count** (timing is per-site and
reported separately) — and, because every shard is a pure function of
(spec, seed, shard range), retried and resumed runs reproduce the same
artifact bytes exactly.  See ``docs/architecture.md`` for why.
"""

from .merge import ShardAccumulator, WorkloadTally
from .runner import (
    FleetConfig,
    FleetPartialError,
    FleetResult,
    ShardOutcome,
    resume_fleet_config,
    run_fleet,
)
from .sharding import ShardPlan, plan_shards
from .supervisor import ShardFailure, ShardSupervisor, SupervisorReport

__all__ = [
    "ShardAccumulator",
    "WorkloadTally",
    "FleetConfig",
    "FleetPartialError",
    "FleetResult",
    "ShardOutcome",
    "resume_fleet_config",
    "run_fleet",
    "ShardPlan",
    "plan_shards",
    "ShardFailure",
    "ShardSupervisor",
    "SupervisorReport",
]
