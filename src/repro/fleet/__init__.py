"""Sharded multi-process workload generation (the fleet layer).

Scales the single-engine USIM to large populations by splitting users
across independent simulated sites executed by a process pool, then
merging results:

* :mod:`~repro.fleet.sharding` — deterministic shard plans (round-robin
  user slices, spawned per-shard seeds);
* :mod:`~repro.fleet.merge` — the order-invariant
  :class:`~repro.fleet.merge.WorkloadTally` and the per-shard
  :class:`~repro.fleet.merge.ShardAccumulator` sink;
* :mod:`~repro.fleet.runner` — :func:`~repro.fleet.runner.run_fleet`
  and its config/result types.

The headline guarantee: for a fixed root seed, the merged workload tally
is **bit-for-bit identical for any shard count** (timing is per-site and
reported separately).  See ``docs/architecture.md`` for why.
"""

from .merge import ShardAccumulator, WorkloadTally
from .runner import FleetConfig, FleetResult, ShardOutcome, run_fleet
from .sharding import ShardPlan, plan_shards

__all__ = [
    "ShardAccumulator",
    "WorkloadTally",
    "FleetConfig",
    "FleetResult",
    "ShardOutcome",
    "run_fleet",
    "ShardPlan",
    "plan_shards",
]
