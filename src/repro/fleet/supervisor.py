"""Supervised shard execution: detect failures, retry, quarantine.

A bare ``multiprocessing.Pool`` gives the fleet throughput but no
robustness: a worker that dies takes its shard's result with it, a
worker that hangs stalls the whole run, and neither failure is
distinguishable from "still computing" at the coordinator.  The
supervisor replaces the pool with explicitly owned workers:

* **one task queue per worker** — the coordinator always knows which
  shard (and which attempt) a worker holds, so a dead process maps
  directly to a failed shard-attempt;
* **death detection** — ``Process.is_alive()``/``exitcode`` polled in
  the event loop; a worker that vanished while holding a shard fails
  that attempt;
* **hang detection** — each busy worker carries a progress deadline fed
  by the shards' :class:`~repro.obs.progress.QueueProgressSender`
  heartbeats; a worker silent past ``timeout_s`` is killed and its
  attempt failed;
* **deterministic retry** — a failed shard is requeued with exponential
  backoff (``backoff_s * 2**(attempt-1)``) into a fresh worker, up to
  ``max_retries`` retries.  Because shard generation is a pure function
  of (spec, seed, shard range), the retried attempt reproduces the
  original bytes exactly;
* **quarantine** — a shard that exhausts its retries is quarantined:
  the remaining shards still complete, and the report names the
  casualties so the caller can emit a partial-run manifest instead of
  losing the whole run.

Results carry their attempt number and are matched against the
shard's *current* attempt, so a stale success from a worker that was
presumed dead (or timed out) can never race a retry already in flight.
An optional ``verify`` hook runs in the coordinator after each success
— the fleet uses it to CRC-walk the shard's stream artifact, turning
silent corruption into an ordinary retryable failure.
"""

from __future__ import annotations

import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["ShardFailure", "SupervisorReport", "ShardSupervisor"]

_POLL_S = 0.02
_JOIN_GRACE_S = 2.0
_BACKOFF_CAP_S = 30.0


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt (retried or terminal)."""

    shard_index: int
    attempt: int
    reason: str  # "died" | "timeout" | "error" | "corrupt"
    detail: str = ""

    def describe(self) -> str:
        """One log-friendly line."""
        out = (f"shard {self.shard_index} attempt {self.attempt} "
               f"{self.reason}")
        if self.detail:
            out += f": {self.detail}"
        return out


@dataclass
class SupervisorReport:
    """What supervised execution produced and what it cost."""

    outcomes: list = field(default_factory=list)  # completed, shard order
    failures: list = field(default_factory=list)  # every failed attempt
    quarantined: list = field(default_factory=list)  # terminal shard indexes
    retries: int = 0
    timeouts: int = 0
    recovery_wall_s: float = 0.0  # backoff delay spent recovering


def _worker_main(worker_id, task_queue, result_queue, progress_queue,
                 run_shard, initializer):
    """Worker loop: one outstanding task at a time, results tagged.

    The attempt number travels with the task and comes back with the
    result, letting the coordinator discard stale completions.
    """
    if initializer is not None:
        initializer(progress_queue)
    while True:
        item = task_queue.get()
        if item is None:
            return
        task, attempt = item
        shard = task.plan.shard_index
        try:
            outcome = run_shard(task)
        except KeyboardInterrupt:
            return
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            result_queue.put(("error", worker_id, shard, attempt,
                              f"{type(exc).__name__}: {exc}"))
        else:
            result_queue.put(("ok", worker_id, shard, attempt, outcome))


class _Worker:
    """One owned process and what it is currently running."""

    __slots__ = ("process", "queue", "shard", "attempt", "started",
                 "last_beat")

    def __init__(self, process, task_queue):
        self.process = process
        self.queue = task_queue
        self.shard: int | None = None
        self.attempt = 0
        self.started = 0.0
        self.last_beat = 0.0


class ShardSupervisor:
    """Run shard tasks under supervision (see the module docstring).

    ``tasks`` need a ``plan.shard_index``; ``run_shard(task)`` executes
    one in a worker process.  ``retask(task, attempt)`` rewrites a task
    for a retry (the fleet uses it to stamp the attempt number and flip
    the resume flag); ``verify(task, outcome)`` returns an error string
    to fail an apparently successful attempt, or None to accept it.
    ``initializer(progress_queue)`` runs once per worker process — the
    fleet installs the heartbeat queue there.
    """

    def __init__(self, tasks, *, ctx, run_shard, workers: int,
                 max_retries: int = 2, backoff_s: float = 0.25,
                 timeout_s: float | None = None, meter=None,
                 verify=None, retask=None, initializer=None,
                 on_failure=None):
        self._tasks = list(tasks)
        self._ctx = ctx
        self._run_shard = run_shard
        self._workers_target = max(1, min(int(workers), len(self._tasks)))
        self._max_retries = max(0, int(max_retries))
        self._backoff_s = max(0.0, float(backoff_s))
        self._timeout_s = timeout_s
        self._meter = meter
        self._verify = verify
        self._retask = retask
        self._initializer = initializer
        self._on_failure = on_failure

    # -- internals ------------------------------------------------------------

    def _spawn(self, worker_id: int, result_queue, progress_queue) -> _Worker:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, result_queue, progress_queue,
                  self._run_shard, self._initializer),
            daemon=True,
        )
        process.start()
        return _Worker(process, task_queue)

    def _backoff(self, attempt: int) -> float:
        """Delay before launching ``attempt`` (attempt 1 is immediate)."""
        if attempt <= 1 or self._backoff_s <= 0.0:
            return 0.0
        return min(self._backoff_s * (2.0 ** (attempt - 2)), _BACKOFF_CAP_S)

    # -- event loop -----------------------------------------------------------

    def run(self) -> SupervisorReport:
        report = SupervisorReport()
        n_shards = len(self._tasks)
        if n_shards == 0:
            return report
        result_queue = self._ctx.Queue()
        progress_queue = self._ctx.Queue()
        base = {task.plan.shard_index: task for task in self._tasks}
        pending: deque = deque(
            (task.plan.shard_index, 1) for task in self._tasks)
        waiting: list = []  # (ready_at, shard, attempt)
        current_attempt: dict[int, int] = {}
        current_task: dict = {}
        outcomes: dict = {}
        quarantined: set[int] = set()
        workers: dict[int, _Worker] = {}
        next_worker_id = 0

        def fail(shard: int, attempt: int, reason: str, detail: str) -> None:
            failure = ShardFailure(shard_index=shard, attempt=attempt,
                                   reason=reason, detail=detail)
            report.failures.append(failure)
            if self._on_failure is not None:
                self._on_failure(failure)
            # Invalidate the attempt so a zombie's late result is stale.
            current_attempt[shard] = 0
            if attempt > self._max_retries:
                quarantined.add(shard)
                return
            report.retries += 1
            delay = self._backoff(attempt + 1)
            report.recovery_wall_s += delay
            waiting.append((time.monotonic() + delay, shard, attempt + 1))

        def accept(shard: int, attempt: int, outcome) -> None:
            if shard in outcomes or shard in quarantined:
                return
            if current_attempt.get(shard) != attempt:
                return  # stale result from a presumed-dead worker
            if self._verify is not None:
                detail = self._verify(current_task[shard], outcome)
                if detail is not None:
                    fail(shard, attempt, "corrupt", detail)
                    return
            outcomes[shard] = outcome
            current_attempt[shard] = 0

        try:
            while len(outcomes) + len(quarantined) < n_shards:
                now = time.monotonic()
                progressed = False

                # Heartbeats: feed the meter, refresh deadlines.
                while True:
                    try:
                        shard, users, ops, done = progress_queue.get_nowait()
                    except (queue_mod.Empty, OSError, EOFError):
                        break
                    progressed = True
                    del done  # display converges via the merged snapshots
                    if self._meter is not None:
                        self._meter.update_shard(shard, users, ops)
                    for worker in workers.values():
                        if worker.shard == shard:
                            worker.last_beat = now

                # Results.
                while True:
                    try:
                        kind, worker_id, shard, attempt, payload = \
                            result_queue.get_nowait()
                    except (queue_mod.Empty, OSError, EOFError):
                        break
                    progressed = True
                    worker = workers.get(worker_id)
                    if worker is not None and worker.shard == shard:
                        worker.shard = None
                    if shard in outcomes or shard in quarantined:
                        continue
                    if current_attempt.get(shard) != attempt:
                        continue
                    if kind == "ok":
                        accept(shard, attempt, payload)
                    else:
                        fail(shard, attempt, "error", str(payload))

                # Worker death.
                for worker_id, worker in list(workers.items()):
                    if worker.process.is_alive():
                        continue
                    shard = worker.shard
                    if (shard is not None and shard not in outcomes
                            and current_attempt.get(shard)
                            == worker.attempt):
                        fail(shard, worker.attempt, "died",
                             "worker exited with code "
                             f"{worker.process.exitcode}")
                    worker.process.join()
                    del workers[worker_id]
                    progressed = True

                # Hangs: no heartbeat within the progress deadline.
                if self._timeout_s is not None:
                    for worker_id, worker in list(workers.items()):
                        if worker.shard is None:
                            continue
                        deadline = max(worker.started, worker.last_beat) \
                            + self._timeout_s
                        if now < deadline:
                            continue
                        shard, attempt = worker.shard, worker.attempt
                        worker.process.kill()
                        worker.process.join()
                        del workers[worker_id]
                        report.timeouts += 1
                        fail(shard, attempt, "timeout",
                             f"no progress for {self._timeout_s:g}s")
                        progressed = True

                # Backoffs that have elapsed become launchable.
                for entry in list(waiting):
                    if entry[0] <= now:
                        waiting.remove(entry)
                        pending.append((entry[1], entry[2]))
                        progressed = True

                # Launch pending attempts into idle (or new) workers.
                while pending:
                    idle = next((w for w in workers.values()
                                 if w.shard is None), None)
                    if idle is None:
                        if len(workers) >= self._workers_target:
                            break
                        idle = self._spawn(next_worker_id, result_queue,
                                           progress_queue)
                        workers[next_worker_id] = idle
                        next_worker_id += 1
                    shard, attempt = pending.popleft()
                    task = base[shard]
                    if self._retask is not None:
                        task = self._retask(task, attempt)
                    current_attempt[shard] = attempt
                    current_task[shard] = task
                    idle.shard = shard
                    idle.attempt = attempt
                    idle.started = idle.last_beat = time.monotonic()
                    idle.queue.put((task, attempt))
                    progressed = True

                if not progressed:
                    time.sleep(_POLL_S)
        finally:
            for worker in workers.values():
                try:
                    worker.queue.put_nowait(None)
                except (OSError, ValueError):
                    pass
            deadline = time.monotonic() + _JOIN_GRACE_S
            for worker in workers.values():
                worker.process.join(max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join()

        report.outcomes = [outcomes[s] for s in sorted(outcomes)]
        report.quarantined = sorted(quarantined)
        return report
