"""The metrics registry: named counters, gauges, stats and histograms.

One :class:`MetricsRegistry` per observed run.  It deliberately reuses
the simulation's own accumulators — :class:`~repro.sim.RunningStats`
for streaming summaries and :class:`~repro.sim.Histogram` for fixed-bin
distributions — so a metric costs the same as the statistics the
analyzer already keeps, and the fleet layer can merge per-shard
registries with the exact parallel-Welford math the tally merge uses.

Everything round-trips through :meth:`MetricsRegistry.snapshot`: a
plain JSON-able dict that workers can pickle back to the coordinator,
:func:`merge_snapshots` can fold across shards, and the exporters in
:mod:`repro.obs.export` can render as JSONL or Prometheus text.
"""

from __future__ import annotations

from typing import Iterable

from ..sim import Histogram, RunningStats

__all__ = ["Counter", "Gauge", "MetricsRegistry", "merge_snapshots"]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        self.value += n


class Gauge:
    """A point-in-time value (last write wins; merges take the max)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        self.value = float(value)


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Names are free-form dotted strings (``stream.chunks``,
    ``sink.response_us``); re-asking for a name returns the same object,
    so instrumentation sites can resolve their metrics once and hold the
    reference — the per-event cost is then one attribute update.
    """

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.stats: dict[str, RunningStats] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def stat(self, name: str) -> RunningStats:
        """The streaming summary called ``name`` (created on first use)."""
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = RunningStats()
        return stat

    def histogram(self, name: str, lo: float, hi: float,
                  n_bins: int) -> Histogram:
        """The histogram called ``name``.

        The bin layout is fixed by the first call; later calls must ask
        for the same ``(lo, hi, n_bins)`` or a :class:`ValueError`
        surfaces the mismatch instead of silently mixing layouts.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(lo, hi, n_bins)
        elif (hist.lo, hist.hi, hist.n_bins) != (float(lo), float(hi),
                                                 int(n_bins)):
            raise ValueError(
                f"histogram {name!r} already registered with layout "
                f"[{hist.lo}, {hist.hi}] x {hist.n_bins}"
            )
        return hist

    def snapshot(self) -> dict:
        """Plain JSON-able dict of every metric's current state."""
        return {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "stats": {k: v.as_state() for k, v in sorted(self.stats.items())},
            "histograms": {
                k: {
                    "lo": v.lo,
                    "hi": v.hi,
                    "n_bins": v.n_bins,
                    "counts": [int(c) for c in v.counts],
                    "underflow": v.underflow,
                    "overflow": v.overflow,
                }
                for k, v in sorted(self.histograms.items())
            },
        }


def merge_snapshots(parts: Iterable[dict]) -> dict:
    """Fold per-shard registry snapshots into one run-level snapshot.

    Counters add, gauges keep the maximum (the fleet-level reading of a
    per-shard high-water mark), stats combine through the exact
    parallel-Welford merge, and histograms with identical bin layouts
    add count-for-count.  Mismatched histogram layouts raise — shards of
    one run share one instrumentation configuration by construction.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    stats: dict[str, RunningStats] = {}
    histograms: dict[str, dict] = {}
    stages: dict[str, dict] = {}
    for part in parts:
        for name, span in part.get("stages", {}).items():
            mine = stages.setdefault(name, {
                "wall_s": 0.0, "cpu_s": 0.0, "calls": 0,
                "rows": 0, "bytes": 0,
            })
            for key in mine:
                # detlint: ignore[float-accum] — spans are additive totals folded in fixed shard
                # order (not statistics); the Welford path below handles every distributional metric
                mine[key] += span.get(key, 0)
        for name, value in part.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in part.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, float(value)), float(value))
        for name, state in part.get("stats", {}).items():
            incoming = RunningStats.from_state(state)
            mine = stats.get(name)
            stats[name] = incoming if mine is None else mine.merge(incoming)
        for name, hist in part.get("histograms", {}).items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = {
                    "lo": hist["lo"], "hi": hist["hi"],
                    "n_bins": hist["n_bins"],
                    "counts": list(hist["counts"]),
                    "underflow": int(hist["underflow"]),
                    "overflow": int(hist["overflow"]),
                }
                continue
            if (mine["lo"], mine["hi"], mine["n_bins"]) != (
                    hist["lo"], hist["hi"], hist["n_bins"]):
                raise ValueError(
                    f"cannot merge histogram {name!r}: bin layouts differ"
                )
            mine["counts"] = [a + b for a, b in zip(mine["counts"],
                                                    hist["counts"])]
            mine["underflow"] += int(hist["underflow"])
            mine["overflow"] += int(hist["overflow"])
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "stats": {k: v.as_state() for k, v in sorted(stats.items())},
        "histograms": dict(sorted(histograms.items())),
        "stages": dict(sorted(stages.items())),
    }
