"""Live progress reporting for long runs.

Two halves, joined by a queue in fleet mode:

* Worker side — :class:`QueueProgressSender` plugs into a
  :class:`~repro.obs.observer.RunObserver` as its ``progress`` hook and
  ships throttled ``(shard, users, ops, done)`` tuples to the
  coordinator over a ``multiprocessing.Queue``.  Sends are lossy by
  design (``put_nowait`` on a bounded queue, drops on overflow): a
  missed sample only delays the display by one interval and the final
  totals always come from the merged metric snapshots, never from here.
* Parent side — :class:`ProgressMeter` aggregates per-shard counts and
  renders a single carriage-return-refreshed stderr line with users
  done/total, ops so far, users/s, ops/s, and an ETA extrapolated from
  the user completion rate.  In-process runs skip the queue and tick the
  meter directly.

Nothing here touches the simulation: progress reads counters the
observer already maintains, so ``--progress`` can never perturb an op
stream.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressMeter", "QueueProgressSender", "format_progress_line"]


def _si(value: float) -> str:
    """Compact count rendering: 950, 8.21k, 59.4M."""
    for unit, scale in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if value >= scale:
            return f"{value / scale:.3g}{unit}"
    return f"{value:.0f}"


def _eta(seconds: float) -> str:
    """Render an ETA as 42s / 3m10s / 2h05m."""
    seconds = int(seconds)
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def format_progress_line(label: str, users: int, total_users: int | None,
                         ops: int, elapsed_s: float) -> str:
    """One status line from raw counts (separated out for testing)."""
    elapsed_s = max(elapsed_s, 1e-9)
    users_rate = users / elapsed_s
    ops_rate = ops / elapsed_s
    if total_users:
        frac = min(users / total_users, 1.0)
        head = f"{label}: {users}/{total_users} users ({frac * 100.0:.0f}%)"
        if 0 < users < total_users:
            remaining = (total_users - users) / max(users_rate, 1e-9)
            tail = f" eta {_eta(remaining)}"
        else:
            tail = ""
    else:
        head = f"{label}: {users} users"
        tail = ""
    return (f"{head} | {_si(ops)} ops | {users_rate:.1f} users/s | "
            f"{_si(ops_rate)} ops/s{tail}")


class ProgressMeter:
    """Aggregates shard counts and repaints one stderr status line.

    ``update(users, ops)`` is the observer-side hook for in-process
    runs; ``update_shard(shard, users, ops)`` is what the fleet
    coordinator calls while draining the worker queue.  Repaints are
    throttled to ``interval_s`` so a hot loop ticking every batch costs
    one clock read per tick, not a terminal write.
    """

    def __init__(self, total_users: int | None = None, *,
                 label: str = "run", stream=None, interval_s: float = 0.5):
        self.total_users = total_users
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self._shards: dict[int, tuple[int, int]] = {}
        self._start = time.monotonic()
        self._last_paint = 0.0
        self._painted = False

    # -- feeding --------------------------------------------------------------

    def update(self, users: int, ops: int) -> None:
        """Absolute counts from a single in-process run (shard 0)."""
        self.update_shard(0, users, ops)

    def update_shard(self, shard: int, users: int, ops: int) -> None:
        """Absolute counts for one shard; repaints when due."""
        self._shards[shard] = (users, ops)
        now = time.monotonic()
        if now - self._last_paint >= self.interval_s:
            self._paint(now)

    # -- rendering ------------------------------------------------------------

    def _totals(self) -> tuple[int, int]:
        users = sum(u for u, _ in self._shards.values())
        ops = sum(o for _, o in self._shards.values())
        return users, ops

    def _paint(self, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        users, ops = self._totals()
        line = format_progress_line(self.label, users, self.total_users,
                                    ops, now - self._start)
        try:
            self.stream.write("\r\x1b[K" + line)
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: go quiet
            return
        self._last_paint = now
        self._painted = True

    def finish(self) -> None:
        """Final repaint plus a newline so the shell prompt stays clean."""
        self._paint()
        if self._painted:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass


class QueueProgressSender:
    """Worker-side progress hook: throttled counts onto an mp queue.

    One sender per shard.  ``update`` drops samples closer together than
    ``min_interval_s`` and never blocks — a full queue loses the sample,
    which the next one supersedes anyway.  ``finish`` pushes a terminal
    ``done=True`` sample (best-effort) so the coordinator's display
    converges even if the last throttled update was dropped.
    """

    def __init__(self, shard: int, queue, *, min_interval_s: float = 0.25):
        self.shard = shard
        self.queue = queue
        self.min_interval_s = min_interval_s
        self._last_send = 0.0

    def update(self, users: int, ops: int) -> None:
        now = time.monotonic()
        if now - self._last_send < self.min_interval_s:
            return
        self._last_send = now
        try:
            self.queue.put_nowait((self.shard, users, ops, False))
        # detlint: ignore[swallowed-exceptions] — lossy progress channel: queue.Full and
        # torn-down-queue drops are by design; samples are advisory, never load-bearing
        except Exception:
            pass

    def finish(self, users: int, ops: int) -> None:
        try:
            self.queue.put_nowait((self.shard, users, ops, True))
        # detlint: ignore[swallowed-exceptions] — lossy progress channel; final sample is
        # best-effort (the supervisor's result queue, not this, decides shard completion)
        except Exception:
            pass
