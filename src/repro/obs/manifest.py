"""Run-manifest artifacts: what a run was, what it cost, what it produced.

A manifest is a single JSON document written next to a run's outputs
(op-stream artifact, tally report) that makes the run reproducible and
auditable after the fact: the exact seed and spec fingerprint, the
backend and scenario, the package/python/numpy versions that produced
it, per-stage wall/CPU timings, peak RSS, and every metric the observer
collected.  Layout::

    {
      "format": "repro.run-manifest", "version": 1,
      "created_utc": "2026-08-08T12:34:56Z",
      "repro_version": "...", "python": "...", "numpy": "...",
      "platform": "...", "hostname": "...", "cpu_count": 8,
      "run": {"seed": ..., "backend": ..., "scenario": ...,
              "spec_sha256": ..., "n_users": ..., "wall_s": ...,
              "simulated_us": ..., ...},
      "peak_rss_kib": 123456,
      "metrics": {"counters": ..., "gauges": ..., "stats": ...,
                  "histograms": ..., "stages": ...}
    }

The spec fingerprint hashes the spec's canonical JSON interchange form
(:func:`~repro.core.specjson.spec_to_jsonable`, sorted keys), so two
runs with the same fingerprint drew from byte-identical workload
parameters regardless of how the spec object was constructed.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import sys
import time

__all__ = ["MANIFEST_FORMAT", "MANIFEST_VERSION", "spec_fingerprint",
           "peak_rss_kib", "build_manifest", "write_manifest"]

MANIFEST_FORMAT = "repro.run-manifest"
MANIFEST_VERSION = 1


def spec_fingerprint(spec) -> str:
    """sha256 over the spec's canonical (sorted-key) JSON form."""
    from ..core.specjson import spec_to_jsonable

    canonical = json.dumps(spec_to_jsonable(spec), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def peak_rss_kib() -> int | None:
    """Peak resident set size of this process tree, in KiB.

    Sums ``RUSAGE_SELF`` and ``RUSAGE_CHILDREN`` high-water marks (the
    children term covers reaped fleet workers).  Linux reports
    ``ru_maxrss`` in KiB; macOS reports bytes and is normalised.
    Returns None where the ``resource`` module is unavailable.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak //= 1024
    return int(peak)


def build_manifest(snapshot: dict, *, seed=None, backend: str | None = None,
                   scenario: str | None = None, spec=None,
                   n_users: int | None = None, wall_s: float | None = None,
                   simulated_us: int | None = None,
                   extra: dict | None = None) -> dict:
    """Assemble the manifest dict from a metrics snapshot plus run facts.

    ``extra`` entries land inside the ``run`` block verbatim — fleet
    adds shard counts and artifact paths through it.
    """
    from .. import __version__

    import numpy

    run: dict = {
        "seed": seed,
        "backend": backend,
        "scenario": scenario,
        "spec_sha256": spec_fingerprint(spec) if spec is not None else None,
        "n_users": n_users,
        "wall_s": wall_s,
        "simulated_us": simulated_us,
    }
    if extra:
        run.update(extra)
    return {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repro_version": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "run": run,
        "peak_rss_kib": peak_rss_kib(),
        "metrics": snapshot,
    }


def write_manifest(path, manifest: dict) -> None:
    """Write the manifest as indented JSON (trailing newline included)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=False)
        fh.write("\n")
