"""Run-wide observability: metrics, stage spans, progress, manifests.

``repro.obs`` instruments the generation pipeline without ever touching
it: a disabled run pays one predicate check (see
:data:`~repro.obs.observer.NULL_OBSERVER`), an enabled run collects
counters/gauges/stats/histograms into a
:class:`~repro.obs.metrics.MetricsRegistry`, charges wall+CPU spans to
pipeline stages, optionally paints a live progress line, and can be
rolled up into a run-manifest JSON artifact or exported as JSONL /
Prometheus text.  Instrumentation never consumes randomness or alters
recorded bytes — golden byte-identity holds with metrics on.
"""

from .export import snapshot_jsonl, snapshot_prometheus
from .manifest import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    build_manifest,
    peak_rss_kib,
    spec_fingerprint,
    write_manifest,
)
from .metrics import Counter, Gauge, MetricsRegistry, merge_snapshots
from .observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    ObservingSink,
    RunObserver,
    StageTimes,
)
from .progress import ProgressMeter, QueueProgressSender, format_progress_line

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "merge_snapshots",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "RunObserver",
    "StageTimes",
    "ObservingSink",
    "ProgressMeter",
    "QueueProgressSender",
    "format_progress_line",
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "build_manifest",
    "peak_rss_kib",
    "spec_fingerprint",
    "write_manifest",
    "snapshot_jsonl",
    "snapshot_prometheus",
]
