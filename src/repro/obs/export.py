"""Metric-snapshot exporters: JSONL and Prometheus text exposition.

Both render the plain snapshot dict produced by
:meth:`~repro.obs.observer.RunObserver.snapshot` /
:func:`~repro.obs.metrics.merge_snapshots`, so they work identically on
a single run and on a merged fleet.  JSONL is one self-describing JSON
object per metric (easy to grep or load into a dataframe); the
Prometheus form follows the text exposition format (``# TYPE`` lines,
cumulative ``_bucket`` counts with an ``le`` label and a ``+Inf``
terminal bucket) so a node-exporter-style scrape or ``promtool`` can
ingest a run's metrics directly.
"""

from __future__ import annotations

import json
import re

__all__ = ["snapshot_jsonl", "snapshot_prometheus"]

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name Prometheus will accept (dots and dashes → ``_``)."""
    name = _PROM_NAME.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def snapshot_jsonl(snapshot: dict) -> str:
    """One JSON object per line, one line per metric (plus stages)."""
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        lines.append({"type": "counter", "name": name, "value": value})
    for name, value in snapshot.get("gauges", {}).items():
        lines.append({"type": "gauge", "name": name, "value": value})
    for name, state in snapshot.get("stats", {}).items():
        lines.append({"type": "stat", "name": name, **state})
    for name, hist in snapshot.get("histograms", {}).items():
        lines.append({"type": "histogram", "name": name, **hist})
    for name, span in snapshot.get("stages", {}).items():
        lines.append({"type": "stage", "name": name, **span})
    return "".join(json.dumps(line, sort_keys=False) + "\n" for line in lines)


def snapshot_prometheus(snapshot: dict, prefix: str = "repro_") -> str:
    """Prometheus text exposition of a snapshot."""
    out: list[str] = []

    def emit(name: str, kind: str, samples: list[tuple[str, float]]) -> None:
        out.append(f"# TYPE {name} {kind}")
        for sample, value in samples:
            out.append(f"{sample} {value}")

    for name, value in snapshot.get("counters", {}).items():
        metric = prefix + _prom_name(name) + "_total"
        emit(metric, "counter", [(metric, value)])
    for name, value in snapshot.get("gauges", {}).items():
        metric = prefix + _prom_name(name)
        emit(metric, "gauge", [(metric, value)])
    for name, state in snapshot.get("stats", {}).items():
        metric = prefix + _prom_name(name)
        count = state["count"]
        samples = [
            (metric + "_count", count),
            (metric + "_sum", state["mean"] * count),
        ]
        if count:
            samples.append((metric + "_min", state["min"]))
            samples.append((metric + "_max", state["max"]))
        emit(metric, "summary", samples)
    for name, hist in snapshot.get("histograms", {}).items():
        metric = prefix + _prom_name(name) + "_hist"
        lo, hi, n_bins = hist["lo"], hist["hi"], hist["n_bins"]
        width = (hi - lo) / n_bins
        cumulative = hist["underflow"]
        samples = []
        for i, count in enumerate(hist["counts"]):
            cumulative += count
            upper = lo + width * (i + 1)
            samples.append((f'{metric}_bucket{{le="{upper:g}"}}', cumulative))
        cumulative += hist["overflow"]
        samples.append((f'{metric}_bucket{{le="+Inf"}}', cumulative))
        samples.append((metric + "_count", cumulative))
        emit(metric, "histogram", samples)
    for name, span in snapshot.get("stages", {}).items():
        base = prefix + "stage_" + _prom_name(name)
        for key, value in span.items():
            metric = f"{base}_{key}"
            emit(metric, "gauge", [(metric, value)])
    return "\n".join(out) + "\n"
