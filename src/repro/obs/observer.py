"""Run observers: stage spans, instrumented sinks, and the no-op singleton.

The observability contract has two halves:

* **Zero overhead when off.**  Every instrumented call site resolves its
  observer as ``observer or NULL_OBSERVER``; the shared
  :data:`NULL_OBSERVER` singleton answers ``stage()`` with a reusable
  no-op context manager, hands iterables and sinks back *unchanged*, and
  swallows ticks.  Nothing per-op or per-batch is ever added to the hot
  columnar path — a disabled run executes exactly the pre-observability
  code, and the only residual cost is the one ``is None`` predicate per
  run stage.
* **Never touch the workload.**  An enabled observer only *reads* the
  event stream: :class:`ObservingSink` wraps the run's
  :class:`~repro.core.oplog.OpSink` and forwards every record and batch
  untouched after folding counts into the
  :class:`~repro.obs.metrics.MetricsRegistry`.  No random stream is
  consumed and no column is written, so golden byte-identity holds with
  instrumentation on (pinned by ``tests/obs/test_golden_metrics.py``).

Stage spans capture wall time (``perf_counter``), CPU time
(``process_time``), call counts, and the rows/bytes that moved through
the stage; :meth:`RunObserver.snapshot` rolls everything into the plain
dict the manifest writer and the fleet coordinator consume.
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

from .metrics import MetricsRegistry

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "RunObserver",
    "StageTimes",
    "ObservingSink",
    "RESPONSE_HIST_US",
]

RESPONSE_HIST_US = (0.0, 100_000.0, 100)
"""Default response-time histogram layout: 1 ms bins up to 100 ms.

Calls slower than 100 ms land in the overflow bucket, which the
exporters report alongside the bins.
"""


@runtime_checkable
class Observer(Protocol):
    """What instrumented code needs from an observer.

    Both :class:`RunObserver` and :class:`NullObserver` satisfy this;
    call sites only ever use this surface, so the disabled path never
    branches beyond ``observer.enabled``.
    """

    enabled: bool

    def stage(self, name: str): ...

    def timed_iter(self, name: str, iterable: Iterable,
                   tick_users: bool = False) -> Iterable: ...

    def wrap_sink(self, sink): ...


class _NullContext:
    """Reusable, allocation-free ``with`` target."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class NullObserver:
    """The disabled observer: every hook is the identity or a no-op."""

    enabled = False
    __slots__ = ()

    def stage(self, name: str):
        """A shared no-op context manager."""
        return _NULL_CONTEXT

    def timed_iter(self, name: str, iterable: Iterable,
                   tick_users: bool = False) -> Iterable:
        """The iterable, unchanged — no wrapper generator at all."""
        return iterable

    def wrap_sink(self, sink):
        """The sink, unchanged — the hot path keeps its direct target."""
        return sink

    def tick_users(self, n: int = 1) -> None:
        """Ignored."""

    def tick_ops(self, n: int) -> None:
        """Ignored."""


NULL_OBSERVER = NullObserver()
"""The shared disabled observer (a process-wide singleton)."""


class StageTimes:
    """Accumulated cost of one pipeline stage."""

    __slots__ = ("wall_s", "cpu_s", "calls", "rows", "bytes")

    def __init__(self):
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.calls = 0
        self.rows = 0
        self.bytes = 0

    def add(self, wall_s: float, cpu_s: float, rows: int = 0,
            nbytes: int = 0) -> None:
        """Fold one timed interval (and its data volume) into the span."""
        self.wall_s += wall_s
        self.cpu_s += cpu_s
        self.calls += 1
        self.rows += rows
        self.bytes += nbytes

    def as_dict(self) -> dict:
        """JSON-able snapshot."""
        return {
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "calls": self.calls,
            "rows": self.rows,
            "bytes": self.bytes,
        }


class _StageSpan:
    """Context manager charging its wall/CPU interval to a stage."""

    __slots__ = ("_times", "_wall0", "_cpu0")

    def __init__(self, times: StageTimes):
        self._times = times

    def __enter__(self):
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc):
        self._times.add(time.perf_counter() - self._wall0,
                        time.process_time() - self._cpu0)
        return False


class RunObserver:
    """The enabled observer: a registry, stage spans, optional progress.

    ``progress`` is anything with an ``update(users_done, ops_done)``
    method — a :class:`~repro.obs.progress.ProgressMeter` rendering to
    stderr in-process, or a :class:`~repro.obs.progress.QueueProgressSender`
    shipping per-shard counts to the fleet coordinator.
    """

    enabled = True

    def __init__(self, registry: MetricsRegistry | None = None,
                 progress=None):
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.progress = progress
        self.stages: dict[str, StageTimes] = {}
        self._sinks: list[ObservingSink] = []
        self._users = self.metrics.counter("users")
        self._ops = self.metrics.counter("ops")

    # -- stage spans ----------------------------------------------------------

    def stage_times(self, name: str) -> StageTimes:
        """The accumulator for stage ``name`` (created on first use)."""
        times = self.stages.get(name)
        if times is None:
            times = self.stages[name] = StageTimes()
        return times

    def stage(self, name: str) -> _StageSpan:
        """Span context manager: charges the enclosed interval to ``name``."""
        return _StageSpan(self.stage_times(name))

    def timed_iter(self, name: str, iterable: Iterable,
                   tick_users: bool = False) -> Iterator:
        """Wrap an iterable, charging each ``next()`` to stage ``name``.

        With ``tick_users`` every yielded item also counts one user
        toward the progress display — the synthesize stage yields one
        generator per user, so its item count *is* the user count.
        """
        times = self.stage_times(name)
        iterator = iter(iterable)
        while True:
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            try:
                item = next(iterator)
            except StopIteration:
                times.add(time.perf_counter() - wall0,
                          time.process_time() - cpu0)
                return
            times.add(time.perf_counter() - wall0,
                      time.process_time() - cpu0, rows=1)
            if tick_users:
                self.tick_users()
            yield item

    # -- event ticks ----------------------------------------------------------

    def tick_users(self, n: int = 1) -> None:
        """Count ``n`` users as started (feeds the progress ETA)."""
        self._users.inc(n)
        if self.progress is not None:
            self.progress.update(self._users.value, self._ops.value)

    def tick_ops(self, n: int) -> None:
        """Count ``n`` executed ops (feeds the progress ops/s)."""
        self._ops.inc(n)
        if self.progress is not None:
            self.progress.update(self._users.value, self._ops.value)

    # -- sink instrumentation -------------------------------------------------

    def wrap_sink(self, sink) -> "ObservingSink":
        """An instrumented pass-through around ``sink``.

        The wrapper is remembered so :meth:`snapshot` can flush its
        deferred batch accounting before reading the registry.
        """
        wrapped = ObservingSink(sink, self)
        self._sinks.append(wrapped)
        return wrapped

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Registry snapshot plus the per-stage span table."""
        for sink in self._sinks:
            sink.flush()
        out = self.metrics.snapshot()
        out["stages"] = {
            name: times.as_dict() for name, times in sorted(
                self.stages.items())
        }
        return out


_FLUSH_ROWS = 65536
"""Deferred-accounting flush threshold (rows buffered per sink).

Executed batches are one session each — a few dozen rows — so the
dozen-odd NumPy reductions the stat and histogram accounting needs
would cost more per batch than the statistics are worth.  The sink
buffers the response/size columns instead and folds them in bulk:
at this many rows, on :meth:`ObservingSink.flush`, and automatically
from :meth:`RunObserver.snapshot`.  The threshold bounds what a
streaming million-user run keeps alive to a few thousand small views.
"""


class ObservingSink:
    """Counts what flows into a sink, then forwards it untouched.

    The columnar path forwards each batch, then only *buffers* its
    response and size columns — the array reductions behind the
    ``response_us`` stat/histogram and the ``bytes_moved`` counter run
    over large concatenated chunks at flush time, so the per-batch
    marginal cost is two clock reads and two list appends.  Deferral is
    safe because executed batches carry freshly built columns (nothing
    mutates them after ``record_batch``) and exact for counts, extrema,
    bins and byte totals; mean/variance land within the documented
    parallel-Welford tolerance of per-batch folding.  The scalar path
    pays a few attribute updates per record and is deliberately not
    timed — two clock reads per op would cost more than the accounting
    itself.  If the wrapped sink has no ``record_batch``, batches are
    bridged through :meth:`~repro.core.opbatch.OpBatch.to_records`
    exactly the way the executors themselves would have bridged them,
    so wrapping never changes what the inner sink receives.
    """

    __slots__ = ("inner", "observer", "_inner_batch", "_times",
                 "_sessions", "_bytes", "_response", "_hist",
                 "_pending_response", "_pending_sizes", "_pending_rows")

    def __init__(self, inner, observer: RunObserver):
        self.inner = inner
        self.observer = observer
        self._inner_batch = getattr(inner, "record_batch", None)
        self._times = observer.stage_times("sink")
        metrics = observer.metrics
        self._sessions = metrics.counter("sessions")
        self._bytes = metrics.counter("bytes_moved")
        self._response = metrics.stat("response_us")
        self._hist = metrics.histogram("response_us", *RESPONSE_HIST_US)
        self._pending_response: list = []
        self._pending_sizes: list = []
        self._pending_rows = 0

    def record_op(self, record) -> None:
        self._bytes.inc(record.size)
        self._response.add(record.response_us)
        self._hist.add(record.response_us)
        self.observer.tick_ops(1)
        self.inner.record_op(record)

    def record_session(self, record) -> None:
        self._sessions.inc()
        self.inner.record_session(record)

    def record_batch(self, batch) -> None:
        n = len(batch)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        if self._inner_batch is not None:
            self._inner_batch(batch)
        else:
            record_op = self.inner.record_op
            for record in batch.to_records():
                record_op(record)
        self._pending_response.append(batch.response_us)
        self._pending_sizes.append(batch.sizes)
        self._pending_rows += n
        self._times.add(time.perf_counter() - wall0,
                        time.process_time() - cpu0, rows=n)
        self.observer.tick_ops(n)
        if self._pending_rows >= _FLUSH_ROWS:
            self.flush()

    def flush(self) -> None:
        """Fold the buffered batch columns into the registry.

        Idempotent and cheap when nothing is pending; called from
        :meth:`RunObserver.snapshot`, from the run driver once the
        executor drains, and automatically past :data:`_FLUSH_ROWS`.
        """
        if not self._pending_rows:
            return
        response = np.concatenate(self._pending_response)
        # Executed batches carry the *recorded* size column (data movers
        # keep their byte count, everything else is already zero), so
        # the plain sum is exactly the bytes-moved figure.
        nbytes = int(np.concatenate(self._pending_sizes).sum())
        self._pending_response.clear()
        self._pending_sizes.clear()
        self._pending_rows = 0
        self._bytes.inc(nbytes)
        self._times.bytes += nbytes
        self._response.add_array(response)
        self._hist.add_array(response)
